//! # DarkDNS
//!
//! A full reproduction of *"DarkDNS: Revisiting the Value of Rapid Zone
//! Update"* (Sommese et al., ACM IMC 2024): the five-step CT-log-based
//! pipeline for detecting newly registered and transient domains, together
//! with every substrate the paper's evaluation depends on — a registry /
//! registrar ecosystem simulator, certificate-transparency logs, RDAP
//! servers, an active-measurement harness, blocklists, a passive-DNS NOD
//! feed, and a rapid-zone-update (RZU) service.
//!
//! This facade crate re-exports the member crates under stable module
//! names. See `DESIGN.md` for the system inventory and `EXPERIMENTS.md`
//! for the paper-versus-measured record of every table and figure.
//!
//! ## Quickstart
//!
//! ```no_run
//! use darkdns::core::{Experiment, ExperimentConfig};
//!
//! // A scaled-down universe: 12 simulated days, small volumes, seed 7.
//! let cfg = ExperimentConfig::small(7);
//! let report = Experiment::new(cfg).run();
//! assert!(report.nrd_total > 0);
//! println!("{}", report.render_text());
//! ```

pub use darkdns_broker as broker;
pub use darkdns_core as core;
pub use darkdns_ct as ct;
pub use darkdns_dns as dns;
pub use darkdns_edge as edge;
pub use darkdns_intel as intel;
pub use darkdns_measure as measure;
pub use darkdns_rdap as rdap;
pub use darkdns_registry as registry;
pub use darkdns_sim as sim;
