//! Derive macros for the vendored `serde` shim.
//!
//! Hand-parses the item token stream (no `syn` available in this build
//! environment) and emits `Serialize` / `Deserialize` impls against the
//! shim's `Value` data model. Supports the shapes this workspace uses:
//! non-generic structs (named, tuple, unit) and enums (unit, tuple and
//! struct variants). `#[serde(transparent)]` on a newtype struct defers to
//! the inner field; other `#[serde(...)]` attributes are accepted and
//! ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<String>, transparent: bool },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

/// Skip `#[...]` attribute groups, collecting the raw text of any
/// `#[serde(...)]` attribute encountered.
fn skip_attrs(tokens: &[TokenTree], mut i: usize, serde_attrs: &mut String) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let text = g.stream().to_string();
                    if text.starts_with("serde") {
                        serde_attrs.push_str(&text);
                    }
                    i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut serde_attrs = String::new();
    let mut i = skip_attrs(&tokens, 0, &mut serde_attrs);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim does not support generic type `{name}`");
        }
    }
    let transparent = serde_attrs.contains("transparent");
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct { name, fields: parse_named_fields(g.stream()), transparent }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut ignored = String::new();
        i = skip_attrs(&tokens, i, &mut ignored);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde_derive: expected field name, got {other}"),
        }
        i += 1;
        // Skip `: Type` up to the next top-level comma. Generic angle
        // brackets contain no commas at our nesting level because `<...>`
        // is not a delimiter group — so track angle depth explicitly.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut ignored = String::new();
        i = skip_attrs(&tokens, i, &mut ignored);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip a possible discriminant `= expr` and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields, transparent } => {
            if *transparent && fields.len() == 1 {
                format!(
                    "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ serde::Serialize::to_value(&self.{f}) }}\n\
                     }}",
                    f = fields[0]
                )
            } else {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!(
                    "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ serde::Value::Map(vec![{}]) }}\n\
                     }}",
                    entries.join(", ")
                )
            }
        }
        Item::TupleStruct { name, arity, .. } => {
            if *arity == 1 {
                format!(
                    "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ serde::Serialize::to_value(&self.0) }}\n\
                     }}"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ serde::Value::Seq(vec![{}]) }}\n\
                     }}",
                    items.join(", ")
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(x0) => serde::Value::Map(vec![(\"{vname}\".to_string(), serde::Serialize::to_value(x0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => serde::Value::Map(vec![(\"{vname}\".to_string(), serde::Value::Seq(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                ))
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => serde::Value::Map(vec![(\"{vname}\".to_string(), serde::Value::Map(vec![{entries}]))]),",
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields, transparent } => {
            if *transparent && fields.len() == 1 {
                format!(
                    "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     Ok({name} {{ {f}: serde::Deserialize::from_value(v)? }})\n\
                     }}\n}}",
                    f = fields[0]
                )
            } else {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: serde::Deserialize::from_value(v.get(\"{f}\").unwrap_or(&serde::Value::Null))?"
                        )
                    })
                    .collect();
                format!(
                    "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     Ok({name} {{ {} }})\n\
                     }}\n}}",
                    inits.join(", ")
                )
            }
        }
        Item::TupleStruct { name, arity, .. } => {
            if *arity == 1 {
                format!(
                    "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     Ok({name}(serde::Deserialize::from_value(v)?))\n\
                     }}\n}}"
                )
            } else {
                let inits: Vec<String> = (0..*arity)
                    .map(|i| format!(
                        "serde::Deserialize::from_value(items.get({i}).unwrap_or(&serde::Value::Null))?"
                    ))
                    .collect();
                format!(
                    "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     match v {{\n\
                     serde::Value::Seq(items) => Ok({name}({})),\n\
                     _ => Err(serde::Error::custom(\"expected sequence for {name}\")),\n\
                     }}\n}}\n}}",
                    inits.join(", ")
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Deserialize for {name} {{\n\
             fn from_value(_v: &serde::Value) -> Result<Self, serde::Error> {{ Ok({name}) }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push(format!(
                        "serde::Value::Str(s) if s == \"{vname}\" => return Ok({name}::{vname}),"
                    )),
                    VariantKind::Tuple(1) => data_arms.push(format!(
                        "if let Some(inner) = v.get(\"{vname}\") {{\n\
                         return Ok({name}::{vname}(serde::Deserialize::from_value(inner)?));\n\
                         }}"
                    )),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!(
                                "serde::Deserialize::from_value(items.get({i}).unwrap_or(&serde::Value::Null))?"
                            ))
                            .collect();
                        data_arms.push(format!(
                            "if let Some(serde::Value::Seq(items)) = v.get(\"{vname}\") {{\n\
                             return Ok({name}::{vname}({}));\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!(
                                "{f}: serde::Deserialize::from_value(inner.get(\"{f}\").unwrap_or(&serde::Value::Null))?"
                            ))
                            .collect();
                        data_arms.push(format!(
                            "if let Some(inner) = v.get(\"{vname}\") {{\n\
                             return Ok({name}::{vname} {{ {} }});\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 match v {{ {} _ => {{}} }}\n\
                 {}\n\
                 Err(serde::Error::custom(\"no variant of {name} matched\"))\n\
                 }}\n}}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    code.parse().expect("serde_derive: generated Deserialize impl parses")
}
