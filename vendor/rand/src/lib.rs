//! Minimal vendored stand-in for `rand` 0.8, sufficient for this
//! workspace: [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64,
//! matching the determinism guarantees the simulator relies on — stable
//! across platforms and across this crate's lifetime), the [`Rng`] /
//! [`SeedableRng`] traits, uniform ranges via `gen_range`, and the
//! [`distributions::Standard`] distribution.

pub mod rngs {
    /// A small, fast, deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_state(mut seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as rand_core does for seed_from_u64.
            let mut next = || {
                seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }

        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng::from_state(state)
        }
    }
}

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod distributions {
    use crate::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: uniform over the full integer range,
    /// uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                #[inline]
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// An iterator of samples, as returned by [`crate::Rng::sample_iter`].
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;

        #[inline]
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}

use distributions::{DistIter, Distribution, Standard};

/// Types uniformly sampleable over a range. The single generic
/// `SampleRange` impl below is what lets integer-literal ranges unify
/// with the surrounding inference context, as with the real `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                // Multiply-shift bounded uniform (Lemire); bias is < 2^-64
                // per draw which is negligible for simulation purposes.
                let draw = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (lo as i128 + draw as i128) as $t
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = hi as i128 - lo as i128 + 1;
                if span > u64::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                let draw = ((u128::from(rng.next_u64()) * (span as u128)) >> 64) as u64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let unit: $t = Standard.sample(rng);
                lo + unit * (hi - lo)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing RNG methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }

    #[inline]
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    #[inline]
    fn sample_iter<T, D: Distribution<T>>(self, distr: D) -> DistIter<D, Self, T>
    where
        Self: Sized,
    {
        DistIter { distr, rng: self, _marker: std::marker::PhantomData }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(2..=4u64);
            assert!((2..=4).contains(&y));
            let f = rng.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }
}
