//! Minimal vendored stand-in for `parking_lot`: `Mutex` / `RwLock` with
//! the poison-free API, backed by the std primitives.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error (a poisoned std lock
/// is recovered, matching parking_lot's panic-transparent behaviour).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A reader-writer lock with the poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|poison| poison.into_inner())
    }
}
