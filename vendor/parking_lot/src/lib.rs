//! Minimal vendored stand-in for `parking_lot`: `Mutex` / `RwLock` with
//! the poison-free API, backed by the std primitives.

use std::sync;
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error (a poisoned std lock
/// is recovered, matching parking_lot's panic-transparent behaviour).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Non-blocking acquire: `None` if the lock is held elsewhere.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A reader-writer lock with the poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|poison| poison.into_inner())
    }
}
