//! Minimal vendored stand-in for `proptest`, sufficient for this
//! workspace's property tests.
//!
//! Implements the strategy model (ranges, tuples, collections, string
//! patterns, `prop_map` / `prop_filter` / `prop_oneof`) and the
//! `proptest!` test macro with deterministic per-test seeding. Failing
//! cases are reported with the case number and the failed assertion; there
//! is no shrinking.
//!
//! `PROPTEST_CASES` overrides the number of cases per test (default 64).

use std::fmt;
use std::rc::Rc;

/// Deterministic generator RNG (xoshiro256++, seeded per test + case).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of values of an associated type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<R: fmt::Display, F: Fn(&Self::Value) -> bool>(
        self,
        reason: R,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, reason: reason.to_string() }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Type-erased strategy (used by `prop_oneof!`).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` combinator: regenerates until the predicate passes.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: String,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter `{}` rejected 10000 candidates in a row", self.reason);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed arms (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeMap;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// A map with roughly `size` entries (duplicate keys collapse, as in
    /// real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

/// String strategies from a regex-like pattern. Supports the subset the
/// workspace uses: literals, `[...]` classes with ranges, `(...)` groups,
/// and the `?`, `*`, `+`, `{m}`, `{m,n}` quantifiers.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = pattern::parse(self);
        let mut out = String::new();
        pattern::generate(&ast, rng, &mut out);
        out
    }
}

mod pattern {
    use super::TestRng;

    #[derive(Debug, Clone)]
    pub enum Node {
        Literal(char),
        Class(Vec<(char, char)>),
        Seq(Vec<Node>),
        Repeat { inner: Box<Node>, min: u32, max: u32 },
    }

    pub fn parse(pattern: &str) -> Node {
        let chars: Vec<char> = pattern.chars().collect();
        let (node, consumed) = parse_seq(&chars, 0);
        assert_eq!(consumed, chars.len(), "unsupported regex pattern: {pattern}");
        node
    }

    fn parse_seq(chars: &[char], mut i: usize) -> (Node, usize) {
        let mut items = Vec::new();
        while i < chars.len() && chars[i] != ')' {
            let (atom, next) = parse_atom(chars, i);
            i = next;
            // Quantifier?
            let quantified = if i < chars.len() {
                match chars[i] {
                    '?' => {
                        i += 1;
                        Node::Repeat { inner: Box::new(atom), min: 0, max: 1 }
                    }
                    '*' => {
                        i += 1;
                        Node::Repeat { inner: Box::new(atom), min: 0, max: 8 }
                    }
                    '+' => {
                        i += 1;
                        Node::Repeat { inner: Box::new(atom), min: 1, max: 8 }
                    }
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .expect("unclosed `{` in pattern")
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        let (min, max) = match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.parse().expect("bad repeat min"),
                                hi.parse().expect("bad repeat max"),
                            ),
                            None => {
                                let n: u32 = body.parse().expect("bad repeat count");
                                (n, n)
                            }
                        };
                        Node::Repeat { inner: Box::new(atom), min, max }
                    }
                    _ => atom,
                }
            } else {
                atom
            };
            items.push(quantified);
        }
        if items.len() == 1 {
            (items.pop().expect("one item"), i)
        } else {
            (Node::Seq(items), i)
        }
    }

    fn parse_atom(chars: &[char], i: usize) -> (Node, usize) {
        match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while chars[j] != ']' {
                    let lo = chars[j];
                    if chars.get(j + 1) == Some(&'-') && chars.get(j + 2).is_some_and(|&c| c != ']')
                    {
                        ranges.push((lo, chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((lo, lo));
                        j += 1;
                    }
                }
                (Node::Class(ranges), j + 1)
            }
            '(' => {
                let (inner, next) = parse_seq(chars, i + 1);
                assert_eq!(chars.get(next), Some(&')'), "unclosed `(` in pattern");
                (inner, next + 1)
            }
            '\\' => (Node::Literal(chars[i + 1]), i + 2),
            c => (Node::Literal(c), i + 1),
        }
    }

    pub fn generate(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u64 = ranges.iter().map(|(lo, hi)| *hi as u64 - *lo as u64 + 1).sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = *hi as u64 - *lo as u64 + 1;
                    if pick < span {
                        out.push(char::from_u32(*lo as u32 + pick as u32).expect("valid char"));
                        return;
                    }
                    pick -= span;
                }
                unreachable!();
            }
            Node::Seq(items) => {
                for item in items {
                    generate(item, rng, out);
                }
            }
            Node::Repeat { inner, min, max } => {
                let n = *min + rng.below(u64::from(*max - *min + 1)) as u32;
                for _ in 0..n {
                    generate(inner, rng, out);
                }
            }
        }
    }
}

/// FNV-1a, for deriving a per-test seed from the test name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Test-runner driver behind the `proptest!` macro.
pub fn run_proptest<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases: u64 =
        std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64);
    let base = fnv1a(name.as_bytes());
    for i in 0..cases {
        let mut rng = TestRng::from_seed(base ^ i.wrapping_mul(0x2545_f491_4f6c_dd1d));
        if let Err(e) = case(&mut rng) {
            panic!("proptest `{name}` failed at case {i}/{cases}: {e}");
        }
    }
}

/// Namespaced re-exports matching proptest's `prop::` paths.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    ($(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                $crate::run_proptest(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let mut __case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: `{:?}` != `{:?}`", format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_generator_matches_shape() {
        let mut rng = super::TestRng::from_seed(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?", &mut rng);
            assert!(!s.is_empty() && s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            assert!(!s.starts_with('-') && !s.ends_with('-'));
        }
    }

    proptest! {
        #[test]
        fn macro_plumbing_works(x in 0u32..10, v in prop::collection::vec(0u8..3, 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 5);
        }
    }
}
