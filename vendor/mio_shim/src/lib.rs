//! Minimal vendored readiness shim over Linux `epoll` — the subset of
//! `mio` the broker's transport reactor needs, as thin FFI over the
//! raw syscall surface (`epoll_create1` / `epoll_ctl` / `epoll_wait`,
//! plus an `eventfd` wakeup for cross-thread notification).
//!
//! Level-triggered only: the reactor re-polls readiness after every
//! partial read/write, so edge-triggered bookkeeping buys nothing here
//! and level semantics make lost-event bugs structurally impossible.
//! Everything is expressed against `RawFd`, leaving ownership of the
//! underlying socket with the caller.

use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    // The kernel packs `epoll_event` on x86-64 (a 12-byte struct); other
    // architectures use natural alignment. Mirror glibc's __EPOLL_PACKED.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    pub struct Rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_NONBLOCK: c_int = 0o4000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;

    pub const RLIMIT_NOFILE: c_int = 7;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }
}

/// Opaque per-registration identifier carried in the kernel's event
/// payload and handed back by [`Event::token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    pub const READABLE: Interest = Interest(sys::EPOLLIN | sys::EPOLLRDHUP);
    pub const WRITABLE: Interest = Interest(sys::EPOLLOUT);

    /// Combine two interests (set union).
    #[must_use]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    events: u32,
    token: Token,
}

impl Event {
    pub fn token(&self) -> Token {
        self.token
    }

    pub fn is_readable(&self) -> bool {
        self.events & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR) != 0
    }

    pub fn is_writable(&self) -> bool {
        self.events & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// Error or hangup: the fd needs attention even if neither plain
    /// readiness bit is set.
    pub fn is_error(&self) -> bool {
        self.events & (sys::EPOLLERR | sys::EPOLLHUP) != 0
    }
}

/// Reusable buffer a [`Epoll::wait`] call fills with ready events.
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| Event {
            events: raw.events,
            token: Token(raw.data as usize),
        })
    }
}

/// An epoll instance: a level-triggered readiness selector.
pub struct Epoll {
    fd: RawFd,
}

// The fd is used via thread-safe syscalls only.
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: Token, interest: u32) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: interest, data: token.0 as u64 };
        let rc = unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Start watching `fd` for `interest`, tagging events with `token`.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest.0)
    }

    /// Change an existing registration's interest set.
    pub fn modify(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest.0)
    }

    /// Stop watching `fd` (safe to call on an fd the kernel already
    /// dropped from the set when the socket closed).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, Token(0), 0)
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses (`None` = wait forever). Fills `events` and returns the
    /// count; `Ok(0)` is a timeout. EINTR retries internally.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 1 ns timeout cannot spin at 0 ms.
            Some(t) => t.as_millis().saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        loop {
            let n = unsafe {
                sys::epoll_wait(self.fd, events.buf.as_mut_ptr(), events.buf.len() as i32, timeout_ms)
            };
            if n >= 0 {
                events.len = n as usize;
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// Cross-thread wakeup for a blocked [`Epoll::wait`]: an `eventfd`
/// registered with the epoll set. Any thread calls [`WakeupFd::wake`];
/// the reactor drains it on its next pass. The armed flag collapses
/// storms of wakes between drains into one `write` syscall.
pub struct WakeupFd {
    fd: RawFd,
    armed: AtomicBool,
}

unsafe impl Send for WakeupFd {}
unsafe impl Sync for WakeupFd {}

impl WakeupFd {
    pub fn new() -> io::Result<WakeupFd> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_NONBLOCK | sys::EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeupFd { fd, armed: AtomicBool::new(false) })
    }

    /// The fd to register READABLE with the epoll set.
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Make the next (or current) `epoll_wait` return. Cheap when a
    /// wake is already pending.
    pub fn wake(&self) {
        if self.armed.swap(true, Ordering::AcqRel) {
            return; // a pending wake already covers this one
        }
        let one: u64 = 1;
        // The counter would overflow only after 2^64-2 unconsumed wakes;
        // EAGAIN there still leaves the fd readable, which is all we need.
        unsafe { sys::write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Consume pending wakes (the reactor calls this when the wakeup
    /// token surfaces) so level-triggered polling goes quiet again.
    pub fn drain(&self) {
        self.armed.store(false, Ordering::Release);
        let mut buf = 0u64;
        unsafe { sys::read(self.fd, (&mut buf as *mut u64).cast(), 8) };
    }
}

impl Drop for WakeupFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// Raise the process's open-file soft limit to at least `min` fds
/// (capped at the hard limit). Returns the resulting soft limit. The
/// 10k-connection bench calls this before dialing: two sockets per
/// subscriber plus slack would blow through a conservative default.
pub fn raise_nofile_limit(min: u64) -> io::Result<u64> {
    let mut lim = sys::Rlimit { rlim_cur: 0, rlim_max: 0 };
    if unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= min {
        return Ok(lim.rlim_cur);
    }
    lim.rlim_cur = min.min(lim.rlim_max);
    if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(lim.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn timeout_expires_with_no_events() {
        let epoll = Epoll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let start = std::time::Instant::now();
        let n = epoll.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn wakeup_fd_unblocks_wait_from_another_thread() {
        let epoll = Epoll::new().unwrap();
        let wakeup = std::sync::Arc::new(WakeupFd::new().unwrap());
        epoll.register(wakeup.raw_fd(), Token(7), Interest::READABLE).unwrap();
        let waker = std::sync::Arc::clone(&wakeup);
        let t = std::thread::spawn(move || waker.wake());
        let mut events = Events::with_capacity(4);
        let n = epoll.wait(&mut events, Some(Duration::from_secs(30))).unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_readable());
        wakeup.drain();
        // Drained: the set is quiet again.
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_millis(5))).unwrap(), 0);
        t.join().unwrap();
    }

    #[test]
    fn wake_storm_collapses_but_still_readable() {
        let epoll = Epoll::new().unwrap();
        let wakeup = WakeupFd::new().unwrap();
        epoll.register(wakeup.raw_fd(), Token(1), Interest::READABLE).unwrap();
        for _ in 0..1000 {
            wakeup.wake();
        }
        let mut events = Events::with_capacity(4);
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);
        wakeup.drain();
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_millis(5))).unwrap(), 0);
    }

    #[test]
    fn tcp_readiness_tracks_data_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        let mut events = Events::with_capacity(8);

        // A fresh connected socket is writable but not readable.
        epoll
            .register(server.as_raw_fd(), Token(3), Interest::READABLE.add(Interest::WRITABLE))
            .unwrap();
        let n = epoll.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(n >= 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token(), Token(3));
        assert!(ev.is_writable());
        assert!(!ev.is_readable());

        // Narrow to READABLE: quiet until the peer writes.
        epoll.modify(server.as_raw_fd(), Token(3), Interest::READABLE).unwrap();
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_millis(5))).unwrap(), 0);
        client.write_all(b"ping").unwrap();
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);
        assert!(events.iter().next().unwrap().is_readable());

        // Level-triggered: still readable until drained.
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);
        let mut buf = [0u8; 16];
        let mut srv = &server;
        assert_eq!(srv.read(&mut buf).unwrap(), 4);
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_millis(5))).unwrap(), 0);

        epoll.deregister(server.as_raw_fd()).unwrap();
        client.write_all(b"x").unwrap();
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);
    }

    #[test]
    fn peer_close_reports_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.register(server.as_raw_fd(), Token(9), Interest::READABLE).unwrap();
        drop(client);
        let mut events = Events::with_capacity(4);
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);
        // EOF surfaces as readable (read() will return 0).
        assert!(events.iter().next().unwrap().is_readable());
    }

    #[test]
    fn nofile_limit_can_be_raised() {
        let cur = raise_nofile_limit(1024).unwrap();
        assert!(cur >= 1024 || cur > 0, "soft limit should be usable");
        // Idempotent: asking for less than current is a no-op.
        let again = raise_nofile_limit(16).unwrap();
        assert!(again >= cur.min(1024));
    }
}
