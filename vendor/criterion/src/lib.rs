//! Minimal vendored stand-in for `criterion` that really measures.
//!
//! Implements the subset of the criterion API the bench suites use
//! (groups, throughput annotations, `bench_with_input` / `bench_function`,
//! the `criterion_group!` / `criterion_main!` macros) with a
//! warmup-then-sample measurement loop reporting the median per-iteration
//! time and derived throughput.
//!
//! Environment knobs (read once per process):
//! * `DARKDNS_BENCH_SAMPLES` — samples per benchmark (default 15);
//! * `DARKDNS_BENCH_MS` — total sampling budget per benchmark in
//!   milliseconds (default 1200);
//! * `DARKDNS_BENCH_JSON` — when set, append one JSON line per benchmark
//!   (`id`, `median_ns`, `elems`, `elems_per_sec`) to the given file.

use std::fmt::Display;
use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of the optimization barrier (criterion's `black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { name: name.into(), param: param.to_string() }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: default_samples(),
        }
    }
}

fn default_samples() -> usize {
    std::env::var("DARKDNS_BENCH_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(15)
}

fn budget() -> Duration {
    let ms = std::env::var("DARKDNS_BENCH_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(1200u64);
    Duration::from_millis(ms)
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(2);
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}/{}", self.name, id.name, id.param);
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        self.report(&full, &bencher);
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        let mut bencher = Bencher::default();
        f(&mut bencher);
        self.report(&full, &bencher);
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let Some(median_ns) = bencher.median_ns else {
            println!("{id:<48} (no measurement)");
            return;
        };
        let mut line = format!("{id:<48} time: {}", fmt_ns(median_ns));
        let mut elems = None;
        if let Some(Throughput::Elements(n)) = self.throughput {
            let per_sec = n as f64 / (median_ns / 1e9);
            line.push_str(&format!("   thrpt: {} elem/s", fmt_count(per_sec)));
            elems = Some(n);
        }
        if let Some(Throughput::Bytes(n)) = self.throughput {
            let per_sec = n as f64 / (median_ns / 1e9);
            line.push_str(&format!("   thrpt: {} B/s", fmt_count(per_sec)));
        }
        println!("{line}");
        if let Ok(path) = std::env::var("DARKDNS_BENCH_JSON") {
            let elems_per_sec = elems.map(|n| n as f64 / (median_ns / 1e9));
            let json = format!(
                "{{\"id\":\"{id}\",\"median_ns\":{median_ns:.1},\"elems\":{},\"elems_per_sec\":{}}}\n",
                elems.map_or("null".to_string(), |n| n.to_string()),
                elems_per_sec.map_or("null".to_string(), |x| format!("{x:.1}")),
            );
            if let Ok(mut file) =
                std::fs::OpenOptions::new().create(true).append(true).open(&path)
            {
                let _ = file.write_all(json.as_bytes());
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn fmt_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.3} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.3} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.3} K", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Runs the closure under measurement when `iter` is called.
#[derive(Debug, Default)]
pub struct Bencher {
    median_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and per-iteration estimate.
        let warmup_budget = Duration::from_millis(200);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < warmup_budget {
            black_box(f());
            warmup_iters += 1;
        }
        let est_ns = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;

        let samples = default_samples();
        let per_sample = budget().as_nanos() as f64 / samples as f64;
        let iters_per_sample = ((per_sample / est_ns).floor() as u64).max(1);

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.median_ns = Some(per_iter[per_iter.len() / 2]);
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
