//! Minimal vendored stand-in for `crossbeam`: the `channel` module backed
//! by `std::sync::mpsc`, which provides the unbounded MPSC semantics the
//! in-process topic bus needs.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::TryRecvError;

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.inner.recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}
