//! Minimal vendored stand-in for `crossbeam`: the `channel` module backed
//! by `std::sync::mpsc`, providing both unbounded MPSC semantics (the
//! in-process topic bus) and bounded channels with non-blocking
//! `try_send` (backpressure-aware fan-out paths).

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::TryRecvError;

    /// Sending half of a channel (unbounded or bounded).
    pub struct Sender<T> {
        inner: SenderKind<T>,
    }

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
            };
            Sender { inner }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send (unbounded channels never block).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderKind::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Non-blocking send. On a full bounded channel returns
        /// [`TrySendError::Full`] instead of blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                SenderKind::Unbounded(tx) => {
                    tx.send(value).map_err(|e| TrySendError::Disconnected(e.0))
                }
                SenderKind::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.inner.recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// The receiving side has disconnected.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        pub fn is_disconnected(&self) -> bool {
            matches!(self, TrySendError::Disconnected(_))
        }
    }

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: SenderKind::Unbounded(tx) }, Receiver { inner: rx })
    }

    /// Create a bounded MPSC channel holding at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: SenderKind::Bounded(tx) }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded::<u32>(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        match tx.try_send(3) {
            Err(e) if e.is_full() => {}
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.try_recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
    }

    #[test]
    fn unbounded_try_send_never_fills() {
        let (tx, rx) = unbounded::<u32>();
        for i in 0..10_000 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(rx.iter().take(10_000).count(), 10_000);
    }

    #[test]
    fn disconnected_receiver_reported() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.try_send(1).unwrap_err().is_disconnected());
        assert!(tx.send(2).is_err());
    }
}
