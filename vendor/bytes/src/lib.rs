//! Minimal vendored stand-in for `bytes`: a growable byte buffer with the
//! `BufMut` write methods the wire codec uses, a `Buf` reader trait over
//! byte slices, and a cheaply-clonable shared [`Bytes`] handle for
//! encode-once / fan-out-to-many distribution paths.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning bumps a refcount;
/// the underlying storage is shared between all clones. A handle is a
/// view (`offset`, `len`) into that shared storage, so [`Bytes::slice`]
/// is zero-copy too.
#[derive(Clone)]
pub struct Bytes {
    inner: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { inner: Arc::from([]), offset: 0, len: 0 }
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { inner: Arc::from(src), offset: 0, len: src.len() }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view of this buffer sharing the same storage (no copy).
    /// The range is relative to this view. Panics when it is out of
    /// bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice {start}..{end} out of bounds of {}", self.len);
        Bytes { inner: Arc::clone(&self.inner), offset: self.offset + start, len: end - start }
    }

    /// True when both handles are the same view of the same storage
    /// (O(1) witness that a clone or slice did not copy).
    pub fn ptr_eq(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
            && self.offset == other.offset
            && self.len == other.len
    }

    /// True when both handles share the same backing storage, whatever
    /// their view ranges (O(1) witness that a slice did not copy).
    pub fn shares_storage(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner[self.offset..self.offset + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { inner: v.into(), offset: 0, len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || **self == **other
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A mutable, growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Freeze into an immutable shared [`Bytes`] handle.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Write-side buffer operations.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    #[inline]
    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    fn put_u64(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    #[inline]
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side buffer operations over an advancing cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_shares_storage() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"hello");
        let frozen = buf.freeze();
        let clone = frozen.clone();
        assert!(frozen.ptr_eq(&clone));
        assert_eq!(&clone[..], b"hello");
        assert_eq!(frozen, Bytes::from(b"hello".as_slice()));
    }

    #[test]
    fn slice_is_a_zero_copy_view() {
        let b = Bytes::copy_from_slice(b"0123456789");
        let mid = b.slice(2..7);
        assert_eq!(&mid[..], b"23456");
        assert!(mid.shares_storage(&b));
        assert!(!mid.ptr_eq(&b));
        let tail = mid.slice(3..);
        assert_eq!(&tail[..], b"56");
        assert!(tail.shares_storage(&b));
        assert_eq!(tail, Bytes::copy_from_slice(b"56"));
        assert!(b.slice(..).ptr_eq(&b));
    }

    #[test]
    fn write_and_read_round_trip() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u16(0xC000);
        buf.put_u8(7);
        buf.put_slice(b"ab");
        assert_eq!(&buf[..], &[0xC0, 0x00, 7, b'a', b'b']);
        buf[0..2].copy_from_slice(&0x1234u16.to_be_bytes());
        assert_eq!(buf.to_vec(), vec![0x12, 0x34, 7, b'a', b'b']);
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 2);
    }
}
