//! Minimal vendored stand-in for `serde`, sufficient for this workspace.
//!
//! The real crates.io `serde` is unavailable in the build environment, so
//! this shim provides the same surface the workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits (over a simple self-describing
//! [`Value`] data model rather than serde's visitor architecture) and the
//! corresponding derive macros re-exported from `serde_derive`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// A self-describing serialized value (JSON-shaped data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (struct fields keep declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_int {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $cast)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int! {
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            _ => Err(Error::custom("expected fixed-size sequence")),
        }
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

/// Map keys are stringified through the value model; only string-ish and
/// integer keys are supported (all this workspace uses).
fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key: {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (key_string(&k.to_value()), v.to_value())).collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (key_string(&k.to_value()), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

/// Map keys reconstructed from their string form.
pub trait DeserializeKey: Sized {
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl DeserializeKey for String {
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_key_int {
    ($($t:ty),*) => {$(
        impl DeserializeKey for $t {
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(Error::custom)
            }
        }
    )*};
}

impl_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: DeserializeKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

macro_rules! impl_tuple_de {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => Ok((
                        $($name::from_value(items.get($idx).unwrap_or(&Value::Null))?,)+
                    )),
                    _ => Err(Error::custom("expected sequence for tuple")),
                }
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_de!(A: 0);
impl_tuple_de!(A: 0, B: 1);
impl_tuple_de!(A: 0, B: 1, C: 2);
impl_tuple_de!(A: 0, B: 1, C: 2, D: 3);

impl Serialize for IpAddr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for IpAddr {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => s.parse().map_err(Error::custom),
            _ => Err(Error::custom("expected IP address string")),
        }
    }
}

impl Serialize for Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => s.parse().map_err(Error::custom),
            _ => Err(Error::custom("expected IPv4 address string")),
        }
    }
}

impl Serialize for Ipv6Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Ipv6Addr {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => s.parse().map_err(Error::custom),
            _ => Err(Error::custom("expected IPv6 address string")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}
