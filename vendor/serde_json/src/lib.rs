//! Minimal vendored stand-in for `serde_json` over the serde shim's
//! [`serde::Value`] data model: JSON encoding (compact and pretty) of any
//! `T: serde::Serialize`, plus a small parser for round-trips.

pub use serde::{Error, Value};

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize `value` to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Convert `value` into the shim's [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parse a JSON string into `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters"));
    }
    T::from_value(&v)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            out.push_str(&format!("{:.1}", x));
        } else {
            out.push_str(&format!("{x}"));
        }
    } else {
        out.push_str("null");
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_value_pretty(v: &Value, out: &mut String, depth: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(out, depth + 1);
                write_value_pretty(item, out, depth + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, depth);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                indent(out, depth + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, depth + 1);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, depth);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::custom("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                self.literal("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}`")),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::custom)?,
                                16,
                            )
                            .map_err(Error::custom)?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error::custom(format!("bad escape `\\{}`", other as char))),
                    }
                }
                other => {
                    // Collect the full UTF-8 sequence starting at `other`.
                    let width = match other {
                        0x00..=0x7f => 0,
                        0xc0..=0xdf => 1,
                        0xe0..=0xef => 2,
                        _ => 3,
                    };
                    let start = self.pos - 1;
                    self.pos += width;
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .ok_or_else(|| Error::custom("bad utf8"))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(Error::custom)?);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::custom)?;
        if text.is_empty() {
            return Err(Error::custom("expected number"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    return text.parse::<i64>().map(Value::I64).map_err(Error::custom);
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let parsed: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(parsed, v);
        assert_eq!(to_string(&Some("a\"b".to_string())).unwrap(), "\"a\\\"b\"");
    }
}
