//! A 50-TLD universe publishing concurrently through the per-shard
//! broker — the paper's minute-level NOD visibility argument at fleet
//! scale.
//!
//! Builds a 50-TLD universe (the paper's gTLD table extended with a
//! synthetic long tail), materialises every TLD's RZU feed as a zone
//! delta stream, and publishes all of them through a `PublishPool`: one
//! worker per core, each TLD's pushes in serial order on one worker,
//! different TLDs in parallel — possible because every TLD owns its own
//! shard lock and no global lock sits on the publish path. A
//! `BrokerZoneView` over all 50 TLDs converges with zero gap-resyncs,
//! and the run ends with the per-shard `ShardStats` table: per-TLD
//! pushes, checkpoint seals, deliveries, catch-up plans served, and
//! lock-contention counters (all zero with one publisher per shard).
//!
//! ```sh
//! cargo run --release --example multi_tld_fleet [seed]
//! ```

use darkdns::broker::{
    Broker, BrokerConfig, OverflowPolicy, PublishPool, RetentionConfig, UniverseFeed,
};
use darkdns::core::broker_view::BrokerZoneView;
use darkdns::registry::tld::{synthetic_fleet, TldId};
use darkdns::registry::workload::{build_fleet_universe, WorkloadConfig};
use darkdns::sim::time::SimDuration;
use std::time::Instant;

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    const FLEET: usize = 50;
    let tlds = synthetic_fleet(FLEET);
    let config = WorkloadConfig {
        scale: 0.002,
        window_days: 2,
        base_population_frac: 0.003,
        ..WorkloadConfig::default()
    };
    let anchor = config.window_start;
    let universe = build_fleet_universe(&tlds, config, seed);
    let tld_ids: Vec<TldId> = (0..FLEET).map(|t| TldId(t as u16)).collect();
    let mut feed =
        UniverseFeed::build(&universe, &tlds, &tld_ids, anchor, SimDuration::from_minutes(5));

    let broker = Broker::new(BrokerConfig {
        retention: RetentionConfig::new(64, 16),
        subscriber_capacity: 1 << 16,
        overflow: OverflowPolicy::Lag,
        lag_slo: None,
    });
    feed.register_shards(&broker);
    let pool = PublishPool::new();
    println!(
        "fleet of {FLEET} TLD shards (seed {seed}): {} pushes pending, {} publish workers",
        feed.pending(),
        pool.workers(),
    );

    // One view over the whole fleet, up before the publish storm.
    let mut view = BrokerZoneView::subscribe(&broker, &tld_ids);

    let started = Instant::now();
    let published = feed.publish_all_concurrent(&broker, &pool);
    let publish_time = started.elapsed();
    view.pump();
    println!(
        "published {published} pushes across {FLEET} shards in {publish_time:?}; \
         view synced: {}, gap-resyncs: {}, dropped frames: {}",
        view.synced_with(&broker),
        view.resync_count(),
        view.dropped_count(),
    );
    assert!(view.synced_with(&broker), "fleet view must converge");
    assert_eq!(view.resync_count(), 0, "a healthy fleet run needs no resync");

    // The per-shard accounting story: one struct per TLD.
    let all = broker.all_shard_stats();
    println!(
        "\n{:<6} {:>6} {:>7} {:>6} {:>10} {:>8} {:>8} {:>9}",
        "tld", "pushes", "head", "ckpts", "deliveries", "catchups", "retained", "contended"
    );
    for stats in &all {
        let tld_name = &tlds[stats.tld.0 as usize].name;
        println!(
            "{:<6} {:>6} {:>7} {:>6} {:>10} {:>8} {:>8} {:>9}",
            tld_name,
            stats.pushes,
            stats.head_serial.get(),
            stats.checkpoints,
            stats.deliveries,
            stats.snapshot_catchups + stats.delta_catchups,
            stats.retained_deltas,
            stats.lock_contentions,
        );
    }

    let agg = broker.stats();
    let pushes: u64 = all.iter().map(|s| s.pushes).sum();
    let contended: u64 = all.iter().map(|s| s.lock_contentions).sum();
    println!(
        "\ntotals: {} pushes ({} KiB of frames, each encoded once), {} deliveries to {} \
         subscriber(s), {} lagged, {} evicted, {} shard-lock contentions",
        agg.frames_encoded,
        agg.frame_bytes_encoded / 1024,
        agg.deliveries,
        agg.subscribers,
        agg.lagged_messages,
        agg.evictions,
        contended,
    );
    assert_eq!(pushes, published as u64, "per-shard pushes must sum to the published total");
    assert_eq!(agg.frames_encoded, pushes, "aggregate must equal the per-shard sum");
    let mut nrd_log = Vec::new();
    view.drain_new_domains(&mut nrd_log);
    println!("zone NRDs observed live across the fleet: {}", nrd_log.len());
}
