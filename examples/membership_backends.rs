//! One pipeline, three zone-membership backends.
//!
//! Builds one deterministic universe + certstream, then runs the full
//! Step-1 certstream detection through the `ZoneMembership` contract
//! against each backend from identical inputs:
//!
//! * **direct** — `UniverseZoneView` (ground truth on the push grid);
//! * **broker** — `BrokerZoneView` subscribed to an in-process broker
//!   fed in certstream time order;
//! * **tcp** — `RemoteZoneView` behind a real `BrokerServer` on
//!   loopback TCP.
//!
//! The candidate sets must be byte-identical (the equivalence the
//! integration test pins); the example then reuses the broker-fed view
//! generically in the `Monitor`, scores what the backend captured
//! against ground truth (`rzu_ablation::observed_capture`), and scrapes
//! the server's per-shard stats over the wire with an `RZUQ` round
//! trip.
//!
//! Run with: `cargo run --release --example membership_backends`

use darkdns::broker::transport::{fetch_stats, tcp_connect, FrameConn, TransportClient};
use darkdns::broker::{Broker, BrokerConfig, BrokerServer, OverflowPolicy, TransportConfig};
use darkdns::core::broker_view::{BrokerZoneView, RemoteZoneView};
use darkdns::core::experiment::{run_certstream_detection, LiveDetection, LiveInputs};
use darkdns::core::monitor::Monitor;
use darkdns::core::rzu_ablation::observed_capture;
use darkdns::core::{ExperimentConfig, ZoneMembership};
use darkdns::registry::hosting::HostingLandscape;
use darkdns::sim::time::SimDuration;
use std::time::Duration;

fn roomy_broker() -> Broker {
    Broker::new(BrokerConfig {
        subscriber_capacity: 1 << 20,
        overflow: OverflowPolicy::Lag,
        ..BrokerConfig::default()
    })
}

fn summarize(label: &str, run: &LiveDetection) {
    println!(
        "  {label:<7} candidates={:<6} in-zone-discards={:<7} zone-NRDs={:<6} entries={}",
        run.candidates.len(),
        run.stats.discarded_in_zone,
        run.zone_nrds.len(),
        run.stats.entries_seen,
    );
}

fn main() {
    let mut cfg = ExperimentConfig::small(7);
    cfg.workload.scale = 0.002;
    cfg.workload.window_days = 6;
    let inputs = LiveInputs::build(cfg, SimDuration::from_minutes(5));
    println!(
        "universe: {} records across {} TLDs, {} certstream entries, 5m push cadence\n",
        inputs.universe.len(),
        inputs.tld_ids.len(),
        inputs.stream.len(),
    );

    // --- direct ------------------------------------------------------
    let mut direct = inputs.direct_view();
    let direct_run = run_certstream_detection(&inputs, &mut direct, |_, _| {});

    // --- in-process broker -------------------------------------------
    let broker = roomy_broker();
    let mut feed = inputs.feed();
    feed.register_shards(&broker);
    let mut view = BrokerZoneView::subscribe(&broker, &inputs.tld_ids);
    let broker_run = run_certstream_detection(&inputs, &mut view, |_, at| {
        feed.publish_until(&broker, at);
    });

    // --- loopback TCP ------------------------------------------------
    let broker2 = roomy_broker();
    let mut feed2 = inputs.feed();
    feed2.register_shards(&broker2);
    let server = BrokerServer::new(
        broker2.clone(),
        TransportConfig { writer_tick: Duration::from_millis(5), ..TransportConfig::default() },
    );
    let addr = server.listen_tcp("127.0.0.1:0").expect("bind loopback");
    let mut remote = RemoteZoneView::connect(&inputs.tld_ids, move |claims| {
        let mut conn = tcp_connect(addr)?;
        conn.set_recv_timeout(Some(Duration::from_millis(2)))?;
        TransportClient::connect(conn, claims)
    })
    .expect("dial");
    let tld_ids = inputs.tld_ids.clone();
    let tcp_run = run_certstream_detection(&inputs, &mut remote, |v, at| {
        feed2.publish_until(&broker2, at);
        let targets: Vec<_> = tld_ids
            .iter()
            .map(|&tld| (tld, broker2.head(tld).expect("shard").serial()))
            .collect();
        assert!(v.pump_until_serials(&targets, Duration::from_secs(60)), "socket stalled");
    });

    println!("certstream detection, one pipeline, three backends:");
    summarize("direct", &direct_run);
    summarize("broker", &broker_run);
    summarize("tcp", &tcp_run);
    assert_eq!(direct_run.candidates, broker_run.candidates, "backend divergence (broker)");
    assert_eq!(direct_run.candidates, tcp_run.candidates, "backend divergence (tcp)");
    assert_eq!(direct_run.stats, broker_run.stats);
    assert_eq!(direct_run.stats, tcp_run.stats);
    println!("  => byte-identical candidate sets and detector stats\n");

    // --- the monitor consumes the same contract ----------------------
    let landscape = HostingLandscape::paper_landscape();
    let mut monitor = Monitor::new(&inputs.universe, &landscape, &mut view);
    let monitored: Vec<_> = broker_run.candidates.iter().take(200).cloned().collect();
    monitor.monitor_all(&monitored);
    let zs = monitor.zone_stats();
    println!(
        "monitor over the broker view ({} candidates): {} confirmed in view within 48h, \
         {} never visible (transient-shaped)",
        monitored.len(),
        zs.confirmed_in_view,
        zs.never_in_view,
    );

    // --- observed capture vs ground truth ----------------------------
    // Scored on a fresh view driven over the whole window (the runs
    // above already drained their logs into `zone_nrds`).
    let horizon = inputs.anchor + inputs.config.horizon();
    let mut cap_view = inputs.direct_view();
    ZoneMembership::advance_to(&mut cap_view, horizon);
    let cap = observed_capture(&mut cap_view, &inputs.universe, inputs.anchor);
    println!(
        "observed capture at 5m cadence: {:.1}% of transients, {:.1}% of NRDs \
         ({} domains surfaced by the view)\n",
        cap.transient_capture_pct, cap.nrd_observed_pct, cap.domains_observed,
    );

    // --- RZUQ stats scrape over the wire ------------------------------
    let report = fetch_stats(tcp_connect(addr).expect("dial scrape")).expect("RZUQ");
    println!(
        "RZUQ scrape: {} handshakes, {} deltas sent, {} snapshots, \
         {} coalesced writes saving {} syscalls, {} stats queries",
        report.server.handshakes,
        report.server.deltas_sent,
        report.server.snapshots_sent,
        report.server.coalesced_writes,
        report.server.coalesced_frames,
        report.server.stats_queries,
    );
    println!("  tld  head   pushes  deliveries  coalesced");
    for shard in report.shards.iter().take(5) {
        println!(
            "  {:>3}  {:>5}  {:>6}  {:>10}  {:>9}",
            shard.tld,
            shard.head_serial.get(),
            shard.pushes,
            shard.deliveries,
            shard.coalesced_frames,
        );
    }
    println!("  ... ({} shards total)", report.shards.len());
    server.shutdown();
    println!("\nok: the broker stack is a drop-in substrate for the detection pipeline");
}
