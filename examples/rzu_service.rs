//! Running the Rapid Zone Update service the paper advocates (§5).
//!
//! Builds the registry event log for one TLD, batches it into 5-minute
//! RZU pushes (Verisign's historical cadence), replays the pushes as a
//! subscriber, and shows concretely what daily snapshots miss: every
//! transient domain appears in the push stream, none in the snapshot
//! diff. Ends with the cadence-sweep ablation.
//!
//! ```sh
//! cargo run --release --example rzu_service [seed]
//! ```

use darkdns::core::rzu_ablation::{render, sweep, DEFAULT_CADENCES_SECS};
use darkdns::registry::czds::{SnapshotOracle, SnapshotSchedule};
use darkdns::registry::hosting::HostingLandscape;
use darkdns::registry::registrar::RegistrarFleet;
use darkdns::registry::rzu::RzuFeed;
use darkdns::registry::tld::{paper_gtlds, TldId};
use darkdns::registry::universe::DomainKind;
use darkdns::registry::workload::{UniverseBuilder, WorkloadConfig};
use darkdns::sim::rng::RngPool;
use darkdns::sim::time::SimDuration;

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let tlds = paper_gtlds();
    let fleet = RegistrarFleet::paper_fleet();
    let hosting = HostingLandscape::paper_landscape();
    let config = WorkloadConfig {
        scale: 0.002,
        window_days: 7,
        base_population_frac: 0.005,
        ..WorkloadConfig::default()
    };
    let pool = RngPool::new(seed);
    let schedule = SnapshotSchedule::new(&pool, &tlds, config.window_start, config.window_days);
    let window_start = config.window_start;
    let universe = UniverseBuilder {
        tlds: &tlds,
        fleet: &fleet,
        hosting: &hosting,
        schedule: &schedule,
        config,
    }
    .build(&pool);

    // Run the RZU service for .com at the historical 5-minute cadence.
    let com = TldId(0);
    let feed = RzuFeed::from_universe(&universe, com, window_start, SimDuration::from_minutes(5));
    println!(
        "RZU service for .com (seed {seed}): {} pushes carrying {} events over 7 days",
        feed.pushes().len(),
        feed.event_count()
    );

    // What does a subscriber see that snapshots miss?
    let oracle = SnapshotOracle::new(&schedule);
    let mut transient_total = 0u64;
    let mut transient_in_rzu = 0u64;
    let mut transient_in_snapshots = 0u64;
    for r in universe.in_tld(com) {
        if r.kind != DomainKind::Transient {
            continue;
        }
        transient_total += 1;
        if feed.first_reveal(r.id).is_some_and(|at| r.removed.map_or(true, |rm| at < rm)) {
            transient_in_rzu += 1;
        }
        if oracle.appeared_in_any(r) {
            transient_in_snapshots += 1;
        }
    }
    println!("\ntransient .com domains in this window: {transient_total}");
    println!("  revealed live by the 5-minute RZU feed: {transient_in_rzu}");
    println!("  captured by any daily snapshot:         {transient_in_snapshots}");

    // The full cadence sweep over every TLD.
    println!("\n{}", render(&sweep(&universe, window_start, &DEFAULT_CADENCES_SECS)));
}
