//! The RZU distribution broker, end to end.
//!
//! Builds a 3-TLD universe, materialises each TLD's RZU feed as a zone
//! delta stream, and drives it through the sharded broker. One
//! subscriber follows live from the start; a second joins mid-stream
//! with no prior state and catches up from a checkpoint snapshot plus
//! the deltas sealed after it (the snapshot-vs-delta decision rule).
//! Both converge to the publisher's head serials exactly.
//!
//! ```sh
//! cargo run --release --example broker_subscriber [seed]
//! ```

use darkdns::broker::{Broker, BrokerConfig, OverflowPolicy, RetentionConfig, UniverseFeed};
use darkdns::core::broker_view::BrokerZoneView;
use darkdns::registry::czds::SnapshotSchedule;
use darkdns::registry::hosting::HostingLandscape;
use darkdns::registry::registrar::RegistrarFleet;
use darkdns::registry::tld::{paper_gtlds, TldId};
use darkdns::registry::workload::{UniverseBuilder, WorkloadConfig};
use darkdns::sim::rng::RngPool;
use darkdns::sim::time::SimDuration;

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let tlds = paper_gtlds();
    let fleet = RegistrarFleet::paper_fleet();
    let hosting = HostingLandscape::paper_landscape();
    let config = WorkloadConfig {
        scale: 0.002,
        window_days: 3,
        base_population_frac: 0.005,
        ..WorkloadConfig::default()
    };
    let pool = RngPool::new(seed);
    let schedule = SnapshotSchedule::new(&pool, &tlds, config.window_start, config.window_days);
    let anchor = config.window_start;
    let universe = UniverseBuilder {
        tlds: &tlds,
        fleet: &fleet,
        hosting: &hosting,
        schedule: &schedule,
        config,
    }
    .build(&pool);

    // A 3-TLD broker universe at the historical 5-minute push cadence.
    let tld_ids = [TldId(0), TldId(1), TldId(2)];
    let mut feed =
        UniverseFeed::build(&universe, &tlds, &tld_ids, anchor, SimDuration::from_minutes(5));
    let broker = Broker::new(BrokerConfig {
        retention: RetentionConfig::new(64, 16),
        subscriber_capacity: 4096,
        overflow: OverflowPolicy::Lag,
        lag_slo: None,
    });
    feed.register_shards(&broker);
    println!("broker over 3 TLDs (seed {seed}): {} pushes pending", feed.pending());
    for stream in feed.streams() {
        println!(
            "  {:<4} start serial {} -> head serial {} over {} pushes ({} domains touched)",
            stream.origin.as_str(),
            stream.start.serial(),
            stream.head.serial(),
            stream.pushes.len(),
            stream.delta_len(),
        );
    }

    // Subscriber A follows live from the shard origins.
    let mut live = BrokerZoneView::subscribe(&broker, &tld_ids);
    live.pump();

    // Publish the first half of the stream.
    let halfway = feed.pending() / 2;
    for _ in 0..halfway {
        feed.publish_next(&broker);
    }
    live.pump();

    // Subscriber B joins mid-stream with no prior state: the broker
    // answers with checkpoint snapshots plus post-checkpoint deltas.
    let mut late = BrokerZoneView::subscribe(&broker, &tld_ids);
    late.pump();
    let stats = broker.stats();
    println!(
        "\nmid-stream join after {halfway} pushes: {} checkpoint bootstrap(s), {} delta replay(s)",
        stats.snapshot_catchups, stats.delta_catchups,
    );
    for &tld in &tld_ids {
        println!(
            "  tld {:<2} late-joiner at serial {:?} vs broker head {:?} -> in sync: {}",
            tld.0,
            late.serial(tld).map(|s| s.get()),
            broker.head(tld).map(|h| h.serial().get()),
            late.serial(tld) == broker.head(tld).map(|h| h.serial()),
        );
    }

    // Publish the rest; both subscribers follow the shared frames.
    feed.publish_all(&broker);
    live.pump();
    late.pump();

    println!("\nconvergence serials after full stream:");
    for &tld in &tld_ids {
        let head = broker.head(tld).expect("shard exists").serial();
        println!(
            "  tld {:<2} head {:>6}  live {:>6}  late-joiner {:>6}",
            tld.0,
            head.get(),
            live.serial(tld).expect("live synced").get(),
            late.serial(tld).expect("late synced").get(),
        );
        assert_eq!(live.serial(tld), Some(head), "live subscriber diverged");
        assert_eq!(late.serial(tld), Some(head), "late joiner diverged");
    }

    let stats = broker.stats();
    println!(
        "\nbroker stats: {} frames encoded once ({} KiB), {} deliveries to {} subscribers, \
         {} lagged, {} evicted",
        stats.frames_encoded,
        stats.frame_bytes_encoded / 1024,
        stats.deliveries,
        stats.subscribers,
        stats.lagged_messages,
        stats.evictions,
    );
    let mut nrd_log = Vec::new();
    live.drain_new_domains(&mut nrd_log);
    let live_nrds = nrd_log.len();
    nrd_log.clear();
    late.drain_new_domains(&mut nrd_log);
    println!(
        "zone NRDs observed live by the full-stream subscriber: {live_nrds} \
         (late joiner saw {} — checkpoint bootstrap compacts earlier churn away)",
        nrd_log.len(),
    );
}
