//! Fleet-wide lag walker: one `RZUQ` dialect, every tier.
//!
//! Operators of a tiered RZU deployment need one question answered per
//! TLD: *how far behind the root is each tier right now?* Every node in
//! the tree — the root broker, each (shard-filtered) relay, and the
//! edge query front — answers the same `RZUQ` stats round trip with
//! per-shard head serials, so a walker can dial the whole fleet and
//! render per-TLD lag without any node-specific protocol.
//!
//! Topology (all links loopback TCP; relays are **shard-filtered**,
//! each subscribing to half the universe with a scoped HELLO so only
//! its own shards ever cross its upstream link):
//!
//! ```text
//!                 root broker   (6 TLD shards)
//!                 /          \
//!     relay west (tld 0-2)  relay east (tld 3-5)
//!                 \          /
//!            routed edge feed (2 routes)  →  EdgeServer (RZUQ front)
//! ```
//!
//! The run publishes churn, scrapes the fleet **mid-flight** (before
//! the edge pumps) so the walk shows real non-zero lag at the edge
//! tier, then pumps to convergence and walks again to show the lag
//! draining to zero — asserting, along the way, that each filtered
//! relay reports exactly its subscribed subset and nothing else.
//!
//! ```sh
//! cargo run --release --example fleet_lag_walker [seed]
//! ```

use darkdns::broker::transport::{fetch_stats, tcp_connect, FrameConn, StatsReport, TransportError};
use darkdns::broker::{
    Broker, BrokerConfig, BrokerServer, OverflowPolicy, TransportConfig, UniverseFeed,
};
use darkdns::core::broker_view::EndpointMap;
use darkdns::dns::Serial;
use darkdns::edge::{EdgeConfig, EdgeIndex, EdgeIndexConfig, EdgeServer, RoutedEdgeFeed};
use darkdns::registry::tld::{synthetic_fleet, TldId};
use darkdns::registry::workload::{build_fleet_universe, WorkloadConfig};
use darkdns::sim::time::SimDuration;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const FLEET: usize = 6;
const ROUNDS: u64 = 4;
const CONVERGE: Duration = Duration::from_secs(10);

/// One tier's scrape, reduced to what the lag walk needs: per-TLD head
/// serials (absent = the node does not carry that shard).
struct TierHeads {
    name: &'static str,
    heads: BTreeMap<u16, u32>,
}

fn walk_tier(name: &'static str, addr: SocketAddr) -> TierHeads {
    let report: StatsReport =
        fetch_stats(tcp_connect(addr).expect("dial tier")).expect("RZUQ scrape");
    let heads =
        report.shards.iter().map(|s| (s.tld, s.head_serial.get())).collect::<BTreeMap<_, _>>();
    TierHeads { name, heads }
}

/// Render the fleet walk: one row per TLD, one column per tier, each
/// cell `head (lag)` against the root column. Returns the worst lag
/// seen at the last tier (the edge), so callers can assert on it.
fn render_walk(root: &TierHeads, tiers: &[&TierHeads]) -> u32 {
    print!("{:>6} | {:>10}", "tld", root.name);
    for tier in tiers {
        print!(" | {:>14}", tier.name);
    }
    println!();
    let mut worst_edge_lag = 0u32;
    for (&tld, &root_head) in &root.heads {
        print!("{tld:>6} | {root_head:>10}");
        for (i, tier) in tiers.iter().enumerate() {
            match tier.heads.get(&tld) {
                Some(&head) => {
                    // RFC 1982 order guarantees root >= every tier here;
                    // the walk renders plain distance.
                    let lag = root_head.wrapping_sub(head);
                    if i == tiers.len() - 1 {
                        worst_edge_lag = worst_edge_lag.max(lag);
                    }
                    print!(" | {head:>8} ({lag:>2})");
                }
                None => print!(" | {:>14}", "-"),
            }
        }
        println!();
    }
    worst_edge_lag
}

fn dial_edge(addr: &SocketAddr) -> Result<Box<dyn FrameConn>, TransportError> {
    let mut conn = tcp_connect(*addr)?;
    conn.set_recv_timeout(Some(Duration::from_millis(2)))?;
    Ok(Box::new(conn))
}

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(11);
    let tlds = synthetic_fleet(FLEET);
    let config = WorkloadConfig {
        scale: 0.004,
        window_days: 1,
        base_population_frac: 0.004,
        ..WorkloadConfig::default()
    };
    let anchor = config.window_start;
    let universe = build_fleet_universe(&tlds, config, seed);
    let tld_ids: Vec<TldId> = (0..FLEET).map(|t| TldId(t as u16)).collect();
    let mut feed =
        UniverseFeed::build(&universe, &tlds, &tld_ids, anchor, SimDuration::from_minutes(5));

    let root_broker = Broker::new(BrokerConfig {
        subscriber_capacity: 1 << 16,
        overflow: OverflowPolicy::Lag,
        ..BrokerConfig::default()
    });
    feed.register_shards(&root_broker);
    let root_server = BrokerServer::new(
        root_broker.clone(),
        TransportConfig { writer_tick: Duration::from_millis(2), ..TransportConfig::default() },
    );
    let root_addr = root_server.listen_tcp("127.0.0.1:0").expect("bind root");

    // Two shard-filtered relays: west carries TLDs 0..3, east 3..6.
    // Each relay's scoped HELLO claims exactly its half, so the other
    // half's frames never cross its upstream link.
    let west_tlds: Vec<TldId> = tld_ids[..FLEET / 2].to_vec();
    let east_tlds: Vec<TldId> = tld_ids[FLEET / 2..].to_vec();
    let spawn_relay = |subset: Vec<TldId>| {
        let server = BrokerServer::new(
            Broker::new(BrokerConfig {
                subscriber_capacity: 1 << 16,
                overflow: OverflowPolicy::Lag,
                ..BrokerConfig::default()
            }),
            TransportConfig { writer_tick: Duration::from_millis(2), ..TransportConfig::default() },
        );
        let addr = server.listen_tcp("127.0.0.1:0").expect("bind relay");
        let count = subset.len() as u64;
        let handle = server.attach_upstream(subset, move || {
            Ok(Box::new(tcp_connect(root_addr)?) as Box<dyn FrameConn>)
        });
        let deadline = std::time::Instant::now() + CONVERGE;
        while handle.stats().snapshots_installed < count {
            assert!(std::time::Instant::now() < deadline, "relay bootstrap");
            std::thread::sleep(Duration::from_millis(1));
        }
        (server, addr, handle)
    };
    let (west_server, west_addr, west_handle) = spawn_relay(west_tlds.clone());
    let (east_server, east_addr, east_handle) = spawn_relay(east_tlds.clone());
    println!(
        "root {root_addr}; filtered relays west {west_addr} (tld 0-{}) / east {east_addr} (tld {}-{})",
        FLEET / 2 - 1,
        FLEET / 2,
        FLEET - 1
    );

    // One routed edge feed spanning both relays (one route per shard
    // partition), fronted by an RZUQ-speaking EdgeServer.
    let mut map = EndpointMap::new();
    map.add_route(west_tlds.clone(), vec![west_addr]);
    map.add_route(east_tlds.clone(), vec![east_addr]);
    let index = Arc::new(EdgeIndex::new(EdgeIndexConfig::default()));
    let mut edge = RoutedEdgeFeed::connect(map, dial_edge, index).expect("edge bootstrap");
    let edge_server = EdgeServer::new(
        Arc::clone(edge.index()),
        EdgeConfig { writer_tick: Duration::from_millis(2), ..EdgeConfig::default() },
    );
    let edge_addr = edge_server.listen_tcp("127.0.0.1:0").expect("bind edge front");

    // Publish churn; keep the edge converged for the first rounds.
    let step = SimDuration::from_minutes(30);
    let mut at = anchor;
    let mut published = 0usize;
    let targets = |root: &Broker| -> Vec<(TldId, Serial)> {
        tld_ids.iter().filter_map(|&t| root.head(t).map(|h| (t, h.serial()))).collect()
    };
    for _ in 0..ROUNDS - 1 {
        at = at + step;
        published += feed.publish_until(&root_broker, at);
        assert!(edge.pump_until_serials(&targets(&root_broker), CONVERGE), "edge converges");
    }

    // Final round: publish, give the relays a beat to absorb it, but
    // do NOT pump the edge yet — the walk catches the edge mid-lag.
    at = at + step;
    published += feed.publish_until(&root_broker, at);
    let relay_deadline = std::time::Instant::now() + CONVERGE;
    loop {
        let west_ok = west_tlds.iter().all(|&t| {
            walk_tier("west", west_addr).heads.get(&t.0).copied()
                == root_broker.head(t).map(|h| h.serial().get())
        });
        let east_ok = east_tlds.iter().all(|&t| {
            walk_tier("east", east_addr).heads.get(&t.0).copied()
                == root_broker.head(t).map(|h| h.serial().get())
        });
        if west_ok && east_ok {
            break;
        }
        assert!(std::time::Instant::now() < relay_deadline, "relays absorb the final round");
        std::thread::sleep(Duration::from_millis(1));
    }

    let root_heads = walk_tier("root", root_addr);
    let west_heads = walk_tier("relay west", west_addr);
    let east_heads = walk_tier("relay east", east_addr);
    let edge_heads = walk_tier("edge front", edge_addr);

    // A filtered relay's report IS its subscription: exactly its
    // subset, nothing else — the other half never crossed its link.
    assert_eq!(west_heads.heads.len(), FLEET / 2, "west reports only its subset");
    assert_eq!(east_heads.heads.len(), FLEET - FLEET / 2, "east reports only its subset");
    assert!(west_tlds.iter().all(|t| west_heads.heads.contains_key(&t.0)));
    assert!(east_tlds.iter().all(|t| east_heads.heads.contains_key(&t.0)));

    println!("\nfleet walk, mid-flight (edge not yet pumped):");
    let lag_before =
        render_walk(&root_heads, &[&west_heads, &east_heads, &edge_heads]);
    println!("worst edge lag: {lag_before} serials behind the root");

    // Drain the lag and walk again: every tier's head must now equal
    // the root's on every TLD it carries.
    assert!(edge.pump_until_serials(&targets(&root_broker), CONVERGE), "edge drains its lag");
    let root_heads = walk_tier("root", root_addr);
    let west_heads = walk_tier("relay west", west_addr);
    let east_heads = walk_tier("relay east", east_addr);
    let edge_heads = walk_tier("edge front", edge_addr);
    println!("\nfleet walk, after the edge pump:");
    let lag_after = render_walk(&root_heads, &[&west_heads, &east_heads, &edge_heads]);
    assert_eq!(lag_after, 0, "a converged fleet walks with zero lag everywhere");
    for heads in [&west_heads, &east_heads, &edge_heads] {
        for (tld, head) in &heads.heads {
            assert_eq!(
                Some(head),
                root_heads.heads.get(tld).as_deref(),
                "{} head for tld {tld} must match the root",
                heads.name
            );
        }
    }

    // The filtered link accounting: each relay relayed only its half.
    let west_stats = west_handle.stats();
    let east_stats = east_handle.stats();
    assert_eq!(
        west_stats.frames_relayed + east_stats.frames_relayed,
        published as u64,
        "the two filtered halves partition the root's push stream"
    );
    println!(
        "\n{published} pushes split across filtered links: west relayed {}, east {}",
        west_stats.frames_relayed, east_stats.frames_relayed
    );

    edge_server.shutdown();
    west_server.shutdown();
    east_server.shutdown();
    root_server.shutdown();
    println!("fleet lag walk complete: {ROUNDS} rounds, zero residual lag");
}
