//! Quickstart: run a scaled-down DarkDNS experiment end to end and print
//! every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release --example quickstart [seed]
//! ```
//!
//! For the full paper-shaped run (92 days, 1% of paper volume) use the
//! bench binaries, e.g. `cargo run --release -p darkdns-bench --bin
//! full_report`.

use darkdns::core::{Experiment, ExperimentConfig};

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let config = ExperimentConfig::small(seed);
    println!(
        "running the DarkDNS pipeline: {} TLDs, {} days, scale {} (seed {seed})\n",
        config.tlds.len(),
        config.window_days(),
        config.workload.scale
    );
    let report = Experiment::new(config).run();
    println!("{}", report.render_text());
}
