//! Fleet-health monitoring across both serving tiers: scrape the
//! broker's `RZUQ` endpoint and the edge's (same wire dialect, mapped
//! counters) on a cadence and render the deltas as a text table.
//!
//! The deployment under observation: a multi-TLD universe publishing
//! through a `BrokerServer` on loopback TCP; two full-replica
//! subscribers (`RemoteZoneView`) pumping over sockets; an edge tier
//! (`EdgeFeed` → `EdgeIndex` → `EdgeServer`) serving thin-client
//! lookups while the publisher runs. Each monitoring round publishes
//! one step of churn, scrapes both endpoints with the same
//! [`fetch_stats`] helper the operators' tooling uses, and prints
//! per-round deltas — pushes and deliveries on the broker side, batches
//! and names answered on the edge side — plus the per-TLD head serials
//! both tiers agree on.
//!
//! ```sh
//! cargo run --release --example edge_monitor [seed]
//! ```

use darkdns::broker::transport::{fetch_stats, tcp_connect, FrameConn, StatsReport, TransportClient};
use darkdns::broker::{
    Broker, BrokerConfig, BrokerServer, OverflowPolicy, TransportConfig, UniverseFeed,
};
use darkdns::core::broker_view::RemoteZoneView;
use darkdns::dns::wire::{LookupQuery, LOOKUP_ANY_TLD};
use darkdns::dns::DomainName;
use darkdns::edge::{EdgeClient, EdgeConfig, EdgeFeed, EdgeIndex, EdgeIndexConfig, EdgeServer};
use darkdns::registry::tld::{synthetic_fleet, TldId};
use darkdns::registry::workload::{build_fleet_universe, WorkloadConfig};
use darkdns::sim::time::SimDuration;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const FLEET: usize = 8;
const ROUNDS: u64 = 6;
const THIN_CLIENTS: usize = 3;

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let tlds = synthetic_fleet(FLEET);
    let config = WorkloadConfig {
        scale: 0.004,
        window_days: 1,
        base_population_frac: 0.004,
        ..WorkloadConfig::default()
    };
    let anchor = config.window_start;
    let universe = build_fleet_universe(&tlds, config, seed);
    let tld_ids: Vec<TldId> = (0..FLEET).map(|t| TldId(t as u16)).collect();
    let mut feed =
        UniverseFeed::build(&universe, &tlds, &tld_ids, anchor, SimDuration::from_minutes(5));

    let broker = Broker::new(BrokerConfig {
        subscriber_capacity: 1 << 16,
        overflow: OverflowPolicy::Lag,
        ..BrokerConfig::default()
    });
    feed.register_shards(&broker);
    let broker_server = BrokerServer::new(
        broker.clone(),
        TransportConfig { writer_tick: Duration::from_millis(5), ..TransportConfig::default() },
    );
    let broker_addr = broker_server.listen_tcp("127.0.0.1:0").expect("bind broker");

    // The edge tier: in-process feed, TCP query front.
    let index = Arc::new(EdgeIndex::new(EdgeIndexConfig::default()));
    let mut edge_feed = EdgeFeed::subscribe(&broker, &tld_ids, Arc::clone(&index));
    let edge_server = EdgeServer::new(
        Arc::clone(&index),
        EdgeConfig { writer_tick: Duration::from_millis(5), ..EdgeConfig::default() },
    );
    let edge_addr = edge_server.listen_tcp("127.0.0.1:0").expect("bind edge");

    // Two full replicas over real sockets: the broker's subscriber rows.
    let stop = Arc::new(AtomicBool::new(false));
    let replicas: Vec<_> = (0..2)
        .map(|_| {
            let tld_ids = tld_ids.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut view = RemoteZoneView::connect(&tld_ids, move |claims| {
                    let mut conn = tcp_connect(broker_addr)?;
                    conn.set_recv_timeout(Some(Duration::from_millis(2)))?;
                    TransportClient::connect(conn, claims)
                })
                .expect("dial broker");
                while !stop.load(Ordering::Relaxed) {
                    view.pump(1024);
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();

    // Thin clients hammering the edge for the whole run.
    let client_lookups = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..THIN_CLIENTS)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let counter = Arc::clone(&client_lookups);
            std::thread::spawn(move || {
                let mut client = EdgeClient::connect_tcp(edge_addr).expect("dial edge");
                let queries: Vec<LookupQuery> = (0..16)
                    .map(|i| LookupQuery {
                        tld: if i % 4 == 0 { LOOKUP_ANY_TLD } else { i % FLEET as u16 },
                        name: DomainName::parse(&format!("probe{c}-{i}.example")).unwrap(),
                    })
                    .collect();
                while !stop.load(Ordering::Relaxed) {
                    let response = client.lookup(&queries).expect("edge lookup");
                    counter.fetch_add(response.answers.len() as u64, Ordering::Relaxed);
                }
            })
        })
        .collect();

    println!(
        "monitoring a {FLEET}-TLD fleet (seed {seed}): broker at {broker_addr}, edge at \
         {edge_addr}, {THIN_CLIENTS} thin clients\n"
    );

    let step = SimDuration::from_minutes(30);
    let mut at = anchor;
    let mut prev_broker: Option<StatsReport> = None;
    let mut prev_edge: Option<StatsReport> = None;
    for round in 1..=ROUNDS {
        at = at + step;
        feed.publish_until(&broker, at);
        edge_feed.pump();
        std::thread::sleep(Duration::from_millis(40)); // let sockets drain

        let broker_report = fetch_stats(tcp_connect(broker_addr).expect("dial"))
            .expect("scrape broker");
        let edge_report =
            fetch_stats(tcp_connect(edge_addr).expect("dial")).expect("scrape edge");

        render_round(round, &broker_report, &edge_report, prev_broker.as_ref(), prev_edge.as_ref());
        prev_broker = Some(broker_report);
        prev_edge = Some(edge_report);
    }

    stop.store(true, Ordering::Relaxed);
    for handle in replicas.into_iter().chain(clients) {
        handle.join().unwrap();
    }

    let final_edge = edge_server.stats();
    println!(
        "\nrun totals: {} lookups answered over {} batches; {} answers observed client-side; \
         edge epoch {}",
        final_edge.lookup_names,
        final_edge.lookup_batches,
        client_lookups.load(Ordering::Relaxed),
        index.epoch(),
    );
    assert!(final_edge.lookup_batches > 0, "thin clients must have been served");
    assert_eq!(final_edge.bad_frames, 0);
    edge_server.shutdown();
    broker_server.shutdown();
}

/// One monitoring round: both tiers' deltas plus head-serial agreement.
fn render_round(
    round: u64,
    broker: &StatsReport,
    edge: &StatsReport,
    prev_broker: Option<&StatsReport>,
    prev_edge: Option<&StatsReport>,
) {
    let d = |cur: u64, prev: u64| cur.saturating_sub(prev);
    let (b0, e0) = (
        prev_broker.map(|r| r.server).unwrap_or_default(),
        prev_edge.map(|r| r.server).unwrap_or_default(),
    );
    println!("== round {round} ==");
    println!(
        "broker : Δdeltas {:>5}  Δsnapshots {:>3}  Δcoalesced {:>5}  live subs {:>2}  \
         disconnects {:>2}",
        d(broker.server.deltas_sent, b0.deltas_sent),
        d(broker.server.snapshots_sent, b0.snapshots_sent),
        d(broker.server.coalesced_frames, b0.coalesced_frames),
        broker.subs.len(),
        broker.server.disconnects,
    );
    // Edge dialect: handshakes = batches, deltas_sent = names answered,
    // shard.pushes = index epoch (see `darkdns_edge::server` docs).
    println!(
        "edge   : Δbatches {:>6}  Δnames {:>7}  open conns {:>2}  epoch {:>4}  bad frames {:>2}",
        d(edge.server.handshakes, e0.handshakes),
        d(edge.server.deltas_sent, e0.deltas_sent),
        edge.shards.first().map_or(0, |s| s.subscribers),
        edge.shards.first().map_or(0, |s| s.pushes),
        edge.server.rejected_hellos,
    );
    print!("heads  : ");
    for shard in &broker.shards {
        let edge_head = edge
            .shards
            .iter()
            .find(|e| e.tld == shard.tld)
            .map(|e| e.head_serial)
            .unwrap_or_default();
        let mark = if edge_head == shard.head_serial { '=' } else { '<' };
        print!("tld{}:{}{}{} ", shard.tld, shard.head_serial.get(), mark, edge_head.get());
    }
    println!("\n");
}
