//! The CZDS consumer workflow: materialise two daily snapshots of a TLD
//! zone, round-trip them through the on-disk zone-file format, diff them
//! with all three engines, and verify the engines agree and the delta
//! applies cleanly.
//!
//! This is the "diff yesterday's snapshot against today's" loop every
//! CZDS-based research pipeline (including the paper's Table 1 `Zone
//! NRD` column) runs at scale.
//!
//! ```sh
//! cargo run --release --example zone_diffing [seed]
//! ```

use darkdns::dns::diff::{HashPartitionedDiff, SortedMergeDiff, ZoneDiffEngine};
use darkdns::dns::ZoneSnapshot;
use darkdns::registry::czds::{SnapshotOracle, SnapshotSchedule};
use darkdns::registry::hosting::HostingLandscape;
use darkdns::registry::registrar::RegistrarFleet;
use darkdns::registry::tld::{paper_gtlds, TldId};
use darkdns::registry::workload::{UniverseBuilder, WorkloadConfig};
use darkdns::sim::rng::RngPool;

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let tlds = paper_gtlds();
    let fleet = RegistrarFleet::paper_fleet();
    let hosting = HostingLandscape::paper_landscape();
    let config = WorkloadConfig {
        scale: 0.002,
        window_days: 5,
        base_population_frac: 0.01,
        ..WorkloadConfig::default()
    };
    let pool = RngPool::new(seed);
    let schedule = SnapshotSchedule::new(&pool, &tlds, config.window_start, config.window_days);
    let universe = UniverseBuilder {
        tlds: &tlds,
        fleet: &fleet,
        hosting: &hosting,
        schedule: &schedule,
        config,
    }
    .build(&pool);
    let oracle = SnapshotOracle::new(&schedule);

    // Materialise two consecutive .com snapshots.
    let com = TldId(0);
    let yesterday = oracle.materialize(&universe, &tlds, com, 2);
    let today = oracle.materialize(&universe, &tlds, com, 3);
    println!(
        "materialised .com snapshots (seed {seed}): day 2 = {} delegations, day 3 = {}",
        yesterday.len(),
        today.len()
    );

    // Round-trip through the CZDS-style text format on disk.
    let dir = std::env::temp_dir().join("darkdns-zone-diffing");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("com-day2.zone");
    std::fs::write(&path, yesterday.to_text()).expect("write zone file");
    let reparsed = ZoneSnapshot::parse_text(&std::fs::read_to_string(&path).expect("read back"))
        .expect("parse zone file");
    assert_eq!(reparsed, yesterday, "on-disk round trip must be lossless");
    println!("zone file round trip OK ({})", path.display());

    // Diff with both snapshot engines and check they agree.
    let merge = SortedMergeDiff.diff(&yesterday, &today);
    let hashed = HashPartitionedDiff::new(16).diff(&yesterday, &today);
    assert_eq!(merge, hashed, "engines must produce identical canonical deltas");
    println!(
        "\nzone diff day 2 → day 3: +{} added, -{} removed, ~{} NS-changed",
        merge.added.len(),
        merge.removed.len(),
        merge.changed.len()
    );
    println!("sample additions (the `Zone NRD` population of Table 1):");
    for (domain, ns) in merge.added.iter().take(8) {
        println!("  {:<40} NS {}", domain.as_str(), ns[0]);
    }

    // Applying the delta to yesterday reproduces today exactly.
    let rebuilt = merge.apply(&yesterday, today.serial(), today.taken_at());
    assert_eq!(rebuilt, today, "apply(diff(a,b), a) == b");
    println!("\ndelta application verified: apply(diff(a,b), a) == b");
}
