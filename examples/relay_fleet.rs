//! A three-tier relay deployment: one root broker fanning out through
//! two regional relays to four edge feeds, with a mid-stream relay
//! failure healed by replica failover and reconnect-with-claims.
//!
//! Topology (all links loopback TCP):
//!
//! ```text
//!             root broker  (publishes the fleet's RZU churn)
//!              /        \
//!      relay west      relay east     (BrokerServer::attach_upstream)
//!        |      \      /      |
//!     edge0    edge1  edge2  edge3    (RoutedEdgeFeed, replica lists)
//! ```
//!
//! Each edge's `EndpointMap` route lists *both* relays, preferring its
//! region's. Deltas cross every tier as the root's exact `RZU1` bytes
//! (the relays re-serve the received frames verbatim, never re-encode),
//! so the bandwidth and encode cost per delta is flat in tree depth.
//!
//! Halfway through the run the east relay is killed while the
//! publisher keeps pushing. The two east edges dial their replica
//! list's next entry — the west relay — carrying per-TLD serial
//! claims, so the outage heals as a delta replay: exactly one resync
//! per orphaned edge, zero re-bootstraps, zero double-applied deltas.
//! The west edges never notice.
//!
//! The run ends with an `RZUQ` scrape of all three tiers — root
//! broker, surviving relay, and an `EdgeServer` fronting edge0's index
//! — using the same [`fetch_stats`] helper operators' tooling uses,
//! and asserts the three tiers agree on every TLD's head serial.
//!
//! ```sh
//! cargo run --release --example relay_fleet [seed]
//! ```

use darkdns::broker::transport::{fetch_stats, tcp_connect, FrameConn, TransportError};
use darkdns::broker::{
    Broker, BrokerConfig, BrokerServer, OverflowPolicy, TransportConfig, UniverseFeed,
};
use darkdns::core::broker_view::EndpointMap;
use darkdns::dns::Serial;
use darkdns::edge::{
    EdgeConfig, EdgeIndex, EdgeIndexConfig, EdgeServer, RoutedEdgeFeed,
};
use darkdns::registry::tld::{synthetic_fleet, TldId};
use darkdns::registry::workload::{build_fleet_universe, WorkloadConfig};
use darkdns::sim::time::SimDuration;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const FLEET: usize = 6;
const EDGES: usize = 4;
const ROUNDS_BEFORE_FAULT: u64 = 3;
const ROUNDS_AFTER_FAULT: u64 = 3;
const CONVERGE: Duration = Duration::from_secs(10);

/// One regional relay: its own broker + server, attached upstream.
struct Relay {
    name: &'static str,
    server: BrokerServer,
    addr: SocketAddr,
    handle: darkdns::broker::transport::RelayHandle,
}

fn spawn_relay(name: &'static str, root_addr: SocketAddr, tld_ids: &[TldId]) -> Relay {
    let broker = Broker::new(BrokerConfig {
        subscriber_capacity: 1 << 16,
        overflow: OverflowPolicy::Lag,
        ..BrokerConfig::default()
    });
    let server = BrokerServer::new(
        broker,
        TransportConfig { writer_tick: Duration::from_millis(2), ..TransportConfig::default() },
    );
    let addr = server.listen_tcp("127.0.0.1:0").expect("bind relay");
    let handle = server.attach_upstream(tld_ids.to_vec(), move || {
        Ok(Box::new(tcp_connect(root_addr)?) as Box<dyn FrameConn>)
    });
    Relay { name, server, addr, handle }
}

fn dial_edge(addr: &SocketAddr) -> Result<Box<dyn FrameConn>, TransportError> {
    let mut conn = tcp_connect(*addr)?;
    conn.set_recv_timeout(Some(Duration::from_millis(2)))?;
    Ok(Box::new(conn))
}

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let tlds = synthetic_fleet(FLEET);
    let config = WorkloadConfig {
        scale: 0.004,
        window_days: 1,
        base_population_frac: 0.004,
        ..WorkloadConfig::default()
    };
    let anchor = config.window_start;
    let universe = build_fleet_universe(&tlds, config, seed);
    let tld_ids: Vec<TldId> = (0..FLEET).map(|t| TldId(t as u16)).collect();
    let mut feed =
        UniverseFeed::build(&universe, &tlds, &tld_ids, anchor, SimDuration::from_minutes(5));

    // Tier 1: the root broker, the only node that ever encodes a delta.
    let root_broker = Broker::new(BrokerConfig {
        subscriber_capacity: 1 << 16,
        overflow: OverflowPolicy::Lag,
        ..BrokerConfig::default()
    });
    feed.register_shards(&root_broker);
    let root_server = BrokerServer::new(
        root_broker.clone(),
        TransportConfig { writer_tick: Duration::from_millis(2), ..TransportConfig::default() },
    );
    let root_addr = root_server.listen_tcp("127.0.0.1:0").expect("bind root");

    // Tier 2: two regional relays bootstrapping from the root.
    let west = spawn_relay("west", root_addr, &tld_ids);
    let east = spawn_relay("east", root_addr, &tld_ids);
    for relay in [&west, &east] {
        let deadline = std::time::Instant::now() + CONVERGE;
        while relay.handle.stats().snapshots_installed < FLEET as u64 {
            assert!(std::time::Instant::now() < deadline, "{} relay bootstrap", relay.name);
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    println!(
        "root at {root_addr}; relays west {} / east {} bootstrapped ({} shards each)",
        west.addr, east.addr, FLEET
    );

    // Tier 3: four edge feeds, each preferring its region's relay but
    // carrying the sibling in its replica list. Edges 0,1 are west;
    // edges 2,3 are east.
    let mut edges: Vec<_> = (0..EDGES)
        .map(|e| {
            let prefer = if e < 2 { west.addr } else { east.addr };
            let fallback = if e < 2 { east.addr } else { west.addr };
            let mut map = EndpointMap::new();
            map.add_route(tld_ids.clone(), vec![prefer, fallback]);
            let index = Arc::new(EdgeIndex::new(EdgeIndexConfig::default()));
            RoutedEdgeFeed::connect(map, dial_edge, index).expect("edge bootstrap")
        })
        .collect();

    // An RZUQ-speaking query front over edge0's index: the third tier's
    // scrape endpoint.
    let edge_server = EdgeServer::new(
        Arc::clone(edges[0].index()),
        EdgeConfig { writer_tick: Duration::from_millis(2), ..EdgeConfig::default() },
    );
    let edge_addr = edge_server.listen_tcp("127.0.0.1:0").expect("bind edge server");

    let step = SimDuration::from_minutes(30);
    let mut at = anchor;
    let mut published = 0usize;
    let pump_round = |edges: &mut Vec<_>, root: &Broker, label: &str| {
        let targets: Vec<(TldId, Serial)> = tld_ids
            .iter()
            .filter_map(|&t| root.head(t).map(|h| (t, h.serial())))
            .collect();
        for (e, edge) in edges.iter_mut().enumerate() {
            let edge: &mut RoutedEdgeFeed<SocketAddr, _> = edge;
            assert!(
                edge.pump_until_serials(&targets, CONVERGE),
                "edge{e} must converge {label}"
            );
        }
    };

    for _ in 0..ROUNDS_BEFORE_FAULT {
        at = at + step;
        published += feed.publish_until(&root_broker, at);
        pump_round(&mut edges, &root_broker, "pre-fault");
    }
    println!("{published} pushes fanned out through both relays; all 4 edges in sync");

    // Kill the east relay mid-stream. Its two edges hold dead sockets;
    // the publisher does not pause.
    east.server.shutdown();
    println!("east relay killed; publishing continues");

    for _ in 0..ROUNDS_AFTER_FAULT {
        at = at + step;
        published += feed.publish_until(&root_broker, at);
        pump_round(&mut edges, &root_broker, "post-fault");
    }

    // The east edges healed by failing over to the west relay with
    // their serial claims: one resync each, replayed as deltas (no
    // fresh snapshot bootstrap), and no delta applied twice — the view
    // would refuse a non-chaining serial.
    for (e, edge) in edges.iter().enumerate() {
        let region = if e < 2 { "west" } else { "east" };
        println!(
            "edge{e} ({region}): serials ok, frames {:>3}, snapshots {:>2}, \
             failovers {}, resyncs {}",
            edge.view().frames_applied(),
            edge.view().snapshots_adopted(),
            edge.failover_count(),
            edge.view().resync_count(),
        );
        assert!(edge.is_connected(), "edge{e} must end connected");
        assert_eq!(edge.view().snapshots_adopted(), FLEET as u64, "claims heal: no re-bootstrap");
        if e < 2 {
            assert_eq!(edge.view().resync_count(), 0, "west edges never faulted");
        } else {
            assert!(edge.failover_count() >= 1, "east edges must fail over");
            assert_eq!(edge.view().resync_count(), 1, "exactly one resync per orphaned edge");
        }
    }
    let west_stats = west.handle.stats();
    assert!(west.handle.is_connected(), "west relay must survive");
    assert_eq!(west_stats.resyncs, 0, "the root link never faulted");
    assert_eq!(west_stats.frames_relayed, published as u64, "every delta relayed verbatim");

    // RZUQ across all three tiers, same wire dialect everywhere.
    let root_report = fetch_stats(tcp_connect(root_addr).expect("dial root")).expect("scrape root");
    let west_report =
        fetch_stats(tcp_connect(west.addr).expect("dial relay")).expect("scrape relay");
    let edge_report =
        fetch_stats(tcp_connect(edge_addr).expect("dial edge")).expect("scrape edge");
    println!("\nRZUQ scrape, tier by tier:");
    println!(
        "  root  : {:>4} deltas sent, {:>2} snapshots, {:>2} live subs",
        root_report.server.deltas_sent,
        root_report.server.snapshots_sent,
        root_report.subs.len(),
    );
    println!(
        "  relay : {:>4} deltas sent, {:>2} snapshots, {:>2} live subs (west; east is dark)",
        west_report.server.deltas_sent,
        west_report.server.snapshots_sent,
        west_report.subs.len(),
    );
    // Edge dialect: handshakes = lookup batches, shard.pushes = epoch.
    println!(
        "  edge  : {:>4} index epoch, {:>2} open conns (query front over edge0)",
        edge_report.shards.first().map_or(0, |s| s.pushes),
        edge_report.shards.first().map_or(0, |s| s.subscribers),
    );
    print!("  heads : ");
    for shard in &root_report.shards {
        let relay_head = west_report
            .shards
            .iter()
            .find(|r| r.tld == shard.tld)
            .map(|r| r.head_serial)
            .expect("relay mirrors every shard");
        assert_eq!(relay_head, shard.head_serial, "relay head must match root");
        print!("tld{}:{} ", shard.tld, shard.head_serial.get());
    }
    println!("(root == relay on every shard)");
    // After the survivors absorbed the east edges, the west relay
    // serves all four edges.
    assert_eq!(west_report.subs.len(), EDGES, "all edges on the surviving relay");

    edge_server.shutdown();
    west.server.shutdown();
    root_server.shutdown();
    println!("\nrelay fleet run complete: {published} pushes, one relay lost, zero gaps");
}
