//! The RZU distribution broker over a real socket transport.
//!
//! Builds a 3-TLD universe, materialises each TLD's RZU feed as a zone
//! delta stream, and serves it through `BrokerServer` on loopback TCP.
//! Four remote subscribers follow over sockets via `RemoteZoneView` —
//! frames are decoded by the same codecs a WAN deployment would use.
//! Mid-stream, one subscriber's socket is killed; it reconnects
//! carrying its per-TLD serial claims, so the broker heals it with a
//! delta replay of exactly the churn it missed. Everyone converges to
//! the publisher's head serials.
//!
//! ```sh
//! cargo run --release --example rzu_transport [seed]
//! ```

use darkdns::broker::transport::{FrameConn, LengthPrefixed, TransportClient, TransportError};
use darkdns::broker::{
    Broker, BrokerConfig, BrokerServer, OverflowPolicy, RetentionConfig, TransportConfig,
    UniverseFeed,
};
use darkdns::core::broker_view::RemoteZoneView;
use darkdns::dns::Serial;
use darkdns::registry::czds::SnapshotSchedule;
use darkdns::registry::hosting::HostingLandscape;
use darkdns::registry::registrar::RegistrarFleet;
use darkdns::registry::tld::{paper_gtlds, TldId};
use darkdns::registry::workload::{UniverseBuilder, WorkloadConfig};
use darkdns::sim::rng::RngPool;
use darkdns::sim::time::SimDuration;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Dial the server, remembering a socket clone so the example can kill
/// the link from outside (the "crashed subscriber" act).
fn dialer(
    addr: SocketAddr,
    kill: Arc<Mutex<Option<TcpStream>>>,
) -> impl FnMut(&[(TldId, Option<Serial>)]) -> Result<TransportClient, TransportError> {
    move |claims| {
        let stream = TcpStream::connect(addr).map_err(TransportError::Io)?;
        stream.set_nodelay(true).map_err(TransportError::Io)?;
        *kill.lock().unwrap() = Some(stream.try_clone().map_err(TransportError::Io)?);
        let mut conn = LengthPrefixed::new(stream);
        conn.set_recv_timeout(Some(Duration::from_millis(5)))?;
        TransportClient::connect(conn, claims)
    }
}

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let tlds = paper_gtlds();
    let fleet = RegistrarFleet::paper_fleet();
    let hosting = HostingLandscape::paper_landscape();
    let config = WorkloadConfig {
        scale: 0.002,
        window_days: 3,
        base_population_frac: 0.005,
        ..WorkloadConfig::default()
    };
    let pool = RngPool::new(seed);
    let schedule = SnapshotSchedule::new(&pool, &tlds, config.window_start, config.window_days);
    let anchor = config.window_start;
    let universe = UniverseBuilder {
        tlds: &tlds,
        fleet: &fleet,
        hosting: &hosting,
        schedule: &schedule,
        config,
    }
    .build(&pool);

    // A 3-TLD broker universe at the historical 5-minute push cadence.
    let tld_ids = [TldId(0), TldId(1), TldId(2)];
    let mut feed =
        UniverseFeed::build(&universe, &tlds, &tld_ids, anchor, SimDuration::from_minutes(5));
    let broker = Broker::new(BrokerConfig {
        retention: RetentionConfig::new(256, 32),
        subscriber_capacity: 4096,
        overflow: OverflowPolicy::Lag,
        lag_slo: None,
    });
    feed.register_shards(&broker);

    let server = BrokerServer::new(
        broker.clone(),
        TransportConfig { writer_tick: Duration::from_millis(10), ..TransportConfig::default() },
    );
    let addr = server.listen_tcp("127.0.0.1:0").expect("bind loopback");
    println!(
        "broker over 3 TLDs (seed {seed}) serving RZU1 frames on tcp://{addr} — {} pushes pending",
        feed.pending()
    );

    // Four socket subscribers. Subscriber 0 gets a kill switch.
    const SUBS: usize = 4;
    let kill = Arc::new(Mutex::new(None));
    let mut views: Vec<_> = (0..SUBS)
        .map(|i| {
            let kill = if i == 0 { Arc::clone(&kill) } else { Arc::new(Mutex::new(None)) };
            RemoteZoneView::connect(&tld_ids, dialer(addr, kill)).expect("tcp connect")
        })
        .collect();

    // First half of the stream, pumped live over the sockets.
    let halfway = feed.pending() / 2;
    for _ in 0..halfway {
        feed.publish_next(&broker);
    }
    pump_all(&mut views);

    // Kill subscriber 0's freshest socket: the next pump notices the
    // dead link and reconnects claiming its per-TLD serials.
    if let Some(sock) = kill.lock().unwrap().take() {
        let _ = sock.shutdown(Shutdown::Both);
    }
    // Also sever its *current* subscription the blunt way: drop frames
    // by publishing while it is not pumping. (The other three keep up.)
    feed.publish_all(&broker);
    converge(&mut views, &broker, &tld_ids);

    println!("\nconvergence serials over TCP:");
    for &tld in &tld_ids {
        let head = broker.head(tld).expect("shard exists").serial();
        print!("  tld {:<2} head {:>6}", tld.0, head.get());
        for (i, view) in views.iter().enumerate() {
            let serial = view.view().serial(tld).expect("synced").get();
            assert_eq!(serial, head.get(), "subscriber {i} diverged on tld {}", tld.0);
            print!("  sub{i} {serial:>6}");
        }
        println!();
    }

    let stats = server.stats();
    println!(
        "\ntransport: {} handshakes, {} delta envelopes + {} snapshots sent, \
         {} evict notices, {} disconnects",
        stats.handshakes, stats.deltas_sent, stats.snapshots_sent, stats.evict_notices,
        stats.disconnects,
    );
    for (i, view) in views.iter().enumerate() {
        println!(
            "  sub{i}: {} frames applied, {} snapshots adopted, {} resyncs",
            view.view().frames_applied(),
            view.view().snapshots_adopted(),
            view.view().resync_count(),
        );
    }
    let broker_stats = broker.stats();
    println!(
        "\nbroker: {} frames encoded once ({} KiB), {} deliveries, {} catch-ups \
         ({} snapshot / {} delta)",
        broker_stats.frames_encoded,
        broker_stats.frame_bytes_encoded / 1024,
        broker_stats.deliveries,
        broker_stats.snapshot_catchups + broker_stats.delta_catchups,
        broker_stats.snapshot_catchups,
        broker_stats.delta_catchups,
    );
    server.shutdown();
    println!("\nall {SUBS} socket subscribers converged to the head serials; done");
}

fn pump_all<D>(views: &mut [RemoteZoneView<D>])
where
    D: FnMut(&[(TldId, Option<Serial>)]) -> Result<TransportClient, TransportError>,
{
    for view in views.iter_mut() {
        view.pump(4096);
    }
}

fn converge<D>(views: &mut [RemoteZoneView<D>], broker: &Broker, tlds: &[TldId])
where
    D: FnMut(&[(TldId, Option<Serial>)]) -> Result<TransportClient, TransportError>,
{
    let deadline = Instant::now() + Duration::from_secs(60);
    for view in views.iter_mut() {
        loop {
            view.pump(4096);
            let synced = tlds
                .iter()
                .all(|&t| view.view().serial(t) == broker.head(t).map(|h| h.serial()));
            if synced {
                break;
            }
            assert!(Instant::now() < deadline, "subscriber failed to converge over TCP");
        }
    }
}
