//! Transient-domain hunting over the public NRD feed.
//!
//! The paper's motivating scenario: a security researcher subscribes to
//! the released "zonestream" feed of newly registered domains and builds
//! abuse signals *before* blocklists catch up. This example subscribes to
//! the feed, applies two cheap heuristics the paper's data motivates —
//! phishing-style labels (keyword-hyphen-digit compounds) and
//! bulk-series names — and then scores its verdicts against the
//! simulation's ground truth.
//!
//! ```sh
//! cargo run --release --example transient_hunt [seed]
//! ```

use darkdns::core::{Experiment, ExperimentConfig};

/// Label heuristics over the registrable domain's first label.
fn looks_suspicious(label: &str) -> bool {
    const KEYWORDS: [&str; 10] =
        ["secure", "login", "verify", "account", "wallet", "signin", "billing", "auth", "bank", "pay"];
    let has_keyword = KEYWORDS.iter().any(|k| label.contains(k));
    let has_digit = label.bytes().any(|b| b.is_ascii_digit());
    let has_hyphen = label.contains('-');
    (has_keyword && (has_digit || has_hyphen))
        || (has_digit && has_hyphen && label.len() >= 10)
}

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let experiment = Experiment::new(ExperimentConfig::small(seed));
    // Subscribe to the public feed before the pipeline runs.
    let feed = experiment.nrd_feed.subscribe();
    let arts = experiment.run_with_artifacts();

    let mut flagged = Vec::new();
    for record in feed.drain() {
        let label = record.domain.labels()[0].to_owned();
        if looks_suspicious(&label) {
            flagged.push(record);
        }
    }

    // Score against ground truth (the analyst cannot do this; we can).
    let mut true_positive = 0u64;
    for f in &flagged {
        if let Some(r) = arts.universe.lookup(&f.domain) {
            if r.malicious {
                true_positive += 1;
            }
        }
    }
    let malicious_candidates = arts
        .classified
        .iter()
        .filter(|c| arts.universe.get(c.validated.candidate.record).malicious)
        .count() as u64;

    println!("transient hunt (seed {seed})");
    println!("feed records received:        {}", arts.classified.len());
    println!("flagged by label heuristics:  {}", flagged.len());
    println!(
        "precision vs ground truth:    {:.1}%",
        100.0 * true_positive as f64 / flagged.len().max(1) as f64
    );
    println!(
        "recall over malicious NRDs:   {:.1}%",
        100.0 * true_positive as f64 / malicious_candidates.max(1) as f64
    );
    println!("\nsample of flagged domains:");
    for f in flagged.iter().take(10) {
        println!(
            "  {:<40} detected {}  registrar {}",
            f.domain.as_str(),
            f.detected_at,
            f.registrar.as_deref().unwrap_or("(RDAP failed)")
        );
    }
    println!(
        "\nthe point: these names were visible minutes after registration — hours to months\n\
         before the blocklists in §4.3 would have listed them."
    );
}
