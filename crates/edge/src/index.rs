//! The epoch/Arc-swap membership index: the edge's read path.
//!
//! # The epoch-swap read-path invariant
//!
//! Every query the edge answers runs against one [`EdgeEpoch`] — an
//! **immutable** value holding the per-TLD columnar snapshots and the
//! hot NRD-recency window. Readers obtain it by cloning an `Arc` out of
//! the index's epoch cell ([`EdgeIndex::load`]) and then answer
//! entirely lock-free: binary searches over `Arc`-shared snapshot
//! columns and hash probes into the window map, with no lock of any
//! kind held. Writers (the broker-subscription pump, a single logical
//! thread) build a **fresh** epoch off to the side and swap the cell's
//! `Arc` — the same swap-on-write idiom as the broker's shard
//! directory, so a reader mid-query keeps its epoch alive through the
//! refcount while new queries see the new one.
//!
//! In particular the read path **never touches the broker's shard
//! publish locks** (level 1 of the broker crate's lock hierarchy) —
//! queries proceed at full rate while the fleet publishes at full RZU
//! cadence. Debug builds assert this on every [`EdgeIndex::load`] and
//! every epoch query via
//! [`darkdns_broker::shard_locks_held_by_current_thread`]; the
//! concurrency test in this module hammers lookups against a publisher
//! to keep the assertion hot.
//!
//! The epoch cell itself is a lockdep-tracked `RwLock<Arc<EdgeEpoch>>`
//! (see [`darkdns_broker::lockdep`]): readers take the shared half for
//! the nanoseconds an `Arc::clone` costs, writers take the exclusive
//! half for a pointer store. The epoch *build* — the only O(index)
//! work — happens outside both halves, under a separate writer mutex
//! that exists purely to serialize concurrent writers. Both locks carry
//! classes in the workspace hierarchy (`docs/INVARIANTS.md`): the
//! writer mutex sits below the cell because it is held across the
//! cell's read-then-write swap sequence.

use darkdns_broker::lockdep::{LockClass, TrackedMutex, TrackedRwLock};
use darkdns_dns::hash::NameMap;
use darkdns_dns::wire::{LookupAnswer, LookupQuery, DeltaPush, LOOKUP_ANY_TLD};
use darkdns_dns::{DomainName, Serial, ZoneSnapshot};
use darkdns_registry::tld::TldId;
use darkdns_sim::time::SimTime;
use std::collections::VecDeque;
use std::sync::Arc;

/// The writer-serialization mutex's class: held across an epoch build,
/// during which the epoch cell is read and then written — hence below
/// [`EDGE_CELL`] in level.
static EDGE_WRITER: LockClass = LockClass::new("edge.writer", 60);
/// The epoch cell itself: held for an `Arc` clone (read) or a pointer
/// store (write), never while acquiring anything else.
static EDGE_CELL: LockClass = LockClass::new("edge.cell", 62);

/// Edge index tuning.
#[derive(Debug, Clone, Copy)]
pub struct EdgeIndexConfig {
    /// Hot NRD-recency horizon in sim-seconds: a name's first-seen
    /// event is forgotten once it is older than this relative to the
    /// newest delta the index has applied.
    pub nrd_window_secs: u64,
    /// Hard cap on retained NRD records; the oldest are pruned first
    /// when the cap is hit, regardless of age.
    pub nrd_capacity: usize,
}

impl Default for EdgeIndexConfig {
    fn default() -> Self {
        EdgeIndexConfig { nrd_window_secs: 48 * 3600, nrd_capacity: 65_536 }
    }
}

/// One NRD event retained in the hot window: a name appeared in a
/// delta's `added` section at `first_seen` (the push's publisher-side
/// timestamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NrdRecord {
    tld: TldId,
    name: DomainName,
    first_seen: SimTime,
}

/// The hot NRD-recency window: an append-ordered ring of recent
/// `added` events plus a `(tld, name)`-keyed map for O(1) recency
/// probes. Immutable inside an epoch; the writer clones and extends it
/// per applied delta (both sides are bounded by
/// [`EdgeIndexConfig::nrd_capacity`], so the clone is bounded too).
#[derive(Debug, Clone, Default)]
struct NrdWindow {
    /// Events in arrival order (oldest at the front).
    ring: VecDeque<NrdRecord>,
    /// Latest first-seen per (TLD, name) among ring entries.
    by_name: NameMap<(TldId, DomainName), SimTime>,
    /// Newest event timestamp ever observed — the window's "now".
    newest: SimTime,
}

impl NrdWindow {
    /// Append the `added` section of one applied delta, then prune by
    /// age and capacity.
    fn extend_from_push(&mut self, tld: TldId, push: &DeltaPush, config: &EdgeIndexConfig) {
        for (name, _) in &push.delta.added {
            let record = NrdRecord { tld, name: *name, first_seen: push.pushed_at };
            self.ring.push_back(record);
            self.by_name.insert((tld, *name), push.pushed_at);
        }
        if push.pushed_at > self.newest {
            self.newest = push.pushed_at;
        }
        let horizon = self.newest.as_secs().saturating_sub(config.nrd_window_secs);
        while let Some(front) = self.ring.front().copied() {
            let expired = front.first_seen.as_secs() < horizon;
            if !expired && self.ring.len() <= config.nrd_capacity {
                break;
            }
            self.ring.pop_front();
            // Only forget the map entry if this ring record is still
            // the one the map points at; a newer re-add keeps it.
            if self.by_name.get(&(front.tld, front.name)) == Some(&front.first_seen) {
                self.by_name.remove(&(front.tld, front.name));
            }
        }
    }

    fn first_seen(&self, tld: TldId, name: &DomainName) -> Option<SimTime> {
        self.by_name.get(&(tld, *name)).copied()
    }
}

/// One immutable generation of the edge index. See the module docs for
/// the read-path invariant; every query method here asserts it in
/// debug builds.
#[derive(Debug, Default)]
pub struct EdgeEpoch {
    epoch: u64,
    shards: NameMap<TldId, ZoneSnapshot>,
    nrd: NrdWindow,
}

/// Debug-assert the epoch-swap read-path invariant: answering a query
/// must never happen while the calling thread holds a broker shard
/// publish lock. (In release builds the probe compiles to 0.)
#[inline]
fn assert_no_shard_locks() {
    debug_assert_eq!(
        darkdns_broker::shard_locks_held_by_current_thread(),
        0,
        "edge read path ran under a broker shard publish lock"
    );
}

impl EdgeEpoch {
    /// The generation counter: strictly increasing across swaps, so two
    /// loads returning the same epoch answered from identical state.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The serial of `tld`'s snapshot, if the edge serves it.
    pub fn serial(&self, tld: TldId) -> Option<Serial> {
        assert_no_shard_locks();
        self.shards.get(&tld).map(|s| s.serial())
    }

    /// Is `name` currently delegated in `tld`? (Binary search over the
    /// `Arc`-shared snapshot columns.)
    pub fn contains(&self, tld: TldId, name: &DomainName) -> bool {
        assert_no_shard_locks();
        self.shards.get(&tld).is_some_and(|s| s.contains(name))
    }

    /// Is `name` delegated in any TLD the edge serves?
    pub fn contains_anywhere(&self, name: &DomainName) -> bool {
        assert_no_shard_locks();
        self.shards.values().any(|s| s.contains(name))
    }

    /// When `name` first appeared in `tld` within the hot NRD window.
    pub fn nrd_first_seen(&self, tld: TldId, name: &DomainName) -> Option<SimTime> {
        assert_no_shard_locks();
        self.nrd.first_seen(tld, name)
    }

    /// The most recent in-window first-seen for `name` across every
    /// served TLD.
    pub fn nrd_first_seen_anywhere(&self, name: &DomainName) -> Option<SimTime> {
        assert_no_shard_locks();
        self.shards.keys().filter_map(|&tld| self.nrd.first_seen(tld, name)).max()
    }

    /// NRD events currently retained in the hot window.
    pub fn nrd_len(&self) -> usize {
        self.nrd.ring.len()
    }

    /// TLDs this epoch serves, ascending.
    pub fn tlds(&self) -> Vec<TldId> {
        let mut tlds: Vec<TldId> = self.shards.keys().copied().collect();
        tlds.sort_unstable_by_key(|t| t.0);
        tlds
    }

    /// Answer one wire query. The [`LOOKUP_ANY_TLD`] sentinel maps to
    /// [`EdgeEpoch::contains_anywhere`] (no per-shard serial in the
    /// answer); a TLD the edge does not serve answers absent with no
    /// serial, which is how a thin client discovers it asked the wrong
    /// edge.
    pub fn answer_one(&self, query: &LookupQuery) -> LookupAnswer {
        assert_no_shard_locks();
        if query.tld == LOOKUP_ANY_TLD {
            return LookupAnswer {
                present: self.contains_anywhere(&query.name),
                serial: None,
                first_seen: self.nrd_first_seen_anywhere(&query.name),
            };
        }
        let tld = TldId(query.tld);
        match self.shards.get(&tld) {
            Some(snapshot) => LookupAnswer {
                present: snapshot.contains(&query.name),
                serial: Some(snapshot.serial()),
                first_seen: self.nrd.first_seen(tld, &query.name),
            },
            None => LookupAnswer::default(),
        }
    }

    /// Answer a whole `RZUL` batch in request order.
    pub fn answer(&self, queries: &[LookupQuery]) -> Vec<LookupAnswer> {
        queries.iter().map(|q| self.answer_one(q)).collect()
    }
}

/// The swap-on-write index cell. Writers go through
/// [`EdgeIndex::adopt_snapshot`] / [`EdgeIndex::apply_delta`]; readers
/// through [`EdgeIndex::load`]. See the module docs for the locking
/// story.
pub struct EdgeIndex {
    config: EdgeIndexConfig,
    /// The epoch cell: shared-half readers clone the `Arc`, the
    /// exclusive half is held for exactly one pointer store.
    // lock-level: 62
    current: TrackedRwLock<Arc<EdgeEpoch>>,
    /// Serializes writers so the read-build-swap sequence can run its
    /// O(index) build outside the epoch cell's lock.
    // lock-level: 60
    writer: TrackedMutex<()>,
}

impl Default for EdgeIndex {
    fn default() -> Self {
        Self::new(EdgeIndexConfig::default())
    }
}

impl EdgeIndex {
    pub fn new(config: EdgeIndexConfig) -> Self {
        EdgeIndex {
            config,
            current: TrackedRwLock::new(&EDGE_CELL, Arc::new(EdgeEpoch::default())),
            writer: TrackedMutex::new(&EDGE_WRITER, ()),
        }
    }

    pub fn config(&self) -> &EdgeIndexConfig {
        &self.config
    }

    /// The read path: clone the current epoch's `Arc` and answer from
    /// it lock-free. Two queries answered from one loaded epoch are
    /// mutually consistent; reload to observe writer progress.
    pub fn load(&self) -> Arc<EdgeEpoch> {
        assert_no_shard_locks();
        Arc::clone(&self.current.read())
    }

    /// The current generation counter (a `load` shorthand).
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch
    }

    /// Writer path: adopt `snapshot` as `tld`'s state (a bootstrap or
    /// rule-3 catch-up). Snapshot adoption does not feed the NRD window
    /// — a checkpoint's delegations are not *newly registered*, they
    /// are merely newly *known* to this edge.
    pub fn adopt_snapshot(&self, tld: TldId, snapshot: ZoneSnapshot) {
        self.swap_with(|next| {
            next.shards.insert(tld, snapshot);
        });
    }

    /// Writer path: install `tld`'s post-delta snapshot (already
    /// applied by the feed's zone view — `Arc`-shared, so the edge
    /// serves byte-identical state to a full replica at the same
    /// serial) and absorb the push's `added` section into the NRD
    /// window, stamped with the publisher-side `pushed_at`.
    pub fn apply_delta(&self, tld: TldId, snapshot: ZoneSnapshot, push: &DeltaPush) {
        let config = self.config;
        self.swap_with(|next| {
            next.shards.insert(tld, snapshot);
            next.nrd.extend_from_push(tld, push, &config);
        });
    }

    /// Writer path: drop every shard and NRD record, keeping the epoch
    /// counter moving — the feed calls this when it lost sync and must
    /// re-bootstrap, so clients never read a torn half-old index.
    pub fn clear(&self) {
        self.swap_with(|next| {
            next.shards.clear();
            next.nrd = NrdWindow::default();
        });
    }

    /// The swap-on-write engine: under the writer mutex, clone the
    /// current epoch's *contents* (cheap: snapshot values share their
    /// columns by `Arc`, the NRD window is capacity-bounded), mutate
    /// the clone, bump the generation, and swap the cell.
    fn swap_with(&self, build: impl FnOnce(&mut EdgeEpoch)) {
        let _writers = self.writer.lock();
        let cur = Arc::clone(&self.current.read());
        let mut next = EdgeEpoch {
            epoch: cur.epoch + 1,
            shards: cur.shards.clone(),
            nrd: cur.nrd.clone(),
        };
        build(&mut next);
        *self.current.write() = Arc::new(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkdns_dns::ZoneDelta;
    use darkdns_dns::zone::NsSet;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn snap(origin: &str, serial: u32, names: &[&str]) -> ZoneSnapshot {
        let entries = names
            .iter()
            .map(|n| (name(n), vec![name("ns1.provider0.net")]))
            .collect();
        ZoneSnapshot::from_entries(name(origin), Serial::new(serial), SimTime::ZERO, entries)
    }

    fn push_for(added: &[&str], from: u32, to: u32, at: u64) -> DeltaPush {
        let mut delta = ZoneDelta::default();
        for n in added {
            delta.added.push((name(n), NsSet::new(vec![name("ns1.provider0.net")])));
        }
        DeltaPush {
            origin: name("com"),
            from_serial: Serial::new(from),
            to_serial: Serial::new(to),
            pushed_at: SimTime::from_secs(at),
            delta,
        }
    }

    #[test]
    fn epoch_advances_and_readers_keep_their_generation() {
        let index = EdgeIndex::default();
        assert_eq!(index.epoch(), 0);
        let before = index.load();
        index.adopt_snapshot(TldId(0), snap("com", 1, &["a.com"]));
        assert_eq!(index.epoch(), 1);
        // The pre-swap reader still answers from its own generation.
        assert!(!before.contains(TldId(0), &name("a.com")));
        let after = index.load();
        assert!(after.contains(TldId(0), &name("a.com")));
        assert_eq!(after.serial(TldId(0)), Some(Serial::new(1)));
    }

    #[test]
    fn delta_feeds_nrd_window_and_snapshot_does_not() {
        let index = EdgeIndex::default();
        index.adopt_snapshot(TldId(0), snap("com", 1, &["old.com"]));
        let epoch = index.load();
        assert_eq!(epoch.nrd_len(), 0, "bootstrap names are not NRDs");
        assert_eq!(epoch.nrd_first_seen(TldId(0), &name("old.com")), None);

        let push = push_for(&["fresh.com"], 1, 2, 1000);
        let next = push.delta.apply(epoch.shards.get(&TldId(0)).unwrap(), push.to_serial, push.pushed_at);
        index.apply_delta(TldId(0), next, &push);
        let epoch = index.load();
        assert!(epoch.contains(TldId(0), &name("fresh.com")));
        assert_eq!(
            epoch.nrd_first_seen(TldId(0), &name("fresh.com")),
            Some(SimTime::from_secs(1000))
        );
        assert_eq!(epoch.nrd_first_seen_anywhere(&name("fresh.com")), Some(SimTime::from_secs(1000)));
        assert_eq!(epoch.nrd_len(), 1);
    }

    #[test]
    fn nrd_window_prunes_by_age_and_capacity() {
        let index = EdgeIndex::new(EdgeIndexConfig { nrd_window_secs: 100, nrd_capacity: 4 });
        index.adopt_snapshot(TldId(0), snap("com", 0, &[]));
        let mut state = index.load().shards.get(&TldId(0)).unwrap().clone();
        let mut serial = 0u32;
        let mut apply = |names: &[&str], at: u64, index: &EdgeIndex, state: &mut ZoneSnapshot| {
            let push = push_for(names, serial, serial + 1, at);
            serial += 1;
            *state = push.delta.apply(state, push.to_serial, push.pushed_at);
            index.apply_delta(TldId(0), state.clone(), &push);
        };
        apply(&["a.com"], 10, &index, &mut state);
        apply(&["b.com"], 70, &index, &mut state);
        apply(&["c.com"], 160, &index, &mut state);
        let epoch = index.load();
        // a.com (at 10) fell off the 100s window once c.com (160) landed.
        assert_eq!(epoch.nrd_first_seen(TldId(0), &name("a.com")), None);
        assert!(epoch.contains(TldId(0), &name("a.com")), "pruned from NRD, still delegated");
        assert_eq!(epoch.nrd_first_seen(TldId(0), &name("b.com")), Some(SimTime::from_secs(70)));
        assert_eq!(epoch.nrd_len(), 2);

        // Capacity cap: 5 adds in-window keep only the newest 4.
        apply(&["d.com", "e.com", "f.com", "g.com", "h.com"], 170, &index, &mut state);
        let epoch = index.load();
        assert_eq!(epoch.nrd_len(), 4);
        assert_eq!(epoch.nrd_first_seen(TldId(0), &name("b.com")), None, "oldest evicted by cap");
        assert_eq!(epoch.nrd_first_seen(TldId(0), &name("h.com")), Some(SimTime::from_secs(170)));
    }

    #[test]
    fn any_tld_queries_scan_every_shard() {
        let index = EdgeIndex::default();
        index.adopt_snapshot(TldId(0), snap("com", 3, &["a.com"]));
        index.adopt_snapshot(TldId(7), snap("net", 9, &["b.net"]));
        let epoch = index.load();
        let hit = epoch.answer_one(&LookupQuery { tld: LOOKUP_ANY_TLD, name: name("b.net") });
        assert!(hit.present);
        assert_eq!(hit.serial, None, "anywhere answers carry no single-shard serial");
        let scoped = epoch.answer_one(&LookupQuery { tld: 7, name: name("b.net") });
        assert!(scoped.present);
        assert_eq!(scoped.serial, Some(Serial::new(9)));
        let unknown = epoch.answer_one(&LookupQuery { tld: 3, name: name("b.net") });
        assert!(!unknown.present);
        assert_eq!(unknown.serial, None, "unserved TLD answers absent with no serial");
    }

    #[test]
    fn concurrent_lookups_race_a_full_cadence_writer() {
        // The epoch-swap concurrency pin: reader threads hammer the
        // read path (with its debug no-shard-lock assertions) while a
        // writer applies deltas at full cadence. Readers must always
        // observe an internally consistent epoch: the NRD window never
        // mentions a name the snapshot does not contain.
        let index = Arc::new(EdgeIndex::default());
        index.adopt_snapshot(TldId(0), snap("com", 0, &[]));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let index = Arc::clone(&index);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_epoch = 0;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let epoch = index.load();
                        assert!(epoch.epoch() >= last_epoch, "epochs are monotonic");
                        last_epoch = epoch.epoch();
                        for i in 0..200u32 {
                            let n = name(&format!("d{i}.com"));
                            if epoch.nrd_first_seen(TldId(0), &n).is_some() {
                                assert!(
                                    epoch.contains(TldId(0), &n),
                                    "NRD window ahead of the snapshot inside one epoch"
                                );
                            }
                        }
                    }
                })
            })
            .collect();
        let mut state = index.load().shards.get(&TldId(0)).unwrap().clone();
        for i in 0..200u32 {
            let push = push_for(&[&format!("d{i}.com")], i, i + 1, 10 + i as u64);
            state = push.delta.apply(&state, push.to_serial, push.pushed_at);
            index.apply_delta(TldId(0), state.clone(), &push);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for reader in readers {
            reader.join().unwrap();
        }
        let epoch = index.load();
        assert_eq!(epoch.epoch(), 201);
        assert_eq!(epoch.serial(TldId(0)), Some(Serial::new(200)));
    }
}
