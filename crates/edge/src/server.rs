//! The query-serving front of the edge: one reactor thread answering
//! `RZUL` batches for thousands of thin clients.
//!
//! [`EdgeServer`] reuses the broker transport's building blocks — the
//! length-prefixed [`FrameAssembler`], the vectored-write [`OutRing`],
//! and the vendored `mio_shim` epoll — in the same shape as the broker
//! reactor: non-blocking sockets, `EPOLLOUT` registered only while a
//! connection's ring holds unsent bytes, accept bursts drained to
//! `WouldBlock`, idle heartbeats and a write-stall bound swept on the
//! tick clock. One thread serves every listener and connection.
//!
//! The protocol is simpler than the broker's — there is **no
//! handshake**: a connection is usable from its first byte and every
//! inbound frame stands alone.
//!
//! | frame  | meaning                                                  |
//! |--------|----------------------------------------------------------|
//! | `RZUL` | batched lookup → `RZUR` reply, connection stays open     |
//! | `RZUQ` | stats scrape → report reply, then drain and close        |
//! | empty  | client keepalive, ignored (the server sends its own)     |
//!
//! Anything else — bad magic, a frame that fails validation — closes
//! the connection: a thin client speaking garbage is indistinguishable
//! from a corrupt stream.
//!
//! Every `RZUL` batch is answered from **one** loaded [`EdgeEpoch`]
//! (`index.load()` → `answer` → `encode_lookup_response`), so the
//! answers in a reply are mutually consistent and the reply's `epoch`
//! field names the generation they came from. Per the epoch-swap
//! invariant (see [`crate::index`]), the whole service path runs
//! without touching any broker shard publish lock — debug builds assert
//! it on every load and every answered query.
//!
//! # The `RZUQ` report, edge dialect
//!
//! The edge answers stats scrapes with the same [`StatsReport`] wire
//! payload the broker uses, so [`fetch_stats`] and the fleet monitor
//! work unchanged against either endpoint. The counters are mapped —
//! a monitor scraping an edge should render edge labels:
//!
//! * `server.handshakes` carries **lookup batches answered**,
//! * `server.deltas_sent` carries **names answered**,
//! * `server.rejected_hellos` carries **bad frames**,
//! * `server.accepted` / `disconnects` / `stats_queries` keep their
//!   transport meaning; the remaining server counters are zero.
//! * one shard row per TLD the current epoch serves: `head_serial` is
//!   the epoch's serial for that TLD, `subscribers` the live connection
//!   count, and `pushes` carries the index **epoch generation** (the
//!   same value in every row); the other shard counters are zero.
//!
//! In-process callers get the unmapped counters from
//! [`EdgeServer::stats`].

use crate::index::{EdgeEpoch, EdgeIndex};
use darkdns_broker::transport::{
    FlushStatus, FrameAssembler, FrameProgress, FrameKind, OutRing, RingFrame, StatsReport,
    MAX_FRAME_LEN,
};
use darkdns_dns::wire::{
    decode_lookup_request, encode_lookup_response, encode_stats_report, is_stats_query,
    WireServerStats, WireShardStats, LOOKUP_REQUEST_MAGIC,
};
use darkdns_broker::lockdep::{LockClass, TrackedMutex};
use mio_shim::{Epoll, Events, Interest, Token, WakeupFd};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The wakeup eventfd's reserved token (slot tokens are slab indices).
const WAKE_TOKEN: usize = usize::MAX;

/// Edge listener staging mailbox (leaf on the listen path: nothing else
/// is acquired while it is held). Level from `docs/INVARIANTS.md`.
static EDGE_PENDING: LockClass = LockClass::new("edge.pending", 64);
/// Edge transport thread registry (join handles only).
static EDGE_THREADS: LockClass = LockClass::new("edge.threads", 70);

/// Edge transport tuning.
#[derive(Debug, Clone, Copy)]
pub struct EdgeConfig {
    /// Per-frame payload bound enforced on receive.
    pub max_frame_len: usize,
    /// Idle tick: the reactor's epoll-wait bound, and how long a quiet
    /// connection stays silent before it gets a heartbeat frame.
    pub writer_tick: Duration,
    /// How long a connection's outbound ring may sit non-empty without
    /// the peer accepting a byte before it is declared dead.
    pub write_timeout: Duration,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            max_frame_len: MAX_FRAME_LEN,
            writer_tick: Duration::from_millis(50),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Monotonic edge-server counters (a point-in-time copy comes back from
/// [`EdgeServer::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeServerStats {
    /// Connections registered with the reactor.
    pub accepted: u64,
    /// Connections currently open (a gauge, not a counter).
    pub open_conns: u64,
    /// `RZUL` batches answered.
    pub lookup_batches: u64,
    /// Individual names answered across all batches.
    pub lookup_names: u64,
    /// `RZUQ` scrapes answered.
    pub stats_queries: u64,
    /// Frames that failed validation (connection closed).
    pub bad_frames: u64,
    /// Connections that died mid-stream (peer gone, write stall, bad
    /// frame).
    pub disconnects: u64,
}

#[derive(Default)]
struct StatsInner {
    accepted: AtomicU64,
    open_conns: AtomicU64,
    lookup_batches: AtomicU64,
    lookup_names: AtomicU64,
    stats_queries: AtomicU64,
    bad_frames: AtomicU64,
    disconnects: AtomicU64,
}

struct EdgeInner {
    index: Arc<EdgeIndex>,
    config: EdgeConfig,
    stats: StatsInner,
    // lock-level: 64
    pending: TrackedMutex<Vec<TcpListener>>,
    wakeup: WakeupFd,
    stop: AtomicBool,
    // lock-level: 70
    threads: TrackedMutex<Vec<JoinHandle<()>>>,
}

/// The edge query server: cheap to clone, all clones share the reactor.
#[derive(Clone)]
pub struct EdgeServer {
    inner: Arc<EdgeInner>,
}

impl EdgeServer {
    /// Build the server over `index` and start its reactor thread.
    pub fn new(index: Arc<EdgeIndex>, config: EdgeConfig) -> Self {
        let inner = Arc::new(EdgeInner {
            index,
            config,
            stats: StatsInner::default(),
            pending: TrackedMutex::new(&EDGE_PENDING, Vec::new()),
            // lint: allow(panic) startup-only: one eventfd per server,
            // created before the reactor thread or any traffic exists.
            wakeup: WakeupFd::new().expect("create edge reactor wakeup eventfd"),
            stop: AtomicBool::new(false),
            threads: TrackedMutex::new(&EDGE_THREADS, Vec::new()),
        });
        let loop_inner = Arc::clone(&inner);
        let handle = std::thread::spawn(move || Reactor::run(loop_inner));
        inner.threads.lock().push(handle);
        EdgeServer { inner }
    }

    /// Bind a TCP listener and register it with the reactor. Returns
    /// the bound address (bind to port 0 for an ephemeral one).
    pub fn listen_tcp(&self, addr: &str) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        self.inner.pending.lock().push(listener);
        self.inner.wakeup.wake();
        Ok(local)
    }

    /// The index this server answers from.
    pub fn index(&self) -> &Arc<EdgeIndex> {
        &self.inner.index
    }

    /// A point-in-time copy of the edge counters.
    pub fn stats(&self) -> EdgeServerStats {
        let s = &self.inner.stats;
        EdgeServerStats {
            accepted: s.accepted.load(Ordering::Relaxed),
            open_conns: s.open_conns.load(Ordering::Relaxed),
            lookup_batches: s.lookup_batches.load(Ordering::Relaxed),
            lookup_names: s.lookup_names.load(Ordering::Relaxed),
            stats_queries: s.stats_queries.load(Ordering::Relaxed),
            bad_frames: s.bad_frames.load(Ordering::Relaxed),
            disconnects: s.disconnects.load(Ordering::Relaxed),
        }
    }

    /// The `RZUQ` payload in the edge dialect (see the module docs for
    /// the counter mapping) — what a scrape connection receives, and
    /// what in-process monitors can read without a socket.
    pub fn stats_report(&self) -> StatsReport {
        build_stats_report(&self.inner, &self.inner.index.load())
    }

    /// How many OS threads the edge transport owns: `1` regardless of
    /// listener or connection count, `0` after shutdown.
    pub fn transport_threads(&self) -> usize {
        self.inner.threads.lock().len()
    }

    /// Stop the reactor and join it: every connection and listener
    /// closes when the reactor drops its slot table.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        self.inner.wakeup.wake();
        let drained: Vec<JoinHandle<()>> = {
            let mut threads = self.inner.threads.lock();
            threads.drain(..).collect()
        };
        for handle in drained {
            let _ = handle.join();
        }
    }
}

/// Project the edge counters and the current epoch onto the broker's
/// `RZUQ` report shape (counter mapping in the module docs).
fn build_stats_report(inner: &EdgeInner, epoch: &EdgeEpoch) -> StatsReport {
    let s = &inner.stats;
    let server = WireServerStats {
        accepted: s.accepted.load(Ordering::Relaxed),
        handshakes: s.lookup_batches.load(Ordering::Relaxed),
        rejected_hellos: s.bad_frames.load(Ordering::Relaxed),
        deltas_sent: s.lookup_names.load(Ordering::Relaxed),
        snapshots_sent: 0,
        evict_notices: 0,
        disconnects: s.disconnects.load(Ordering::Relaxed),
        coalesced_writes: 0,
        coalesced_frames: 0,
        stats_queries: s.stats_queries.load(Ordering::Relaxed),
    };
    let open = s.open_conns.load(Ordering::Relaxed);
    let shards = epoch
        .tlds()
        .into_iter()
        .map(|tld| WireShardStats {
            tld: tld.0,
            head_serial: epoch.serial(tld).unwrap_or_default(),
            subscribers: open,
            pushes: epoch.epoch(),
            frame_bytes: 0,
            checkpoints: 0,
            retained_deltas: 0,
            retired_deltas: 0,
            deliveries: 0,
            lagged_messages: 0,
            evictions: 0,
            snapshot_catchups: 0,
            delta_catchups: 0,
            lock_contentions: 0,
            coalesced_frames: 0,
        })
        .collect();
    StatsReport { server, shards, subs: Vec::new() }
}

enum Slot {
    Free,
    Listener(TcpListener),
    Conn(Box<Conn>),
}

struct Conn {
    io: TcpStream,
    assembler: FrameAssembler,
    ring: OutRing,
    /// Flush the ring, then close (a stats reply on its way out).
    draining: bool,
    /// Heartbeat clock: last byte received or frame composed.
    last_io: Instant,
    /// Write-stall clock: last time the stream accepted ring bytes.
    last_progress: Instant,
    /// Whether `EPOLLOUT` is currently registered.
    want_write: bool,
}

impl Conn {
    fn push_frame(&mut self, frame: RingFrame, now: Instant) {
        if self.ring.is_empty() {
            self.last_progress = now;
        }
        self.last_io = now;
        self.ring.push(frame);
    }
}

/// Why a connection is being closed.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CloseWhy {
    /// Peer gone mid-stream, write stall, or a frame that failed
    /// validation.
    Disconnect,
    /// Orderly close (clean EOF between frames, drained stats reply).
    Quiet,
}

struct Reactor {
    inner: Arc<EdgeInner>,
    epoll: Epoll,
    slots: Vec<Slot>,
    free: Vec<usize>,
}

impl Reactor {
    fn run(inner: Arc<EdgeInner>) {
        let Ok(epoll) = Epoll::new() else { return };
        if epoll.register(inner.wakeup.raw_fd(), Token(WAKE_TOKEN), Interest::READABLE).is_err() {
            return;
        }
        Reactor { inner, epoll, slots: Vec::new(), free: Vec::new() }.event_loop();
    }

    fn event_loop(&mut self) {
        let mut events = Events::with_capacity(1024);
        let tick = self.inner.config.writer_tick;
        let sweep_every = tick / 4;
        let mut last_sweep = Instant::now();
        loop {
            if self.inner.stop.load(Ordering::Relaxed) {
                return; // dropping self closes every conn and listener
            }
            let _ = self.epoll.wait(&mut events, Some(tick));
            if self.inner.stop.load(Ordering::Relaxed) {
                return;
            }
            let mut fd_work: Vec<(usize, bool, bool)> = Vec::new();
            for event in events.iter() {
                if event.token().0 == WAKE_TOKEN {
                    self.inner.wakeup.drain();
                } else {
                    fd_work.push((event.token().0, event.is_readable(), event.is_writable()));
                }
            }
            for (idx, readable, writable) in fd_work {
                match self.slots.get(idx) {
                    Some(Slot::Listener(_)) => self.accept_burst(idx),
                    Some(Slot::Conn(_)) => self.service(idx, readable, writable),
                    _ => {}
                }
            }
            let staged: Vec<TcpListener> = std::mem::take(&mut *self.inner.pending.lock());
            for listener in staged {
                self.add_listener(listener);
            }
            if last_sweep.elapsed() >= sweep_every {
                self.sweep();
                last_sweep = Instant::now();
            }
        }
    }

    fn alloc_slot(&mut self) -> usize {
        if let Some(idx) = self.free.pop() {
            idx
        } else {
            self.slots.push(Slot::Free);
            self.slots.len().saturating_sub(1)
        }
    }

    /// Bounds-checked slot store (an out-of-range index is a slab bug;
    /// dropping the value beats indexing past the slab on a hot path).
    fn set_slot(&mut self, idx: usize, slot: Slot) {
        if let Some(entry) = self.slots.get_mut(idx) {
            *entry = slot;
        }
    }

    /// Bounds-checked slot take: replaces the slot with `Free`.
    fn take_slot(&mut self, idx: usize) -> Slot {
        match self.slots.get_mut(idx) {
            Some(entry) => std::mem::replace(entry, Slot::Free),
            None => Slot::Free,
        }
    }

    fn add_listener(&mut self, listener: TcpListener) {
        let idx = self.alloc_slot();
        if self.epoll.register(listener.as_raw_fd(), Token(idx), Interest::READABLE).is_err() {
            self.free.push(idx);
            return;
        }
        self.set_slot(idx, Slot::Listener(listener));
    }

    fn accept_burst(&mut self, listener_idx: usize) {
        loop {
            let accepted = match self.slots.get(listener_idx) {
                Some(Slot::Listener(listener)) => listener.accept(),
                _ => return,
            };
            match accepted {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    self.inner.stats.open_conns.fetch_add(1, Ordering::Relaxed);
                    let idx = self.alloc_slot();
                    if self
                        .epoll
                        .register(stream.as_raw_fd(), Token(idx), Interest::READABLE)
                        .is_err()
                    {
                        self.free.push(idx);
                        self.inner.stats.open_conns.fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                    let now = Instant::now();
                    self.set_slot(idx, Slot::Conn(Box::new(Conn {
                        io: stream,
                        assembler: FrameAssembler::new(self.inner.config.max_frame_len),
                        ring: OutRing::new(),
                        draining: false,
                        last_io: now,
                        last_progress: now,
                        want_write: false,
                    })));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Drive one connection: inbound frames, ring flush, drain-close.
    fn service(&mut self, idx: usize, readable: bool, writable: bool) {
        let mut conn = match self.take_slot(idx) {
            Slot::Conn(conn) => conn,
            other => {
                self.set_slot(idx, other);
                return;
            }
        };
        let _ = writable; // flushing is unconditional below
        let mut close = if readable { self.read_inbound(&mut conn) } else { None };
        if close.is_none() {
            close = self.flush(&mut conn, idx);
        }
        match close {
            Some(why) => self.finalize_close(idx, conn, why),
            None => self.set_slot(idx, Slot::Conn(conn)),
        }
    }

    fn read_inbound(&mut self, conn: &mut Conn) -> Option<CloseWhy> {
        loop {
            match conn.assembler.read_from(&mut conn.io) {
                Ok(FrameProgress::Frame(frame)) => {
                    conn.last_io = Instant::now();
                    if let Some(why) = self.handle_frame(conn, &frame) {
                        return Some(why);
                    }
                }
                Ok(FrameProgress::Pending) => return None,
                // Clean EOF between frames: the thin client hung up.
                Ok(FrameProgress::Closed) => return Some(CloseWhy::Quiet),
                Err(_) => return Some(CloseWhy::Disconnect),
            }
        }
    }

    /// One inbound frame, no handshake context: lookups stay open,
    /// scrapes drain, garbage closes.
    fn handle_frame(&mut self, conn: &mut Conn, frame: &[u8]) -> Option<CloseWhy> {
        if conn.draining {
            // The peer has its reply coming and this connection is done;
            // late frames are ignored while the ring drains.
            return None;
        }
        if frame.is_empty() {
            return None; // client keepalive
        }
        let now = Instant::now();
        if is_stats_query(frame) {
            // Count first so the reply's counters include this query.
            self.inner.stats.stats_queries.fetch_add(1, Ordering::Relaxed);
            let epoch = self.inner.index.load();
            let report = encode_stats_report(&build_stats_report(&self.inner, &epoch));
            conn.draining = true;
            conn.push_frame(RingFrame::plain(report, FrameKind::Stats, false), now);
            return None;
        }
        if frame.starts_with(LOOKUP_REQUEST_MAGIC) {
            let Ok((request_id, queries)) = decode_lookup_request(frame) else {
                self.inner.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                return Some(CloseWhy::Disconnect);
            };
            // One loaded epoch answers the whole batch — the reply is
            // internally consistent and never sees a broker lock.
            let epoch = self.inner.index.load();
            let answers = epoch.answer(&queries);
            let payload = encode_lookup_response(request_id, epoch.epoch(), &answers);
            self.inner.stats.lookup_batches.fetch_add(1, Ordering::Relaxed);
            self.inner.stats.lookup_names.fetch_add(queries.len() as u64, Ordering::Relaxed);
            conn.push_frame(RingFrame::plain(payload, FrameKind::Stats, false), now);
            return None;
        }
        self.inner.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
        Some(CloseWhy::Disconnect)
    }

    fn flush(&mut self, conn: &mut Conn, idx: usize) -> Option<CloseWhy> {
        if conn.ring.is_empty() {
            self.set_want_write(conn, idx, false);
            return conn.draining.then_some(CloseWhy::Quiet);
        }
        let before = conn.ring.unsent_bytes();
        let mut completed = Vec::new();
        let status = conn.ring.flush_into(&mut conn.io, &mut completed);
        if conn.ring.unsent_bytes() < before {
            conn.last_progress = Instant::now();
        }
        match status {
            Err(_) => Some(if conn.draining { CloseWhy::Quiet } else { CloseWhy::Disconnect }),
            Ok(FlushStatus::Drained) => {
                self.set_want_write(conn, idx, false);
                conn.draining.then_some(CloseWhy::Quiet)
            }
            Ok(FlushStatus::Blocked) => {
                self.set_want_write(conn, idx, true);
                None
            }
        }
    }

    fn set_want_write(&self, conn: &mut Conn, idx: usize, want: bool) {
        if conn.want_write == want {
            return;
        }
        conn.want_write = want;
        let interest = if want {
            Interest::READABLE.add(Interest::WRITABLE)
        } else {
            Interest::READABLE
        };
        let _ = self.epoll.modify(conn.io.as_raw_fd(), Token(idx), interest);
    }

    /// Time-based duties: idle heartbeats on the tick, the write-stall
    /// bound for wedged peers.
    fn sweep(&mut self) {
        let now = Instant::now();
        let tick = self.inner.config.writer_tick;
        let stall = self.inner.config.write_timeout;
        let mut closes: Vec<usize> = Vec::new();
        let mut flushes: Vec<usize> = Vec::new();
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            let Slot::Conn(conn) = slot else { continue };
            if !conn.ring.is_empty() {
                if now.duration_since(conn.last_progress) >= stall {
                    closes.push(idx);
                }
            } else if !conn.draining && now.duration_since(conn.last_io) >= tick {
                conn.push_frame(RingFrame::heartbeat(), now);
                flushes.push(idx);
            }
        }
        for idx in closes {
            if let Slot::Conn(conn) = self.take_slot(idx) {
                self.finalize_close(idx, conn, CloseWhy::Disconnect);
            }
        }
        for idx in flushes {
            self.service(idx, false, true);
        }
    }

    fn finalize_close(&mut self, idx: usize, conn: Box<Conn>, why: CloseWhy) {
        if why == CloseWhy::Disconnect {
            self.inner.stats.disconnects.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.stats.open_conns.fetch_sub(1, Ordering::Relaxed);
        let _ = self.epoll.deregister(conn.io.as_raw_fd());
        drop(conn);
        self.set_slot(idx, Slot::Free);
        self.free.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::EdgeClient;
    use crate::feed::EdgeFeed;
    use crate::index::EdgeIndexConfig;
    use darkdns_broker::transport::{fetch_stats, tcp_connect, FrameConn};
    use darkdns_broker::{Broker, BrokerConfig};
    use darkdns_dns::wire::{LookupQuery, LOOKUP_ANY_TLD};
    use darkdns_dns::{DomainName, Serial, ZoneDelta, ZoneSnapshot};
    use darkdns_dns::zone::NsSet;
    use darkdns_registry::tld::TldId;
    use darkdns_sim::time::SimTime;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn snap(origin: &str, serial: u32, names: &[&str]) -> ZoneSnapshot {
        let entries =
            names.iter().map(|n| (name(n), vec![name("ns1.provider0.net")])).collect();
        ZoneSnapshot::from_entries(name(origin), Serial::new(serial), SimTime::ZERO, entries)
    }

    fn quick_server(index: Arc<EdgeIndex>) -> (EdgeServer, SocketAddr) {
        let server = EdgeServer::new(
            index,
            EdgeConfig { writer_tick: Duration::from_millis(10), ..EdgeConfig::default() },
        );
        let addr = server.listen_tcp("127.0.0.1:0").unwrap();
        (server, addr)
    }

    #[test]
    fn lookup_round_trip_over_tcp() {
        let index = Arc::new(EdgeIndex::default());
        index.adopt_snapshot(TldId(0), snap("com", 7, &["a.com", "b.com"]));
        index.adopt_snapshot(TldId(1), snap("net", 3, &["c.net"]));
        let (server, addr) = quick_server(Arc::clone(&index));

        let mut client = EdgeClient::connect_tcp(addr).unwrap();
        let queries = [
            LookupQuery { tld: 0, name: name("a.com") },
            LookupQuery { tld: 0, name: name("missing.com") },
            LookupQuery { tld: LOOKUP_ANY_TLD, name: name("c.net") },
            LookupQuery { tld: 9, name: name("c.net") },
        ];
        let response = client.lookup(&queries).unwrap();
        assert_eq!(response.epoch, index.epoch());
        assert_eq!(response.answers.len(), 4);
        assert!(response.answers[0].present);
        assert_eq!(response.answers[0].serial, Some(Serial::new(7)));
        assert!(!response.answers[1].present);
        assert!(response.answers[2].present, "ANY-TLD scan finds c.net");
        assert!(!response.answers[3].present, "unserved TLD answers absent");

        // The connection is persistent: a second batch on the same
        // socket, answered after a writer swap, reports the new epoch.
        index.adopt_snapshot(TldId(0), snap("com", 8, &["a.com", "b.com", "d.com"]));
        let response = client.lookup(&[LookupQuery { tld: 0, name: name("d.com") }]).unwrap();
        assert!(response.answers[0].present);
        assert_eq!(response.answers[0].serial, Some(Serial::new(8)));

        let stats = server.stats();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.lookup_batches, 2);
        assert_eq!(stats.lookup_names, 5);
        assert_eq!(stats.disconnects, 0);
        server.shutdown();
        assert_eq!(server.transport_threads(), 0);
    }

    #[test]
    fn stats_scrape_speaks_the_broker_dialect() {
        let index = Arc::new(EdgeIndex::default());
        index.adopt_snapshot(TldId(2), snap("org", 5, &["x.org"]));
        let (server, addr) = quick_server(Arc::clone(&index));

        let mut client = EdgeClient::connect_tcp(addr).unwrap();
        client.lookup(&[LookupQuery { tld: 2, name: name("x.org") }]).unwrap();

        let report = fetch_stats(tcp_connect(addr).unwrap()).unwrap();
        assert_eq!(report.server.handshakes, 1, "lookup batches ride the handshakes counter");
        assert_eq!(report.server.deltas_sent, 1, "names answered ride deltas_sent");
        assert_eq!(report.server.stats_queries, 1);
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.shards[0].tld, 2);
        assert_eq!(report.shards[0].head_serial, Serial::new(5));
        assert_eq!(report.shards[0].pushes, index.epoch(), "epoch rides the pushes counter");
        assert!(report.subs.is_empty());
        // In-process report matches the scraped one modulo the scrape
        // accounting itself.
        assert_eq!(server.stats_report().server.stats_queries, 1);
        server.shutdown();
    }

    #[test]
    fn bad_frame_closes_the_connection() {
        let index = Arc::new(EdgeIndex::default());
        let (server, addr) = quick_server(Arc::clone(&index));
        let mut conn = tcp_connect(addr).unwrap();
        conn.send_frame(&[b"JUNK-frame"]).unwrap();
        // The server closes; the next receive errors out (EOF).
        assert!(conn.recv_frame().is_err());
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().bad_frames == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = server.stats();
        assert_eq!(stats.bad_frames, 1);
        assert_eq!(stats.disconnects, 1);
        server.shutdown();
    }

    #[test]
    fn live_feed_serves_fresh_answers_under_full_cadence() {
        // The tentpole wiring, end to end: broker -> feed -> index ->
        // server -> thin client, with the publisher pushing deltas the
        // whole time.
        let broker = Broker::new(BrokerConfig::default());
        broker.add_shard(TldId(0), snap("com", 0, &[]));
        let index = Arc::new(EdgeIndex::new(EdgeIndexConfig::default()));
        let mut feed = EdgeFeed::subscribe(&broker, &[TldId(0)], Arc::clone(&index));
        let (server, addr) = quick_server(Arc::clone(&index));
        let mut client = EdgeClient::connect_tcp(addr).unwrap();

        for i in 0..50u32 {
            let mut delta = ZoneDelta::default();
            delta.added.push((
                name(&format!("d{i}.com")),
                NsSet::new(vec![name("ns1.provider0.net")]),
            ));
            broker.publish(TldId(0), delta, Serial::new(i + 1), SimTime::from_secs(100 + i as u64));
            feed.pump();
        }
        assert!(feed.pump_until_serials(&[(TldId(0), Serial::new(50))], Duration::from_secs(5)));

        let response = client
            .lookup(&[LookupQuery { tld: 0, name: name("d49.com") }])
            .unwrap();
        assert!(response.answers[0].present);
        assert_eq!(response.answers[0].serial, Some(Serial::new(50)));
        assert_eq!(
            response.answers[0].first_seen,
            Some(SimTime::from_secs(149)),
            "NRD recency crosses the wire"
        );
        server.shutdown();
    }
}
