//! `darkdns-edge`: the read-optimized membership lookup tier.
//!
//! A full replica ([`darkdns_core::broker_view::BrokerZoneView`] /
//! `RemoteZoneView`) holds every delegation of every subscribed TLD —
//! the right trade for detection pipelines that touch the whole zone.
//! Most consumers of rapid zone updates ask a much smaller question:
//! *is this name delegated right now, and did it appear recently?* The
//! edge tier serves exactly that question to thousands of concurrent
//! thin clients, from state that is provably as fresh as a full replica
//! at the same serial:
//!
//! * [`EdgeFeed`] / [`RemoteEdgeFeed`] subscribe to a broker like any
//!   consumer and mirror every applied message into the index;
//! * [`EdgeIndex`] holds the per-TLD snapshots plus a hot NRD-recency
//!   window as immutable [`EdgeEpoch`] generations behind an Arc-swap
//!   cell;
//! * [`EdgeServer`] answers batched `RZUL` lookups and `RZUQ` stats
//!   scrapes on one reactor thread; [`EdgeClient`] is the blocking
//!   thin-client side.
//!
//! # The epoch-swap invariant, and where it sits in the lock hierarchy
//!
//! The broker crate orders its locks in two levels — shard publish
//! locks (level 1) above subscriber queue locks (level 2), leaves below
//! — and the transport reactor sits underneath, touching level 1 only
//! during a handshake's `subscribe_with`. The edge extends that map
//! with a rule rather than a level: **the query path takes no lock in
//! the broker's hierarchy at all.** A lookup clones the current
//! [`EdgeEpoch`]'s `Arc` (a lockdep-tracked `RwLock` read held for the
//! clone — an edge-local leaf, never held across any call into the
//! broker; class `edge.cell` in `docs/INVARIANTS.md`) and then runs
//! entirely over immutable data. Writers build
//! the next generation off to the side and swap the pointer. So a
//! publisher holding a shard lock at full RZU cadence and an edge
//! answering 10k queries/s never contend: the only synchronization
//! between them is the broker queue the feed drains, which is the
//! level-2 boundary every subscriber already crosses.
//!
//! Debug builds enforce the rule mechanically: every index load and
//! every epoch query asserts
//! [`darkdns_broker::shard_locks_held_by_current_thread`]` == 0`.

pub mod client;
pub mod feed;
pub mod index;
pub mod server;

pub use client::{EdgeClient, MAX_LOOKUP_BATCH};
pub use feed::{EdgeFeed, RemoteEdgeFeed, RoutedEdgeFeed};
pub use index::{EdgeEpoch, EdgeIndex, EdgeIndexConfig};
pub use server::{EdgeConfig, EdgeServer, EdgeServerStats};
