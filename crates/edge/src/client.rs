//! The thin-client side: a blocking `RZUL`/`RZUR` round trip over any
//! [`FrameConn`].
//!
//! This is the whole point of the edge tier: a consumer that wants
//! membership answers but not a zone replica holds one TCP connection
//! and a few hundred bytes of state — no snapshots, no delta chain, no
//! resync logic. Batching is the client's lever: one `RZUL` frame
//! carries up to [`MAX_LOOKUP_BATCH`] names and one `RZUR` answers them
//! all from a single index epoch.

use darkdns_broker::transport::{tcp_connect, FrameConn, TransportError};
use darkdns_dns::wire::{
    decode_lookup_response, encode_lookup_request, LookupQuery, LookupResponse,
    LOOKUP_RESPONSE_MAGIC,
};
use darkdns_dns::wire::WireError;

/// Cap on names per `RZUL` batch — far below the `u16` wire bound, so a
/// batch always fits the frame limit even with incompressible names.
pub const MAX_LOOKUP_BATCH: usize = 4096;

/// A connected edge thin client.
pub struct EdgeClient {
    conn: Box<dyn FrameConn>,
    next_id: u64,
}

impl EdgeClient {
    /// Wrap an established frame connection (TCP or an in-memory pipe).
    pub fn new(conn: impl FrameConn + 'static) -> Self {
        EdgeClient { conn: Box::new(conn), next_id: 1 }
    }

    /// Dial an edge server over TCP.
    pub fn connect_tcp(addr: std::net::SocketAddr) -> std::io::Result<Self> {
        Ok(Self::new(tcp_connect(addr)?))
    }

    /// Bound how long a lookup waits for its reply.
    pub fn set_recv_timeout(
        &mut self,
        timeout: Option<std::time::Duration>,
    ) -> Result<(), TransportError> {
        self.conn.set_recv_timeout(timeout)
    }

    /// Answer a batch of membership queries: one request frame, one
    /// reply frame, answers in request order. Server heartbeats (empty
    /// frames) and replies to requests this client has already given up
    /// on (stale ids) are skipped; a reply with the wrong answer count
    /// or an id from the future closes the book on the connection.
    pub fn lookup(&mut self, queries: &[LookupQuery]) -> Result<LookupResponse, TransportError> {
        assert!(queries.len() <= MAX_LOOKUP_BATCH, "batch exceeds MAX_LOOKUP_BATCH");
        let request_id = self.next_id;
        self.next_id += 1;
        self.conn.send_frame(&[&encode_lookup_request(request_id, queries)])?;
        loop {
            let frame = self.conn.recv_frame()?;
            if frame.is_empty() {
                continue; // server heartbeat
            }
            if frame.len() < 4 || &frame[..4] != LOOKUP_RESPONSE_MAGIC {
                return Err(WireError::BadMagic.into());
            }
            let response = decode_lookup_response(&frame)?;
            if response.request_id < request_id {
                continue; // a reply this client timed out on earlier
            }
            if response.request_id > request_id || response.answers.len() != queries.len() {
                // The stream is out of step with the request sequence;
                // nothing on it can be trusted any more.
                return Err(TransportError::Closed);
            }
            return Ok(response);
        }
    }
}
