//! The thin-client side: a blocking `RZUL`/`RZUR` round trip over any
//! [`FrameConn`].
//!
//! This is the whole point of the edge tier: a consumer that wants
//! membership answers but not a zone replica holds one TCP connection
//! and a few hundred bytes of state — no snapshots, no delta chain, no
//! resync logic. Batching is the client's lever: one `RZUL` frame
//! carries up to [`MAX_LOOKUP_BATCH`] names and one `RZUR` answers them
//! all from a single index epoch.
//!
//! In a tiered deployment the same answers are served by several edge
//! nodes (replicas of one index, or siblings fed by different relays of
//! the same root), so the client can hold a **replica list** instead of
//! one endpoint ([`EdgeClient::connect_replicas`]): a connect or stream
//! error rotates to the next replica with doubling bounded backoff, and
//! the lookup is retried there — at most one full cycle through the
//! list per call. [`EdgeClient::failover_count`] counts the switches.

use darkdns_broker::transport::{tcp_connect, FrameConn, TransportError};
use darkdns_dns::wire::WireError;
use darkdns_dns::wire::{
    decode_lookup_response, encode_lookup_request, LookupQuery, LookupResponse,
    LOOKUP_RESPONSE_MAGIC,
};
use std::time::Duration;

/// Cap on names per `RZUL` batch — far below the `u16` wire bound, so a
/// batch always fits the frame limit even with incompressible names.
pub const MAX_LOOKUP_BATCH: usize = 4096;

/// Redial backoff bounds: doubling from the floor to the ceiling within
/// one failover cycle.
const BACKOFF_FLOOR: Duration = Duration::from_millis(2);
const BACKOFF_CEIL: Duration = Duration::from_millis(100);

/// How the client obtains a connection to replica `i`.
type ReplicaDial = Box<dyn FnMut(usize) -> Result<Box<dyn FrameConn>, TransportError> + Send>;

/// A connected edge thin client.
pub struct EdgeClient {
    conn: Option<Box<dyn FrameConn>>,
    next_id: u64,
    /// Replica redial machinery; `None` for single-connection clients
    /// ([`EdgeClient::new`]), which surface errors instead of failing
    /// over.
    dial: Option<ReplicaDial>,
    replica_count: usize,
    /// The replica the current (or next) connection points at.
    cursor: usize,
    failovers: u64,
    recv_timeout: Option<Duration>,
    /// Generation of the last applied replica-set update
    /// ([`EdgeClient::apply_endpoint_update`]); stale updates are
    /// no-ops.
    map_generation: u64,
}

impl EdgeClient {
    /// Wrap an established frame connection (TCP or an in-memory pipe).
    /// No failover: any connection error is the caller's to handle.
    pub fn new(conn: impl FrameConn + 'static) -> Self {
        EdgeClient {
            conn: Some(Box::new(conn)),
            next_id: 1,
            dial: None,
            replica_count: 1,
            cursor: 0,
            failovers: 0,
            recv_timeout: None,
            map_generation: 0,
        }
    }

    /// Dial an edge server over TCP.
    pub fn connect_tcp(addr: std::net::SocketAddr) -> std::io::Result<Self> {
        Ok(Self::new(tcp_connect(addr)?))
    }

    /// Build a failover client over `replica_count` interchangeable
    /// endpoints: `dial(i)` establishes a connection to replica `i`.
    /// Replica 0 is preferred; each connect or stream error advances to
    /// the next (wrapping) with doubling bounded backoff. Errors only
    /// when no replica is reachable at construction time.
    pub fn connect_replicas(
        replica_count: usize,
        dial: impl FnMut(usize) -> Result<Box<dyn FrameConn>, TransportError> + Send + 'static,
    ) -> Result<Self, TransportError> {
        assert!(replica_count >= 1, "need at least one replica");
        let mut client = EdgeClient {
            conn: None,
            next_id: 1,
            dial: Some(Box::new(dial)),
            replica_count,
            cursor: 0,
            failovers: 0,
            recv_timeout: None,
            map_generation: 0,
        };
        client.redial()?;
        Ok(client)
    }

    /// [`EdgeClient::connect_replicas`] over TCP endpoints.
    pub fn connect_tcp_replicas(
        addrs: Vec<std::net::SocketAddr>,
    ) -> Result<Self, TransportError> {
        Self::connect_replicas(addrs.len(), move |i| {
            Ok(Box::new(tcp_connect(addrs[i]).map_err(TransportError::Io)?))
        })
    }

    /// Bound how long a lookup waits for its reply. Survives failover:
    /// a redialled connection inherits the bound.
    pub fn set_recv_timeout(
        &mut self,
        timeout: Option<std::time::Duration>,
    ) -> Result<(), TransportError> {
        self.recv_timeout = timeout;
        match self.conn.as_mut() {
            Some(conn) => conn.set_recv_timeout(timeout),
            None => Ok(()),
        }
    }

    /// Replica switches so far: every time a connect or stream error
    /// moved this client to the next endpoint in its list.
    pub fn failover_count(&self) -> u64 {
        self.failovers
    }

    /// Live replica-set update for a failover client, without
    /// restarting it: `generation` gates the update (only strictly
    /// newer generations apply — duplicated or reordered control-plane
    /// updates are no-ops, returning `false`) and `replica_count`
    /// becomes the index range the dial closure is asked for. The
    /// current connection is kept when its replica index is still in
    /// range; a connection to a drained (now out-of-range) replica is
    /// dropped, and the next lookup redials inside the new set — the
    /// thin client holds no stream state, so its drain *is* a redial.
    /// Single-connection clients ([`EdgeClient::new`]) have no dial
    /// closure and ignore updates.
    pub fn apply_endpoint_update(&mut self, generation: u64, replica_count: usize) -> bool {
        assert!(replica_count >= 1, "need at least one replica");
        if self.dial.is_none() || generation <= self.map_generation {
            return false;
        }
        self.map_generation = generation;
        self.replica_count = replica_count;
        if self.cursor >= replica_count {
            self.cursor = 0;
            self.conn = None;
        }
        true
    }

    /// Dial the replica under the cursor, rotating (and counting a
    /// failover) past unreachable ones — at most one full cycle.
    fn redial(&mut self) -> Result<(), TransportError> {
        let Some(dial) = self.dial.as_mut() else {
            return Err(TransportError::Closed);
        };
        let mut backoff = BACKOFF_FLOOR;
        let mut last_err = TransportError::Closed;
        for attempt in 0..self.replica_count {
            let at = (self.cursor + attempt) % self.replica_count;
            if attempt > 0 {
                self.failovers += 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_CEIL);
            }
            match dial(at) {
                Ok(mut conn) => {
                    conn.set_recv_timeout(self.recv_timeout)?;
                    self.cursor = at;
                    self.conn = Some(conn);
                    return Ok(());
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Answer a batch of membership queries: one request frame, one
    /// reply frame, answers in request order. Server heartbeats (empty
    /// frames) and replies to requests this client has already given up
    /// on (stale ids) are skipped; a reply with the wrong answer count
    /// or an id from the future closes the book on the connection.
    ///
    /// A replica-list client ([`EdgeClient::connect_replicas`]) heals
    /// connection errors by failing over to the next endpoint and
    /// retrying there — at most one full cycle through the list, with
    /// bounded backoff between switches. Timeouts are returned to the
    /// caller unchanged (the reply may still be in flight; switching
    /// replicas would not make a slow index faster).
    pub fn lookup(&mut self, queries: &[LookupQuery]) -> Result<LookupResponse, TransportError> {
        assert!(queries.len() <= MAX_LOOKUP_BATCH, "batch exceeds MAX_LOOKUP_BATCH");
        let mut switches = 0;
        loop {
            if self.conn.is_none() {
                self.redial()?;
            }
            match self.lookup_once(queries) {
                Ok(response) => return Ok(response),
                Err(TransportError::TimedOut) => return Err(TransportError::TimedOut),
                Err(e) => {
                    self.conn = None;
                    switches += 1;
                    if self.dial.is_none() || switches >= self.replica_count {
                        return Err(e);
                    }
                    self.cursor = (self.cursor + 1) % self.replica_count;
                    self.failovers += 1;
                }
            }
        }
    }

    /// One request/reply round trip on the current connection.
    fn lookup_once(&mut self, queries: &[LookupQuery]) -> Result<LookupResponse, TransportError> {
        let conn = self.conn.as_mut().ok_or(TransportError::Closed)?;
        let request_id = self.next_id;
        self.next_id += 1;
        conn.send_frame(&[&encode_lookup_request(request_id, queries)])?;
        loop {
            let frame = conn.recv_frame()?;
            if frame.is_empty() {
                continue; // server heartbeat
            }
            if frame.len() < 4 || &frame[..4] != LOOKUP_RESPONSE_MAGIC {
                return Err(WireError::BadMagic.into());
            }
            let response = decode_lookup_response(&frame)?;
            if response.request_id < request_id {
                continue; // a reply this client timed out on earlier
            }
            if response.request_id > request_id || response.answers.len() != queries.len() {
                // The stream is out of step with the request sequence;
                // nothing on it can be trusted any more.
                return Err(TransportError::Closed);
            }
            return Ok(response);
        }
    }
}
