//! The writer side of the edge: a broker subscription feeding the
//! epoch-swap index.
//!
//! The edge subscribes to the broker **like any other consumer** — it
//! owns a detached [`BrokerZoneView`] for the chain discipline (serial
//! gap detection, no-double-apply, claims, resync accounting) and
//! mirrors every applied message into the [`EdgeIndex`]:
//!
//! * a snapshot message is adopted by the view and the index ([`EdgeIndex::adopt_snapshot`]);
//! * a delta that chains advances the view, then the index installs the
//!   view's **own post-apply snapshot** ([`EdgeIndex::apply_delta`]).
//!   The two therefore share one `Arc`'d column set per TLD — the edge
//!   answers from *byte-identical* state to a full replica at the same
//!   serial, by construction rather than by test alone — and the
//!   push's `added` section lands in the hot NRD window stamped with
//!   the publisher-side `pushed_at`.
//!
//! Two deployment shapes, same split as the consumer stack:
//! [`EdgeFeed`] drains an in-process [`BrokerSubscription`];
//! [`RemoteEdgeFeed`] drives a [`TransportClient`] with
//! reconnect-with-claims, for an edge deployed across a socket from
//! its broker.

use crate::index::EdgeIndex;
use darkdns_broker::transport::{ClientEvent, FrameConn, TransportClient, TransportError};
use darkdns_broker::{Broker, BrokerMessage, BrokerSubscription};
use darkdns_core::broker_view::{
    BrokerZoneView, EndpointMap, RouteSink, RouteStatus, RoutedZoneView,
};
use darkdns_dns::wire::DeltaPush;
use darkdns_dns::{decode_delta_push, DomainName, Serial, ZoneSnapshot};
use darkdns_registry::tld::TldId;
use std::sync::Arc;

/// In-process edge feed: one broker subscription, one index.
pub struct EdgeFeed {
    view: BrokerZoneView,
    sub: BrokerSubscription,
    index: Arc<EdgeIndex>,
}

impl EdgeFeed {
    /// Subscribe with no prior state: every shard bootstraps from a
    /// checkpoint snapshot, which the index adopts on the first
    /// [`EdgeFeed::pump`].
    pub fn subscribe(broker: &Broker, tlds: &[TldId], index: Arc<EdgeIndex>) -> Self {
        EdgeFeed { view: BrokerZoneView::detached(tlds), sub: broker.subscribe(tlds, None), index }
    }

    /// Drain everything queued into the view and the index. Returns the
    /// number of messages applied; stops early on a serial gap or
    /// eviction (the view latches lost-sync until [`EdgeFeed::resync`]).
    pub fn pump(&mut self) -> usize {
        if self.sub.is_evicted() {
            self.view.ingest_eviction();
        }
        if self.view.lost_sync() {
            return 0;
        }
        let mut applied = 0;
        while let Some(msg) = self.sub.try_next() {
            match msg {
                BrokerMessage::Snapshot { tld, snapshot } => {
                    self.view.ingest_snapshot(tld, snapshot.clone());
                    self.index.adopt_snapshot(tld, snapshot);
                }
                BrokerMessage::Delta { tld, frame } => {
                    let push = decode_delta_push(&frame).expect("broker frames are well-formed");
                    if !self.view.ingest_delta(tld, &push) {
                        return applied;
                    }
                    let state =
                        self.view.snapshot(tld).expect("delta chained onto a state").clone();
                    self.index.apply_delta(tld, state, &push);
                }
            }
            applied += 1;
        }
        // Surface an eviction racing the drain now, not next pump.
        if self.sub.is_evicted() {
            self.view.ingest_eviction();
        }
        applied
    }

    /// Rejoin the broker carrying the view's per-TLD serial claims; the
    /// catch-up heals the gap via delta replay or checkpoint.
    pub fn resync(&mut self, broker: &Broker) {
        self.sub = broker.subscribe_with(&self.view.claims());
        self.view.note_resynced();
    }

    /// Pump until the index's serial matches `targets` for every listed
    /// TLD or `timeout` elapses — the bench/test barrier for "the edge
    /// has seen everything published so far".
    pub fn pump_until_serials(
        &mut self,
        targets: &[(TldId, Serial)],
        timeout: std::time::Duration,
    ) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if targets.iter().all(|&(tld, serial)| self.view.serial(tld) == Some(serial)) {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            if self.pump() == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// The chain-state view (sync health, claims, resync count).
    pub fn view(&self) -> &BrokerZoneView {
        &self.view
    }

    /// Drain the accumulated zone-NRD log (see
    /// [`BrokerZoneView::drain_new_domains`]).
    pub fn drain_new_domains(&mut self, out: &mut Vec<DomainName>) {
        self.view.drain_new_domains(out);
    }

    pub fn index(&self) -> &Arc<EdgeIndex> {
        &self.index
    }
}

/// Socket-deployed edge feed: a [`TransportClient`] with
/// reconnect-with-claims driving the same view+index mirror as
/// [`EdgeFeed`]. The dial closure says how to establish a fresh client
/// for a set of claims (TCP in deployments, an in-memory pipe in
/// tests).
pub struct RemoteEdgeFeed<D>
where
    D: FnMut(&[(TldId, Option<Serial>)]) -> Result<TransportClient, TransportError>,
{
    view: BrokerZoneView,
    client: Option<TransportClient>,
    stale_claims: Option<Vec<(TldId, Option<Serial>)>>,
    dial: D,
    index: Arc<EdgeIndex>,
}

impl<D> RemoteEdgeFeed<D>
where
    D: FnMut(&[(TldId, Option<Serial>)]) -> Result<TransportClient, TransportError>,
{
    /// Dial the initial connection with empty claims (bootstrap every
    /// shard). The initial connect is not a resync.
    pub fn connect(tlds: &[TldId], mut dial: D, index: Arc<EdgeIndex>) -> Result<Self, TransportError> {
        let view = BrokerZoneView::detached(tlds);
        let client = dial(&view.claims())?;
        Ok(RemoteEdgeFeed { view, client: Some(client), stale_claims: None, dial, index })
    }

    /// Pull up to `max_events` decoded events into the view and index,
    /// healing faults by reconnecting with claims as they surface (the
    /// same recovery loop as `RemoteZoneView::pump`).
    pub fn pump(&mut self, max_events: usize) -> usize {
        let mut applied = 0;
        while applied < max_events {
            let Some(client) = self.client.as_mut() else {
                if self.reconnect().is_err() {
                    return applied;
                }
                continue;
            };
            match client.next_event() {
                ClientEvent::Idle => break,
                ClientEvent::Snapshot { tld, snapshot } => {
                    self.view.ingest_snapshot(tld, snapshot.clone());
                    self.index.adopt_snapshot(tld, snapshot);
                    applied += 1;
                }
                ClientEvent::Delta { tld, push, .. } => {
                    if self.view.ingest_delta(tld, &push) {
                        let state =
                            self.view.snapshot(tld).expect("delta chained onto a state").clone();
                        self.index.apply_delta(tld, state, &push);
                        applied += 1;
                    } else {
                        self.retire_client();
                    }
                }
                ClientEvent::Evicted | ClientEvent::Closed(_) => {
                    self.retire_client();
                }
            }
        }
        applied
    }

    fn retire_client(&mut self) {
        if let Some(client) = self.client.take() {
            self.stale_claims = Some(client.claimed_serials().to_vec());
        }
    }

    fn reconnect(&mut self) -> Result<(), TransportError> {
        let claims = match &self.stale_claims {
            Some(claims) => claims.clone(),
            None => self.view.claims(),
        };
        let client = (self.dial)(&claims)?;
        self.client = Some(client);
        self.stale_claims = None;
        self.view.note_resynced();
        Ok(())
    }

    /// Pump until the index's serial matches `targets` or `timeout`
    /// elapses.
    pub fn pump_until_serials(
        &mut self,
        targets: &[(TldId, Serial)],
        timeout: std::time::Duration,
    ) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if targets.iter().all(|&(tld, serial)| self.view.serial(tld) == Some(serial)) {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            if self.pump(1024) == 0 {
                std::thread::yield_now();
            }
        }
    }

    pub fn is_connected(&self) -> bool {
        self.client.is_some()
    }

    pub fn view(&self) -> &BrokerZoneView {
        &self.view
    }

    pub fn index(&self) -> &Arc<EdgeIndex> {
        &self.index
    }
}

/// The index-mirroring [`RouteSink`]: forwards every message the
/// routed view accepts into the epoch-swap index, post-apply, so the
/// edge answers from byte-identical state to the view (the snapshots
/// are `Arc`-shared column sets — the clones are pointer copies).
struct IndexSink {
    index: Arc<EdgeIndex>,
}

impl RouteSink for IndexSink {
    fn on_snapshot(&mut self, tld: TldId, snapshot: &ZoneSnapshot) {
        self.index.adopt_snapshot(tld, snapshot.clone());
    }

    fn on_delta(&mut self, tld: TldId, state: &ZoneSnapshot, push: &DeltaPush) {
        self.index.apply_delta(tld, state.clone(), push);
    }
}

/// An edge feed spanning a **partitioned, replicated** broker fleet:
/// one upstream connection per [`EndpointMap`] route, all mirroring
/// into one shared view + index pair — the multi-broker sibling of
/// [`RemoteEdgeFeed`]. All routing behaviour (per-route replica
/// failover, resume-with-claims recovery, health-based replica
/// selection, dead-with-backoff, live endpoint-map updates with
/// graceful drains) comes from wrapping
/// [`darkdns_core::broker_view::RoutedZoneView`] and mirroring its
/// applied stream through a [`RouteSink`] — the edge adds no routing
/// logic of its own.
pub struct RoutedEdgeFeed<E, D>
where
    D: FnMut(&E) -> Result<Box<dyn FrameConn>, TransportError>,
{
    routed: RoutedZoneView<E, D>,
    index: Arc<EdgeIndex>,
}

impl<E, D> RoutedEdgeFeed<E, D>
where
    D: FnMut(&E) -> Result<Box<dyn FrameConn>, TransportError>,
{
    /// Dial every route's preferred replica (failing over down each
    /// list) and bootstrap the shared view + index. Errors only when
    /// some route has no reachable replica.
    pub fn connect(
        map: EndpointMap<E>,
        dial: D,
        index: Arc<EdgeIndex>,
    ) -> Result<Self, TransportError> {
        let routed = RoutedZoneView::connect(map, dial)?;
        Ok(RoutedEdgeFeed { routed, index })
    }

    /// Pull up to `max_events` decoded events into the view and index,
    /// visiting every route and healing faults per route.
    pub fn pump(&mut self, max_events: usize) -> usize {
        let mut sink = IndexSink { index: Arc::clone(&self.index) };
        self.routed.pump_with(max_events, &mut sink)
    }

    /// Pump until the index's serial matches `targets` or `timeout`
    /// elapses.
    pub fn pump_until_serials(
        &mut self,
        targets: &[(TldId, Serial)],
        timeout: std::time::Duration,
    ) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if targets
                .iter()
                .all(|&(tld, serial)| self.routed.view().serial(tld) == Some(serial))
            {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            if self.pump(1024) == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// Swap in a newer [`EndpointMap`] without restarting the feed —
    /// see [`RoutedZoneView::apply_endpoint_update`] for the
    /// generation gating and graceful-drain semantics.
    pub fn apply_endpoint_update(&mut self, new: EndpointMap<E>) -> bool
    where
        E: PartialEq,
    {
        self.routed.apply_endpoint_update(new)
    }

    /// Replica switches so far, fleet-wide.
    pub fn failover_count(&self) -> u64 {
        self.routed.failover_count()
    }

    /// Snapshot continuation chunks received across every route and
    /// connection generation.
    pub fn snapshot_chunks_received(&self) -> u64 {
        self.routed.snapshot_chunks_received()
    }

    /// Planned drain handoffs completed cleanly (no resync).
    pub fn drains_completed(&self) -> u64 {
        self.routed.drains_completed()
    }

    /// Per-route health/rotation status (see
    /// [`darkdns_core::broker_view::RouteStatus`]).
    pub fn route_status(&self) -> Vec<RouteStatus> {
        self.routed.route_status()
    }

    /// True while every route has an established connection.
    pub fn is_connected(&self) -> bool {
        self.routed.is_connected()
    }

    pub fn view(&self) -> &BrokerZoneView {
        self.routed.view()
    }

    pub fn index(&self) -> &Arc<EdgeIndex> {
        &self.index
    }
}
