//! `darkdns-lint`: a token-level scanner enforcing the workspace's
//! invariant catalogue (`docs/INVARIANTS.md`) as machine-checkable
//! rules. No `syn`, no dependencies — the same vendored-shim discipline
//! as the rest of the workspace, applied to the linter itself.
//!
//! Four rules:
//!
//! * **L1 `lock-level`** — every `Mutex`/`RwLock` declaration carries a
//!   `// lock-level: N` annotation (or `lock-level: class` for generic
//!   wrappers whose level is carried by a runtime [`LockClass`]), and no
//!   function textually acquires a class at a level less than or equal
//!   to one still in scope. The static pass sees same-function nestings;
//!   the runtime `lockdep` subsystem in `darkdns-broker` covers
//!   cross-function and cross-thread orders.
//! * **L2 `decode-bounds`** — inside `fn decode_*` bodies in the wire
//!   codec, every allocation sized from a decoded count
//!   (`with_capacity` / `reserve_exact`) must be preceded by a bound of
//!   that count against the bytes remaining (`checked_mul`, `remaining`,
//!   or `.min(`).
//! * **L3 `panic`** — no `.unwrap()` / `.expect(` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` on non-test lines of
//!   declared hot-path modules; in the reactor-style modules (slab
//!   indexing), direct slice indexing `x[i]` is banned too. `assert!` /
//!   `debug_assert!` are deliberate invariant guards and stay legal.
//! * **L4 `encode-once`** — no `encode_delta_push(` call on relay /
//!   fan-out paths (the transport and the edge): deltas are encoded
//!   once by the publisher and fanned out as refcount-shared bytes.
//!
//! Escape hatch: a comment `// lint: allow(<rule>) <justification>` on
//! the offending line (or the contiguous comment block above it)
//! suppresses that rule there; the justification is mandatory.
//! `#[cfg(test)]` items are skipped entirely.
//!
//! [`LockClass`]: https://docs.rs/ (see `darkdns_broker::lockdep`)

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The rule a finding belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    LockLevel,
    DecodeBounds,
    PanicFree,
    EncodeOnce,
}

impl Rule {
    /// The name used in reports and in `lint: allow(...)` annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::LockLevel => "lock-level",
            Rule::DecodeBounds => "decode-bounds",
            Rule::PanicFree => "panic",
            Rule::EncodeOnce => "encode-once",
        }
    }
}

/// One lint finding: a rule violated at a file/line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: PathBuf,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Which rules apply to a file. Derived from the path for workspace
/// scans ([`profile_for`]); fixtures construct profiles directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct Profile {
    /// L1: annotation + static acquisition-order checking.
    pub lock_level: bool,
    /// L2: decoded counts bounded before allocation.
    pub decode_bounds: bool,
    /// L3: panic-token ban.
    pub panic_free: bool,
    /// L3 extension: direct slice-indexing ban (reactor-style modules).
    pub panic_index: bool,
    /// L4: `encode_delta_push` ban.
    pub encode_once: bool,
}

impl Profile {
    /// Every rule on — what the seeded-violation fixtures are scanned
    /// with.
    pub fn all() -> Profile {
        Profile {
            lock_level: true,
            decode_bounds: true,
            panic_free: true,
            panic_index: true,
            encode_once: true,
        }
    }
}

/// The rule set a workspace file gets, by path. See `docs/INVARIANTS.md`
/// for the module catalogue this encodes.
pub fn profile_for(path: &Path) -> Profile {
    let p = path.to_string_lossy().replace('\\', "/");
    let mut profile = Profile { lock_level: true, ..Profile::default() };
    // The wire codec: decode-bounds plus the panic ban. Indexing stays
    // legal there — decode paths go through the bounds-checked Decoder,
    // and encode paths backpatch length fields in buffers they sized.
    if p.ends_with("crates/dns/src/wire.rs") {
        profile.decode_bounds = true;
        profile.panic_free = true;
    }
    // Reactor-style hot modules: the panic ban plus the indexing ban
    // (slab/slot tables are exactly where a stale index aborts the
    // process).
    let hot = [
        "broker/src/transport/reactor.rs",
        "broker/src/transport/ring.rs",
        "broker/src/transport/relay.rs",
        "broker/src/transport/pipe.rs",
        "edge/src/server.rs",
    ];
    if hot.iter().any(|h| p.ends_with(h)) {
        profile.panic_free = true;
        profile.panic_index = true;
    }
    // Relay / fan-out paths must never re-encode a delta.
    if p.contains("broker/src/transport/") || p.contains("edge/src/") {
        profile.encode_once = true;
    }
    profile
}

// ---------------------------------------------------------------------------
// Source cleaning: split each line into code and comment, with string
// and char literals blanked out of the code half.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct Line {
    code: String,
    comment: String,
}

fn clean(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut block_depth = 0usize;
    for raw in source.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0usize;
        while i < chars.len() {
            if block_depth > 0 {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    block_depth -= 1;
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    block_depth += 1;
                    i += 2;
                } else {
                    comment.push(chars[i]);
                    i += 1;
                }
                continue;
            }
            match chars[i] {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    comment.extend(&chars[i..]);
                    break;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    block_depth += 1;
                    i += 2;
                }
                '"' => {
                    // Blank the string body; keep the quotes so tokens
                    // cannot be formed across a literal.
                    code.push('"');
                    i += 1;
                    while i < chars.len() {
                        if chars[i] == '\\' {
                            i += 2;
                        } else if chars[i] == '"' {
                            break;
                        } else {
                            i += 1;
                        }
                    }
                    code.push('"');
                    i += 1;
                }
                '\'' => {
                    // Char/byte literal vs lifetime: a literal closes
                    // within a few chars; a lifetime has no closing
                    // quote before a non-ident char.
                    if chars.get(i + 1) == Some(&'\\') {
                        code.push_str("' '");
                        i += 2; // skip the backslash
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        code.push_str("' '");
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        out.push(Line { code, comment });
    }
    out
}

/// Mark every line belonging to a `#[cfg(test)]`-gated item (including
/// `#[cfg(all(test, ...))]`): the attribute line itself through the end
/// of the braced item it gates.
fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        let code = &lines[i].code;
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            let start = i;
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            for m in mask.iter_mut().take((j + 1).min(lines.len())).skip(start) {
                *m = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

// ---------------------------------------------------------------------------
// Annotations: `lock-level: N` and `lint: allow(rule) justification`,
// attached to a code line from its own trailing comment or the
// contiguous comment block immediately above it.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LevelAnn {
    /// A concrete level in the hierarchy.
    Num(u32),
    /// Level carried by the runtime `LockClass` (generic wrappers,
    /// lockdep's own raw internals).
    Class,
}

/// The comments attached to code line `idx`: its trailing comment plus
/// the contiguous run of comment-only lines directly above.
fn attached_comments(lines: &[Line], idx: usize) -> Vec<&str> {
    let mut comments = Vec::new();
    let mut j = idx;
    while j > 0 {
        let above = &lines[j - 1];
        if above.code.trim().is_empty() && !above.comment.trim().is_empty() {
            comments.push(above.comment.as_str());
            j -= 1;
        } else {
            break;
        }
    }
    comments.push(lines[idx].comment.as_str());
    comments
}

fn level_annotation(lines: &[Line], idx: usize) -> Option<LevelAnn> {
    for comment in attached_comments(lines, idx) {
        if let Some(pos) = comment.find("lock-level:") {
            let rest = comment[pos + "lock-level:".len()..].trim_start();
            let token: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if token == "class" {
                return Some(LevelAnn::Class);
            }
            if let Ok(n) = token.parse::<u32>() {
                return Some(LevelAnn::Num(n));
            }
        }
    }
    None
}

/// Rules allowed at code line `idx` via `lint: allow(rule) why`.
/// An allow with an empty justification does not count.
fn allows(lines: &[Line], idx: usize) -> Vec<String> {
    let mut allowed = Vec::new();
    for comment in attached_comments(lines, idx) {
        let mut rest: &str = comment;
        while let Some(pos) = rest.find("lint: allow(") {
            rest = &rest[pos + "lint: allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_string();
            let justification_here = !rest[close + 1..].trim().is_empty();
            // A block-comment allow may carry its justification on the
            // following comment line; accept any non-empty tail in the
            // attached block.
            if justification_here || comment.trim().len() > pos + "lint: allow(".len() + close + 1
            {
                allowed.push(rule);
            }
            rest = &rest[close + 1..];
        }
    }
    allowed
}

fn is_allowed(lines: &[Line], idx: usize, rule: Rule) -> bool {
    allows(lines, idx).iter().any(|r| r == rule.name())
}

// ---------------------------------------------------------------------------
// L1 declarations
// ---------------------------------------------------------------------------

/// Does this code line declare a lock (a `Mutex<` / `RwLock<` type
/// position)? Type *definitions* of the wrappers themselves are not
/// declarations.
fn is_lock_decl(code: &str) -> bool {
    let t = code.trim_start();
    if !(t.contains("Mutex<") || t.contains("RwLock<")) {
        return false;
    }
    for skip in ["struct ", "pub struct ", "impl ", "impl<", "enum ", "pub enum ", "trait "] {
        if t.starts_with(skip) {
            return false;
        }
    }
    true
}

/// The declared name on a lock-declaration line: the field/static name
/// before the `:`, or the function name for helper signatures.
fn decl_name(code: &str) -> Option<String> {
    let t = code.trim();
    if let Some(pos) = t.find("fn ") {
        let rest = &t[pos + 3..];
        let name: String =
            rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        return (!name.is_empty()).then_some(name);
    }
    let before_colon = t.split(':').next()?;
    let name = before_colon
        .split_whitespace()
        .last()?
        .trim_matches(|c: char| !(c.is_ascii_alphanumeric() || c == '_'));
    (!name.is_empty()).then_some(name.to_string())
}

// ---------------------------------------------------------------------------
// The per-file scan
// ---------------------------------------------------------------------------

/// A lock declaration table: receiver name → hierarchy level.
pub type DeclTable = HashMap<String, u32>;

/// Collect the `name → level` table from one file's annotated lock
/// declarations (the first pass of a workspace scan).
pub fn collect_decls(source: &str) -> DeclTable {
    let lines = clean(source);
    let mask = test_mask(&lines);
    let mut table = DeclTable::new();
    for (idx, line) in lines.iter().enumerate() {
        if mask[idx] || !is_lock_decl(&line.code) {
            continue;
        }
        if let Some(LevelAnn::Num(level)) = level_annotation(&lines, idx) {
            if let Some(name) = decl_name(&line.code) {
                table.insert(name, level);
            }
        }
    }
    table
}

/// One live guard in the static order check.
struct Guard {
    name: Option<String>,
    class: String,
    level: u32,
    depth: i64,
}

/// A function context (for L2's fn-scoped lookback).
struct FnCtx {
    name: String,
    entry_depth: i64,
    start_line: usize,
}

/// Scan one file. `file_decls` resolves lock receivers declared in this
/// file; `global_decls` resolves cross-file receivers whose names are
/// unambiguous workspace-wide.
pub fn scan_source(
    path: &Path,
    source: &str,
    profile: Profile,
    global_decls: &DeclTable,
) -> Vec<Finding> {
    let lines = clean(source);
    let mask = test_mask(&lines);
    let file_decls = collect_decls(source);
    let mut findings = Vec::new();
    let mut depth: i64 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    let mut fns: Vec<FnCtx> = Vec::new();

    let push = |findings: &mut Vec<Finding>, idx: usize, rule: Rule, message: String| {
        if !is_allowed(&lines, idx, rule) {
            findings.push(Finding { file: path.to_path_buf(), line: idx + 1, rule, message });
        }
    };

    for idx in 0..lines.len() {
        let code = lines[idx].code.clone();
        if mask[idx] {
            // Still track braces so depth stays consistent across
            // skipped test modules.
            for c in code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            continue;
        }

        // Function headers (before brace counting: the header's `{`
        // belongs to the body).
        if let Some(fn_name) = fn_header_name(&code) {
            fns.push(FnCtx { name: fn_name, entry_depth: depth, start_line: idx });
        }

        // L1a: annotated declarations.
        if profile.lock_level && is_lock_decl(&code) && level_annotation(&lines, idx).is_none() {
            push(
                &mut findings,
                idx,
                Rule::LockLevel,
                format!(
                    "lock declaration `{}` has no `lock-level: N` annotation",
                    decl_name(&code).unwrap_or_else(|| "?".into())
                ),
            );
        }

        // L1b: textual acquisitions, checked against in-scope guards.
        if profile.lock_level {
            for (pos, kind) in acquisition_sites(&code) {
                let Some(receiver) = receiver_name(&code, pos) else { continue };
                let level = file_decls
                    .get(&receiver)
                    .or_else(|| global_decls.get(&receiver))
                    .copied();
                let Some(level) = level else { continue };
                for g in &guards {
                    if g.level >= level {
                        push(
                            &mut findings,
                            idx,
                            Rule::LockLevel,
                            format!(
                                "acquiring `{receiver}` (level {level}) while `{}` (level {}) \
                                 is still in scope; levels must strictly increase",
                                g.class, g.level
                            ),
                        );
                        break;
                    }
                }
                if let Some(bound) = guard_binding(&code, pos) {
                    guards.push(Guard {
                        name: Some(bound),
                        class: receiver.clone(),
                        level,
                        depth,
                    });
                }
                let _ = kind;
            }
            // Explicit early release.
            if let Some(dropped) = drop_target(&code) {
                guards.retain(|g| g.name.as_deref() != Some(dropped.as_str()));
            }
        }

        // L2: decoded counts bounded before allocation.
        if profile.decode_bounds {
            if let Some(fn_ctx) = fns.last() {
                if fn_ctx.name.starts_with("decode") {
                    for alloc in ["with_capacity(", "reserve_exact(", "reserve("] {
                        let Some(pos) = code.find(alloc) else { continue };
                        let arg = paren_arg(&code, pos + alloc.len());
                        let Some(ident) = first_ident(&arg) else { continue };
                        // Bound expressions often span physical lines
                        // (`count\n.checked_mul(N)\n.is_none_or(...)`),
                        // so the lookback joins continuation lines into
                        // logical statements first.
                        let bounded =
                            logical_statements(&lines[fn_ctx.start_line..idx]).iter().any(|s| {
                                !s.contains(alloc)
                                    && ident_appears(s, &ident)
                                    && (s.contains("checked_mul")
                                        || s.contains("remaining")
                                        || s.contains(".min("))
                            });
                        if !bounded {
                            push(
                                &mut findings,
                                idx,
                                Rule::DecodeBounds,
                                format!(
                                    "allocation sized from untrusted `{ident}` with no \
                                     preceding bound against the remaining buffer"
                                ),
                            );
                        }
                    }
                }
            }
        }

        // L3: panic tokens and (for reactor-style modules) indexing.
        if profile.panic_free {
            for token in [".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"]
            {
                if code.contains(token) {
                    push(
                        &mut findings,
                        idx,
                        Rule::PanicFree,
                        format!("`{}` on a hot-path module's non-test line", token.trim_matches('.')),
                    );
                }
            }
            if profile.panic_index && has_slice_index(&code) {
                push(
                    &mut findings,
                    idx,
                    Rule::PanicFree,
                    "direct slice index on a hot-path module's non-test line (use `get`/`get_mut`)"
                        .into(),
                );
            }
        }

        // L4: encode-once on fan-out paths.
        if profile.encode_once && code.contains("encode_delta_push(") {
            push(
                &mut findings,
                idx,
                Rule::EncodeOnce,
                "`encode_delta_push` on a relay/fan-out path: deltas are encoded once by the \
                 publisher and fanned out as shared bytes"
                    .into(),
            );
        }

        // Brace accounting, then scope-based releases.
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        guards.retain(|g| g.depth <= depth);
        while let Some(f) = fns.last() {
            if depth <= f.entry_depth && idx > f.start_line {
                fns.pop();
            } else {
                break;
            }
        }
    }
    findings
}

/// The name of a function declared on this line, if any.
fn fn_header_name(code: &str) -> Option<String> {
    let pos = code.find("fn ")?;
    // Reject matches inside identifiers (e.g. `often `).
    if pos > 0 {
        let prev = code.as_bytes()[pos - 1] as char;
        if prev.is_ascii_alphanumeric() || prev == '_' {
            return None;
        }
    }
    let rest = &code[pos + 3..];
    let name: String =
        rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    (!name.is_empty() && rest[name.len()..].trim_start().starts_with(['(', '<']))
        .then_some(name)
}

/// Byte offsets (and token text) of textual lock acquisitions:
/// `.lock()`, `.read()`, `.write()` with empty argument lists (I/O
/// reads and writes always pass a buffer).
fn acquisition_sites(code: &str) -> Vec<(usize, &'static str)> {
    let mut sites = Vec::new();
    for token in [".lock()", ".read()", ".write()"] {
        let mut from = 0usize;
        while let Some(pos) = code[from..].find(token) {
            sites.push((from + pos, token));
            from += pos + token.len();
        }
    }
    sites.sort_unstable();
    sites
}

/// The receiver of an acquisition at `pos`: the last path segment of
/// the identifier chain ending there (`self.inner.threads.lock()` →
/// `threads`). `None` when the receiver is a call result or otherwise
/// unresolvable — the runtime lockdep covers those sites.
fn receiver_name(code: &str, pos: usize) -> Option<String> {
    let head = &code[..pos];
    let chain: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '.')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    let last = chain.rsplit('.').next()?.trim();
    (!last.is_empty() && last.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_'))
        .then_some(last.to_string())
}

/// If the acquisition at `pos` is bound to a named guard
/// (`let g = receiver.lock();`), the guard's name. Temporaries (no
/// binding, or a trailing method chain that consumes the guard) return
/// `None` and are released at end of line.
fn guard_binding(code: &str, pos: usize) -> Option<String> {
    let t = code.trim_start();
    let indent = code.len() - t.len();
    if !t.starts_with("let ") {
        return None;
    }
    let eq = code.find('=')?;
    if eq > pos {
        return None;
    }
    // Between `=` and the receiver chain: only borrows/derefs.
    let chain_start = {
        let head = &code[..pos];
        let tail_len = head
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '.')
            .count();
        pos - tail_len
    };
    let between = code[eq + 1..chain_start].trim();
    if !between.chars().all(|c| c == '&' || c == '*' || c.is_whitespace()) {
        return None;
    }
    // After the acquisition: `;`, or a poison-recovery combinator.
    let after = &code[pos..];
    let close = after.find(')')? + 1;
    let tail = after[close..].trim();
    if !(tail.is_empty()
        || tail.starts_with(';')
        || tail.starts_with(".unwrap_or_else("))
    {
        return None;
    }
    // The bound name: `let [mut] name = ...`.
    let binding = code[indent + 4..eq].trim().trim_start_matches("mut ").trim();
    (binding.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !binding.is_empty())
        .then(|| binding.to_string())
}

/// The argument of `drop(x)` when this line drops a named binding.
fn drop_target(code: &str) -> Option<String> {
    let pos = code.find("drop(")?;
    if pos > 0 {
        let prev = code.as_bytes()[pos - 1] as char;
        if prev.is_ascii_alphanumeric() || prev == '_' || prev == '.' {
            return None; // mem::drop is fine; method calls are not drops
        }
    }
    let arg = paren_arg(code, pos + "drop(".len());
    let name = arg.trim();
    (name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !name.is_empty())
        .then(|| name.to_string())
}

/// Join physical code lines into logical statements: a statement
/// accumulates until a line ends with `;`, `{`, `}`, or `,`. Good
/// enough for L2's "was this count bounded earlier?" lookback, where
/// the bound chain frequently wraps.
fn logical_statements(lines: &[Line]) -> Vec<String> {
    let mut stmts = Vec::new();
    let mut cur = String::new();
    for line in lines {
        let t = line.code.trim();
        if t.is_empty() {
            continue;
        }
        cur.push(' ');
        cur.push_str(t);
        if t.ends_with(';') || t.ends_with('{') || t.ends_with('}') || t.ends_with(',') {
            stmts.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        stmts.push(cur);
    }
    stmts
}

/// The text inside a parenthesized group starting at `open` (the byte
/// after the `(`), honouring nesting.
fn paren_arg(code: &str, open: usize) -> String {
    let mut depth = 1i64;
    let mut arg = String::new();
    for c in code[open..].chars() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        arg.push(c);
    }
    arg
}

/// The first identifier in an expression (skipping numeric literals).
fn first_ident(expr: &str) -> Option<String> {
    let mut chars = expr.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if c.is_ascii_alphabetic() || c == '_' {
            let ident: String = expr[i..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if ident == "as" || ident == "usize" || ident == "u32" || ident == "u64" {
                for _ in 0..ident.len().saturating_sub(1) {
                    chars.next();
                }
                continue;
            }
            return Some(ident);
        }
        if c.is_ascii_digit() {
            // Skip the rest of a numeric literal (incl. suffixes).
            while let Some(&(_, n)) = chars.peek() {
                if n.is_ascii_alphanumeric() || n == '_' {
                    chars.next();
                } else {
                    break;
                }
            }
        }
    }
    None
}

/// Does `ident` appear in `code` as a whole word?
fn ident_appears(code: &str, ident: &str) -> bool {
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(ident) {
        let start = from + pos;
        let end = start + ident.len();
        let pre_ok = start == 0 || {
            let c = code.as_bytes()[start - 1] as char;
            !(c.is_ascii_alphanumeric() || c == '_')
        };
        let post_ok = end >= code.len() || {
            let c = code.as_bytes()[end] as char;
            !(c.is_ascii_alphanumeric() || c == '_')
        };
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Direct slice/array indexing: a `[` immediately following an
/// identifier character, `]`, or `)`. Attribute lines (`#[...]`),
/// array-type and array-literal brackets are not indexing.
fn has_slice_index(code: &str) -> bool {
    if code.trim_start().starts_with('#') {
        return false;
    }
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if prev.is_ascii_alphanumeric() || prev == '_' || prev == ']' || prev == ')' {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Directories never scanned: vendored shims, build output, test
/// support trees, and the linter's own seeded-violation fixtures.
fn skip_component(name: &str) -> bool {
    matches!(name, "vendor" | "target" | "tests" | "benches" | "examples" | "fixtures" | ".git")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !skip_component(&name) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan the workspace rooted at `root`: every non-vendored `.rs` file
/// under `crates/*/src` and `src/`, with path-derived profiles and a
/// two-pass (declarations, then checks) so cross-file receivers resolve
/// when their names are workspace-unique.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        collect_rs_files(&crates, &mut files)?;
    }
    let src = root.join("src");
    if src.is_dir() {
        collect_rs_files(&src, &mut files)?;
    }
    files.sort();

    let mut sources = Vec::new();
    for file in files {
        let source = std::fs::read_to_string(&file)?;
        sources.push((file, source));
    }

    // Pass 1: the global declaration table (names with conflicting
    // levels across files are ambiguous and dropped — per-file tables
    // still resolve them locally).
    let mut global = DeclTable::new();
    let mut conflicted: Vec<String> = Vec::new();
    for (_, source) in &sources {
        for (name, level) in collect_decls(source) {
            match global.get(&name) {
                Some(&existing) if existing != level => conflicted.push(name),
                _ => {
                    global.insert(name, level);
                }
            }
        }
    }
    for name in conflicted {
        global.remove(&name);
    }

    // Pass 2: checks.
    let mut findings = Vec::new();
    for (file, source) in &sources {
        let profile = profile_for(file);
        findings.extend(scan_source(file, source, profile, &global));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str, profile: Profile) -> Vec<Finding> {
        scan_source(Path::new("mem.rs"), src, profile, &DeclTable::new())
    }

    #[test]
    fn strings_and_comments_do_not_form_tokens() {
        let src = r#"
fn f() {
    let s = "contains .unwrap() and panic! in a string";
    // a comment mentioning .unwrap()
    let c = 'x';
}
"#;
        let findings = scan(src, Profile { panic_free: true, ..Profile::default() });
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = r#"
fn hot() {}

#[cfg(test)]
mod tests {
    fn t() {
        let x: Option<u8> = None;
        x.unwrap();
    }
}
"#;
        let findings = scan(src, Profile { panic_free: true, ..Profile::default() });
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_requires_justification() {
        let bare = "fn f() {\n    // lint: allow(panic)\n    x.unwrap();\n}\n";
        let findings = scan(bare, Profile { panic_free: true, ..Profile::default() });
        assert_eq!(findings.len(), 1, "bare allow must not suppress: {findings:?}");

        let justified =
            "fn f() {\n    // lint: allow(panic) startup-only, no peer yet\n    x.unwrap();\n}\n";
        let findings = scan(justified, Profile { panic_free: true, ..Profile::default() });
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn lifetimes_do_not_eat_the_rest_of_the_line() {
        let src = "fn f<'a>(x: &'a [u8]) -> &'a [u8] { x }\nfn g() { y.unwrap(); }\n";
        let findings = scan(src, Profile { panic_free: true, ..Profile::default() });
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn guard_binding_vs_temporary() {
        // A let-bound Arc::clone around a read guard is a temporary,
        // not a held guard.
        assert_eq!(guard_binding("let cur = Arc::clone(&self.current.read());", 25), None);
        let code = "let mut subs = self.subscribers.lock();";
        let pos = code.find(".lock()").unwrap();
        assert_eq!(guard_binding(code, pos), Some("subs".to_string()));
    }
}
