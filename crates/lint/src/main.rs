//! `darkdns-lint` CLI: scan the workspace for violations of the
//! invariant catalogue (`docs/INVARIANTS.md`) and exit nonzero if any
//! are found. Usage: `darkdns-lint [workspace-root]` (default `.`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root: PathBuf = std::env::args_os().nth(1).map(PathBuf::from).unwrap_or_else(|| ".".into());
    let findings = match darkdns_lint::scan_workspace(&root) {
        Ok(findings) => findings,
        Err(err) => {
            eprintln!("darkdns-lint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("darkdns-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("darkdns-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
