//! Self-test: every rule fires on its seeded-violation fixture, and
//! the clean fixture passes all rules under the full profile. These are
//! the fixtures `scripts/lint.sh` counts on to prove the linter is
//! alive before trusting a clean workspace scan.

use std::path::Path;

use darkdns_lint::{DeclTable, Finding, Profile, Rule, scan_source};

fn scan_fixture(name: &str, profile: Profile) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    scan_source(&path, &source, profile, &DeclTable::new())
}

fn count(findings: &[Finding], rule: Rule) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn l1_fires_on_unannotated_decl_and_inverted_order() {
    let findings = scan_fixture("l1_bad.rs", Profile { lock_level: true, ..Profile::default() });
    assert!(
        count(&findings, Rule::LockLevel) >= 2,
        "expected an annotation finding and an order finding, got {findings:#?}"
    );
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("no `lock-level: N` annotation")), "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("strictly increase")), "{messages:?}");
}

#[test]
fn l2_fires_on_unbounded_decode_allocation() {
    let findings = scan_fixture("l2_bad.rs", Profile { decode_bounds: true, ..Profile::default() });
    assert_eq!(count(&findings, Rule::DecodeBounds), 1, "{findings:#?}");
}

#[test]
fn l3_fires_on_panic_tokens_and_indexing_but_not_tests() {
    let findings = scan_fixture(
        "l3_bad.rs",
        Profile { panic_free: true, panic_index: true, ..Profile::default() },
    );
    // unwrap, slice index, panic!, expect — and nothing from the
    // #[cfg(test)] module.
    assert_eq!(count(&findings, Rule::PanicFree), 4, "{findings:#?}");
    let max_line = findings.iter().map(|f| f.line).max().unwrap_or(0);
    assert!(max_line < 13, "findings leaked into the test module: {findings:#?}");
}

#[test]
fn l4_fires_on_delta_reencode() {
    let findings = scan_fixture("l4_bad.rs", Profile { encode_once: true, ..Profile::default() });
    assert_eq!(count(&findings, Rule::EncodeOnce), 1, "{findings:#?}");
}

#[test]
fn clean_fixture_passes_every_rule() {
    let findings = scan_fixture("clean.rs", Profile::all());
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn workspace_profiles_map_paths_to_rules() {
    let wire = darkdns_lint::profile_for(Path::new("crates/dns/src/wire.rs"));
    assert!(wire.decode_bounds && wire.panic_free && !wire.panic_index);

    let reactor = darkdns_lint::profile_for(Path::new("crates/broker/src/transport/reactor.rs"));
    assert!(reactor.panic_free && reactor.panic_index && reactor.encode_once);

    let edge = darkdns_lint::profile_for(Path::new("crates/edge/src/server.rs"));
    assert!(edge.panic_free && edge.panic_index && edge.encode_once);

    let cold = darkdns_lint::profile_for(Path::new("crates/intel/src/lib.rs"));
    assert!(cold.lock_level && !cold.panic_free && !cold.encode_once);
}
