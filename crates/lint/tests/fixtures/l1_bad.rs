// Seeded L1 violations: an unannotated lock declaration and a
// level-inverted acquisition pair. Never compiled — scanned by
// tests/rules.rs.
use std::sync::Mutex;

struct State {
    queue: Mutex<Vec<u8>>,
    // lock-level: 20
    outer: Mutex<u32>,
    // lock-level: 10
    inner: Mutex<u32>,
}

impl State {
    fn inverted(&self) {
        let _hi = self.outer.lock();
        let _lo = self.inner.lock();
    }
}
