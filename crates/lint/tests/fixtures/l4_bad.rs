// Seeded L4 violation: re-encoding a delta on a fan-out path instead
// of forwarding the publisher's shared bytes. Never compiled — scanned
// by tests/rules.rs.
pub fn relay_delta(push: &DeltaPush, peers: &mut [Peer]) {
    for peer in peers {
        let frame = encode_delta_push(push);
        peer.enqueue(frame);
    }
}
