// A file that passes every rule under the full profile: annotated
// locks acquired in level order, a bounded decode, no panic tokens, no
// direct indexing, no delta re-encode. Never compiled — scanned by
// tests/rules.rs.
use std::sync::Mutex;

struct State {
    // lock-level: 10
    directory: Mutex<Vec<u8>>,
    // lock-level: 20
    shard: Mutex<Vec<u8>>,
}

impl State {
    fn ordered(&self) {
        let _dir = self.directory.lock();
        let _shard = self.shard.lock();
    }
}

pub fn decode_counts(bytes: &[u8]) -> Option<Vec<u16>> {
    let count = (*bytes.first()?) as usize;
    let remaining = bytes.len().saturating_sub(1);
    if count.checked_mul(2)? > remaining {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for chunk in bytes.get(1..)?.chunks_exact(2).take(count) {
        out.push(u16::from_be_bytes([*chunk.first()?, *chunk.get(1)?]));
    }
    Some(out)
}
