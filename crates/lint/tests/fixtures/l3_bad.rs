// Seeded L3 violations: panic tokens and a direct slice index on what
// the scan profile declares a hot path. The test module at the bottom
// must NOT be flagged. Never compiled — scanned by tests/rules.rs.
pub fn hot(buf: &[u8], slot: Option<usize>) -> u8 {
    let idx = slot.unwrap();
    let first = buf[idx];
    if first == 0 {
        panic!("zero byte");
    }
    let second = buf.get(1).expect("short frame");
    first ^ second
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let x: Option<u8> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
