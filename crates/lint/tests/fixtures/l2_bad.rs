// Seeded L2 violation: an allocation sized straight from a decoded,
// untrusted count with no bound against the remaining buffer. Never
// compiled — scanned by tests/rules.rs.
pub fn decode_evil(bytes: &[u8]) -> Vec<u16> {
    let count = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
    let mut out = Vec::with_capacity(count);
    for chunk in bytes[2..].chunks_exact(2).take(count) {
        out.push(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    out
}
