//! Shared harness for the regeneration binaries and Criterion benches.
//!
//! Every table/figure binary runs the same paper-shaped experiment
//! (`ExperimentConfig::paper(seed)`, seed 42 unless overridden by the
//! first CLI argument) and prints its section. The experiment is
//! deterministic, so all binaries report slices of the same run.

use darkdns_core::config::ExperimentConfig;
use darkdns_core::experiment::{Experiment, RunArtifacts};

/// Default seed used across all regeneration binaries.
pub const DEFAULT_SEED: u64 = 42;

/// Seed from `argv[1]`, or the default.
pub fn seed_from_args() -> u64 {
    std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_SEED)
}

/// Run the paper-shaped experiment.
pub fn run_paper(seed: u64) -> RunArtifacts {
    Experiment::new(ExperimentConfig::paper(seed)).run_with_artifacts()
}

/// Run the small (CI-friendly) experiment.
pub fn run_small(seed: u64) -> RunArtifacts {
    Experiment::new(ExperimentConfig::small(seed)).run_with_artifacts()
}

/// Build a synthetic pair of zone snapshots with `size` entries and
/// `churn` fraction added/removed/changed — the diff-bench workload.
pub mod synth {
    use darkdns_dns::{DomainName, Serial, ZoneSnapshot};
    use darkdns_sim::time::SimTime;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    pub fn snapshot_pair(size: usize, churn: f64, seed: u64) -> (ZoneSnapshot, ZoneSnapshot) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ns_a = DomainName::parse("ns1.cloudflare.com").unwrap();
        let ns_b = DomainName::parse("ns1.domaincontrol.com").unwrap();
        let origin = DomainName::parse("com").unwrap();
        let mut old = Vec::with_capacity(size);
        let mut new = Vec::with_capacity(size);
        for i in 0..size {
            let name = DomainName::parse(&format!("domain-{i:09}.com")).unwrap();
            let roll: f64 = rng.gen();
            if roll < churn / 3.0 {
                // removed: only in old
                old.push((name, vec![ns_a.clone()]));
            } else if roll < 2.0 * churn / 3.0 {
                // added: only in new
                new.push((name, vec![ns_a.clone()]));
            } else if roll < churn {
                // changed NS
                old.push((name.clone(), vec![ns_a.clone()]));
                new.push((name, vec![ns_b.clone()]));
            } else {
                old.push((name.clone(), vec![ns_a.clone()]));
                new.push((name, vec![ns_a.clone()]));
            }
        }
        (
            ZoneSnapshot::from_entries(origin.clone(), Serial::new(1), SimTime::ZERO, old),
            ZoneSnapshot::from_entries(origin, Serial::new(2), SimTime::from_days(1), new),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkdns_dns::diff::{SortedMergeDiff, ZoneDiffEngine};

    #[test]
    fn synth_pair_has_requested_churn() {
        let (old, new) = synth::snapshot_pair(10_000, 0.03, 1);
        let delta = SortedMergeDiff.diff(&old, &new);
        let churn_frac = delta.len() as f64 / 10_000.0;
        assert!((0.02..0.04).contains(&churn_frac), "churn {churn_frac}");
    }

    #[test]
    fn default_seed_is_stable() {
        assert_eq!(DEFAULT_SEED, 42);
    }
}
