//! Regenerates Figure 1: CDF of detection latency (CT sighting minus
//! RDAP creation time) per TLD and overall. Paper landmarks: 50% within
//! 45 min, ≈30% within 15 min, <2% beyond one day, `.com`/`.net`
//! (60-second zone cadence) fastest.

fn main() {
    let seed = darkdns_bench::seed_from_args();
    let arts = darkdns_bench::run_paper(seed);
    let r = &arts.report;
    println!(
        "Figure 1 (seed {seed}): 50% detected within {}s (paper: 45 min)\n",
        r.figure1_half_detected_within_secs
    );
    let edges = ["30s", "1m", "2m", "5m", "15m", "30m", "1h", "2h", "3h", "6h", "12h", "1d", "2d"];
    print!("{:<8} {:>8}", "TLD", "samples");
    for e in edges {
        print!(" {e:>5}");
    }
    println!();
    for series in &r.figure1 {
        print!("{:<8} {:>8}", series.tld, series.samples);
        for (_, frac) in &series.series {
            print!(" {frac:>5.2}");
        }
        println!();
    }
    let all = r.figure1.iter().find(|s| s.tld == "All").expect("All series present");
    let at = |label: &str| {
        let idx = edges.iter().position(|e| *e == label).unwrap();
        all.series[idx].1
    };
    println!(
        "\nlandmarks: ≤15m {:.1}% (paper ≈30%), ≤1h {:.1}%, >1d {:.1}% (paper <2%)",
        100.0 * at("15m"),
        100.0 * at("1h"),
        100.0 * (1.0 - at("1d"))
    );
}
