//! Regenerates Table 5: web hosting (ASN of measured A records) of
//! confirmed transient domains. Paper: Cloudflare AS13335 36.2%,
//! Hostinger AS47583 14.0%, Amazon AS16509 7.6%.

fn main() {
    let seed = darkdns_bench::seed_from_args();
    let arts = darkdns_bench::run_paper(seed);
    println!("Table 5 (seed {seed}): transient web hosting (A-record ASN)\n");
    println!("{:<28} {:>8} {:>7}", "Network (ASN)", "Domains", "%");
    for row in &arts.report.table5 {
        println!("{:<28} {:>8} {:>6.1}%", row.label, row.count, row.pct);
    }
}
