//! Regenerates Table 3: registrar distribution of confirmed transient
//! domains (via RDAP registrar data). Paper: GoDaddy 19.4%, Hostinger
//! 15.2%, NameCheap 9.9%, long tail of small registrars ≈21%.

fn main() {
    let seed = darkdns_bench::seed_from_args();
    let arts = darkdns_bench::run_paper(seed);
    println!("Table 3 (seed {seed}): transient registrar distribution\n");
    println!("{:<28} {:>8} {:>7}", "Registrar", "Domains", "%");
    for row in &arts.report.table3 {
        println!("{:<28} {:>8} {:>6.1}%", row.label, row.count, row.pct);
    }
    println!("\nconfirmed transients: {}", arts.report.transients.confirmed);
}
