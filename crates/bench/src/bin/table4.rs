//! Regenerates Table 4: DNS hosting (NS-record SLD) of confirmed transient
//! domains, from the active NS measurements. Paper: Cloudflare 49.5%,
//! Hostinger parking 8.7%, NS1 6.9%, Squarespace 6.9%, GoDaddy 5.5%.

fn main() {
    let seed = darkdns_bench::seed_from_args();
    let arts = darkdns_bench::run_paper(seed);
    println!("Table 4 (seed {seed}): transient DNS hosting (NS SLD)\n");
    println!("{:<28} {:>8} {:>7}", "NS Record SLD", "Domains", "%");
    for row in &arts.report.table4 {
        println!("{:<28} {:>8} {:>6.1}%", row.label, row.count, row.pct);
    }
}
