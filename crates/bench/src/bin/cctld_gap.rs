//! Regenerates the §4.4 ccTLD ground-truth validation: against the `.nl`
//! registry's own records, the CT-based method recovered 99 of 334
//! never-in-snapshot transients (29.6%) — the paper's demonstration that
//! even the best public data leaves a large intra-day blind spot.

fn main() {
    let seed = darkdns_bench::seed_from_args();
    let arts = darkdns_bench::run_paper(seed);
    match &arts.report.cctld {
        Some(c) => {
            println!("§4.4 ccTLD ground truth (seed {seed}, .{})\n", c.tld);
            println!("registry-recorded deletions <24 h: {} (paper: 714)", c.deleted_under_24h);
            println!("never captured by any snapshot:    {} (paper: 334)", c.never_in_snapshot);
            println!("detected by the CT pipeline:       {} (paper: 99)", c.detected_by_pipeline);
            println!("recall: {:.1}% (paper: 29.6%)", c.recall_pct);
        }
        None => println!("no ccTLD configured in this run"),
    }
}
