//! Regenerates Table 2: transient domain candidates per TLD per month
//! (paper total: 68,042 ≈ 1% of CT-observed NRDs), plus the §4.2 funnel
//! down to confirmed transients (paper: 42,358).

fn main() {
    let seed = darkdns_bench::seed_from_args();
    let arts = darkdns_bench::run_paper(seed);
    let r = &arts.report;
    println!("Table 2 (seed {seed}, scale {})\n", r.scale);
    println!("{:<8} {:>7} {:>7} {:>7} {:>8}", "TLD", "Nov", "Dec", "Jan", "Total");
    for row in &r.table2 {
        println!(
            "{:<8} {:>7} {:>7} {:>7} {:>8}",
            row.tld, row.monthly[0], row.monthly[1], row.monthly[2], row.total
        );
    }
    let t = &r.transients;
    println!(
        "\ntransient candidates: {} ({:.2}% of {} CT-observed NRDs; paper ≈1%)",
        t.candidates,
        100.0 * t.candidates as f64 / r.nrd_total.max(1) as f64,
        r.nrd_total
    );
    println!(
        "funnel: {} → RDAP-failed {} → misclassified {} → confirmed {} (paper: 68,042 → 42,358)",
        t.candidates, t.rdap_failed, t.misclassified, t.confirmed
    );
    println!(
        "ground truth also holds {} cert-less transients the pipeline cannot see (lower bound)",
        t.invisible_ground_truth
    );
}
