//! Runs the whole paper-shaped experiment once and prints every table,
//! figure and section statistic; also writes the machine-readable report
//! to `results/report-<seed>.json`.

fn main() {
    let seed = darkdns_bench::seed_from_args();
    let arts = darkdns_bench::run_paper(seed);
    println!("{}", arts.report.render_text());
    let json = serde_json::to_string_pretty(&arts.report).expect("report serializes");
    let path = format!("results/report-{seed}.json");
    if std::fs::create_dir_all("results").is_ok() && std::fs::write(&path, json).is_ok() {
        println!("\nmachine-readable report written to {path}");
    }
}
