//! Regenerates Figure 2: CDF of confirmed-transient lifetimes, estimated
//! as (last valid NS response − RDAP creation). Paper landmark: over 50%
//! of transient domains die within their first 6 hours.

fn main() {
    let seed = darkdns_bench::seed_from_args();
    let arts = darkdns_bench::run_paper(seed);
    let r = &arts.report;
    println!(
        "Figure 2 (seed {seed}): median transient lifetime {:.1} h (paper: <6 h)\n",
        r.figure2_median_lifetime_hours
    );
    println!("{:>6} {:>8}", "edge", "CDF");
    for (edge, frac) in &r.figure2 {
        println!("{:>5}h {:>8.3}", (*edge as u64) / 3_600, frac);
    }
    let under_6h = r
        .figure2
        .iter()
        .find(|(e, _)| (*e as u64) == 6 * 3_600)
        .map(|(_, f)| *f)
        .unwrap_or(0.0);
    println!("\ndead within 6h: {:.1}% (paper: >50%)", 100.0 * under_6h);
}
