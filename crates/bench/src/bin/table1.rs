//! Regenerates Table 1: top TLDs by CT-observed newly registered domains,
//! with per-month counts and zone-NRD coverage. Also prints the §4
//! headline aggregates (CT total vs zone-diff total, overall coverage —
//! paper: 6.8M / 16.3M / 42.0%).

fn main() {
    let seed = darkdns_bench::seed_from_args();
    let arts = darkdns_bench::run_paper(seed);
    let r = &arts.report;
    println!(
        "Table 1 (seed {seed}, scale {}, {} days)\n\
         CT-observed NRDs: {}   zone NRDs: {}   coverage: {:.1}% (paper: 42.0%)\n",
        r.scale, r.window_days, r.nrd_total, r.zone_nrd_total, r.coverage_pct
    );
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9}",
        "TLD", "Nov", "Dec", "Jan", "Total", "Zone NRD", "Cov (%)"
    );
    for row in &r.table1 {
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>10} {:>10} {:>8.1}%",
            row.tld, row.monthly[0], row.monthly[1], row.monthly[2], row.total, row.zone_nrd,
            row.coverage_pct
        );
    }
}
