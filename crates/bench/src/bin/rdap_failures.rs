//! Regenerates the §4.2 RDAP failure analysis: failure rates for ordinary
//! NRDs (paper ≈3%) versus transient candidates (paper ≈34%), the cause
//! breakdown (too late / too early / never existed / operational), and
//! the DZDB check that most failed transients were previously registered
//! (paper: 97%).

fn main() {
    let seed = darkdns_bench::seed_from_args();
    let arts = darkdns_bench::run_paper(seed);
    let rf = &arts.report.rdap_failures;
    println!("§4.2 RDAP failures (seed {seed})\n");
    println!(
        "NRD queries:       {:>8}  failures {:>6} ({:.1}%; paper ≈3%)",
        rf.nrd_queries, rf.nrd_failures, rf.nrd_failure_pct
    );
    println!(
        "transient queries: {:>8}  failures {:>6} ({:.1}%; paper ≈34%)",
        rf.transient_queries, rf.transient_failures, rf.transient_failure_pct
    );
    println!("\nfailure causes:");
    for (cause, count) in &rf.causes {
        println!("  {cause:<14} {count}");
    }
    println!(
        "\nfailed transients with DZDB history: {:.1}% (paper: ≈97%)",
        rf.failed_with_history_pct
    );
}
