//! Regenerates the §4.1 NS-infrastructure stability statistic: the
//! fraction of monitored NRDs that kept their initial nameserver set over
//! the first 24 hours. Paper: 97.5% kept, 2.5% changed (changes a daily
//! snapshot diff can miss depending on timing).

fn main() {
    let seed = darkdns_bench::seed_from_args();
    let arts = darkdns_bench::run_paper(seed);
    let ns = &arts.report.ns_stability;
    println!("§4.1 NS stability (seed {seed})\n");
    println!("monitored NRDs:         {}", ns.monitored);
    println!("changed NS within 24 h: {}", ns.changed_within_24h);
    println!("kept initial NS:        {:.1}% (paper: 97.5%)", ns.kept_pct);
}
