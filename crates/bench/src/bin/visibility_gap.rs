//! Regenerates the §4.4 one-day visibility-gap comparison against the
//! commercial passive-DNS NOD feed. Paper: NOD held ≈5% more NRDs with
//! ≈60% overlap; for transients 855 total across both feeds, only 33%
//! seen by both, NOD ≈10% larger — the feeds are complementary.

fn main() {
    let seed = darkdns_bench::seed_from_args();
    let arts = darkdns_bench::run_paper(seed);
    let v = &arts.report.visibility;
    println!("§4.4 visibility gap, one-day NOD comparison (seed {seed}, day {})\n", v.comparison_day);
    println!("NRDs registered that day:");
    println!("  our CT feed:  {}", v.ours_nrd);
    println!(
        "  SIE NOD feed: {} ({:+.1}% vs ours; paper ≈ +5%)",
        v.nod_nrd,
        100.0 * (v.nod_nrd as f64 - v.ours_nrd as f64) / v.ours_nrd.max(1) as f64
    );
    println!("  both:         {} (overlap {:.1}% of union; paper ≈60%)", v.both_nrd, v.overlap_pct);
    println!("\ntransients that day:");
    println!("  ours {} vs NOD {}; union {}", v.ours_transient, v.nod_transient, v.transient_union);
    println!(
        "  both: {} ({:.1}% of union; paper 33%)",
        v.both_transient, v.transient_overlap_pct
    );
    println!("\nwhole-window transients (for statistical weight at this scale):");
    println!(
        "  ours {} vs NOD {}; both {} ({:.1}% of union; paper 33%)",
        v.window_ours_transient,
        v.window_nod_transient,
        v.window_both_transient,
        v.window_transient_overlap_pct
    );
}
