//! The §5 ablation: sweeps the consumer-visible zone-state cadence from
//! one minute (registry-internal) through five minutes (Verisign's
//! historical RZU service) to one day (CZDS), measuring transient capture
//! and reveal latency against ground truth. This is the design argument
//! of the paper — "resurrect RZU" — turned into a measurement.

use darkdns_core::rzu_ablation::{render, sweep, DEFAULT_CADENCES_SECS};

fn main() {
    let seed = darkdns_bench::seed_from_args();
    let arts = darkdns_bench::run_paper(seed);
    let window_start = arts.schedule.window_start();
    let rows = sweep(&arts.universe, window_start, &DEFAULT_CADENCES_SECS);
    println!("RZU ablation (seed {seed})\n");
    print!("{}", render(&rows));
    println!(
        "\nreading: at daily cadence transients are invisible by construction; a 5-minute \
         RZU captures nearly all of them, which is the quantified version of §5's argument."
    );
}
