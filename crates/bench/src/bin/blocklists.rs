//! Regenerates the §4.3 blocklist analysis: how often the ten monitored
//! blocklists flag early-removed NRDs (paper: 6.6%, 92% while active) and
//! transient domains (paper: 5% flagged, 94% only after deletion).

fn main() {
    let seed = darkdns_bench::seed_from_args();
    let arts = darkdns_bench::run_paper(seed);
    let bl = &arts.report.blocklists;
    println!("§4.3 blocklists (seed {seed})\n");
    let er = &bl.early_removed;
    println!("early-removed NRDs (deleted before window end): {}", bl.early_removed_total);
    println!(
        "  flagged: {} ({:.1}%; paper 6.6%)\n  before registration: {} ({:.1}%; paper 3%)\n  while active: {} ({:.1}%; paper 92%)\n  after deletion: {} ({:.1}%; paper 5%)",
        er.flagged,
        er.flagged_pct,
        er.before_registration,
        pct(er.before_registration, er.flagged),
        er.while_active,
        pct(er.while_active, er.flagged),
        er.after_deletion,
        pct(er.after_deletion, er.flagged),
    );
    let tr = &bl.transient;
    println!("\nconfirmed transients: {}", tr.population);
    println!(
        "  flagged: {} ({:.1}%; paper 5%)\n  same-day: {} ({:.1}%; paper 5%)\n  before registration: {} ({:.1}%; paper 1%)\n  after deletion: {} ({:.1}%; paper 94%)",
        tr.flagged,
        tr.flagged_pct,
        tr.same_day,
        pct(tr.same_day, tr.flagged),
        tr.before_registration,
        pct(tr.before_registration, tr.flagged),
        tr.after_deletion,
        pct(tr.after_deletion, tr.flagged),
    );
}

fn pct(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        100.0 * n as f64 / d as f64
    }
}
