//! The §4.1 validation experiment: probe every TLD's SOA serial over the
//! wire and infer its zone-push cadence, confirming the mechanism behind
//! Figure 1's per-TLD detection-latency spread ("we validated this
//! assumption by probing the zones of Figure 1 for SOA serial changes,
//! and found consistent timestamps").

use darkdns_measure::soa_probe::probe_cadence;
use darkdns_registry::tld::paper_gtlds;
use darkdns_sim::time::{SimDuration, SimTime};

fn main() {
    println!("§4.1 SOA cadence validation\n");
    println!("{:<8} {:>12} {:>12} {:>9} {:>8}", "TLD", "configured", "estimated", "changes", "OK");
    let poll = SimDuration::from_secs(30);
    for tld in paper_gtlds() {
        let est = probe_cadence(
            &tld,
            SimTime::ZERO,
            SimTime::from_hours(1),
            poll,
            SimDuration::from_hours(12),
        );
        println!(
            "{:<8} {:>11}s {:>11}s {:>9} {:>8}",
            est.tld,
            est.configured_cadence_secs,
            est.estimated_cadence_secs,
            est.observed_changes.len(),
            if est.is_consistent(poll) { "yes" } else { "NO" }
        );
    }
    println!(
        "\ncom/net push every ~60 s; other gTLDs every 15-30 min — the cadence term that\n\
         dominates per-TLD detection latency in Figure 1."
    );
}
