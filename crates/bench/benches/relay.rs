//! B6: tiered fan-out — relay-tree latency, per-link bytes, and chunked
//! 500k-checkpoint catch-up.
//!
//! The relay tier's claim is that encode-once survives depth: a delta
//! crosses every tier of a root → relay → … → leaf chain as the same
//! refcount-shared `RZU1` bytes, so adding a tier costs one socket hop
//! of latency and one link of bandwidth — never a re-encode. Measured
//! here over loopback TCP chains of depth 1, 2 and 3:
//!
//! * `relay/publish-to-leaf/depthN` — the Criterion-timed entry: one
//!   publish at the root until the leaf view has applied the delta and
//!   surfaced its added domains as zone-NRD candidates. `scripts/
//!   bench.sh` derives the depth-2/depth-1 and depth-3/depth-1 ratios.
//! * `relay/bytes/per_delta_per_link_depthN` — gauge: mean wire bytes
//!   per delta per link, counted by a wrapper around every inter-tier
//!   connection. Verbatim re-serve makes this flat across depths (the
//!   bench asserts the depth-3 links agree with each other).
//! * `relay/filtered/*` — gauges: total upstream-link bytes carried by
//!   a **shard-filtered** relay subscribing to 1 of 10 TLDs vs a full
//!   mirror of the same root under the same published workload. The
//!   scoped HELLO turns the claim set into a wire-level shard filter,
//!   so the subset link's share tracks its shard share (~10%).
//! * `relay/drain/handoff_ns_p50` — gauge: median latency of a planned
//!   replica drain through `RoutedZoneView::apply_endpoint_update`,
//!   measured from the generation-bumped map landing to a sentinel
//!   publish arriving through the successor replica (handoff plus
//!   claim-carrying catch-up, no resync).
//! * `relay/catchup-500k/{monolithic,chunked}-codec` — the cold
//!   catch-up comparison: decoding one monolithic 500k-delegation
//!   `RZUS` frame vs decoding the same checkpoint as a train of 1 MiB
//!   `RZUC` chunks and reassembling. The chunked form is what the
//!   transport actually ships (a monolithic 500k frame would blow the
//!   frame bound); the bench pins that chunking costs no material
//!   decode throughput. Gauges: chunk count and chunked entries/s.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use darkdns_broker::transport::{
    tcp_connect, Bytes, FrameConn, TransportClient, TransportError,
};
use darkdns_broker::{Broker, BrokerConfig, BrokerServer, TransportConfig};
use darkdns_core::broker_view::{EndpointMap, RemoteZoneView, RoutedZoneView};
use darkdns_dns::wire::{
    decode_snapshot_chunk, decode_snapshot_push, encode_snapshot_chunks, encode_snapshot_push,
};
use darkdns_dns::{DomainName, NsSet, Serial, ZoneDelta, ZoneSnapshot};
use darkdns_registry::tld::TldId;
use darkdns_sim::time::SimTime;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TLD: TldId = TldId(0);
const SHARD_SIZE: usize = 10_000;
/// Domains added by a forward delta (and removed by the backward one).
const BLOCK: usize = 100;

fn name(s: &str) -> DomainName {
    DomainName::parse(s).unwrap()
}

fn shard_snapshot(size: usize) -> ZoneSnapshot {
    let entries = (0..size)
        .map(|i| {
            (
                name(&format!("domain-{i:09}.com")),
                vec![name(&format!("ns1.provider{}.net", i % 8))],
            )
        })
        .collect();
    ZoneSnapshot::from_entries(name("com"), Serial::new(0), SimTime::ZERO, entries)
}

/// Forward/backward block publisher: odd serials add `BLOCK` fresh
/// domains (each a zone-NRD candidate at the leaf), even serials remove
/// them again, so the zone size stays bounded forever.
struct BlockPublisher {
    forward: ZoneDelta,
    backward: ZoneDelta,
    serial: u32,
}

impl BlockPublisher {
    fn new() -> Self {
        let ns = NsSet::new(vec![name("ns1.rotated.net")]);
        let mut forward = ZoneDelta::default();
        let mut backward = ZoneDelta::default();
        for i in 0..BLOCK {
            let domain = name(&format!("nrd-block-{i:04}.com"));
            forward.added.push((domain.clone(), ns.clone()));
            backward.removed.push((domain, ns.clone()));
        }
        BlockPublisher { forward, backward, serial: 0 }
    }

    fn publish_next(&mut self, broker: &Broker) -> Serial {
        self.serial += 1;
        let delta =
            if self.serial % 2 == 1 { self.forward.clone() } else { self.backward.clone() };
        broker.publish(TLD, delta, Serial::new(self.serial), SimTime::ZERO);
        Serial::new(self.serial)
    }
}

/// A [`FrameConn`] wrapper counting wire bytes received (payload plus
/// the 4-byte length prefix) — one per inter-tier link, so the bench
/// can report real per-link bandwidth instead of deriving it.
struct CountingConn<C> {
    inner: C,
    rx: Arc<AtomicU64>,
}

impl<C: FrameConn> FrameConn for CountingConn<C> {
    fn send_frame(&mut self, parts: &[&[u8]]) -> Result<(), TransportError> {
        self.inner.send_frame(parts)
    }

    fn send_frames(&mut self, frames: &[&[&[u8]]]) -> Result<(), TransportError> {
        self.inner.send_frames(frames)
    }

    fn recv_frame(&mut self) -> Result<Bytes, TransportError> {
        let frame = self.inner.recv_frame()?;
        self.rx.fetch_add(4 + frame.len() as u64, Ordering::Relaxed);
        Ok(frame)
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        self.inner.set_recv_timeout(timeout)
    }

    fn set_send_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        self.inner.set_send_timeout(timeout)
    }
}

fn server_over(broker: &Broker) -> BrokerServer {
    let config = TransportConfig {
        writer_tick: Duration::from_millis(1),
        ..TransportConfig::default()
    };
    BrokerServer::new(broker.clone(), config)
}

/// A loopback-TCP relay chain of `depth` hops: the root server, then
/// `depth - 1` relays each attached upstream to the previous tier. Every
/// inter-tier link (including the leaf's) counts its received bytes.
struct Chain {
    root: Broker,
    servers: Vec<BrokerServer>,
    addrs: Vec<SocketAddr>,
    link_rx: Vec<Arc<AtomicU64>>,
}

impl Chain {
    fn build(depth: usize) -> Chain {
        assert!(depth >= 1);
        let root = Broker::new(BrokerConfig::default());
        root.add_shard(TLD, shard_snapshot(SHARD_SIZE));
        let root_server = server_over(&root);
        let mut chain = Chain {
            root,
            addrs: vec![root_server.listen_tcp("127.0.0.1:0").expect("bind root")],
            servers: vec![root_server],
            link_rx: Vec::new(),
        };
        for _ in 1..depth {
            let upstream = *chain.addrs.last().expect("chain is never empty");
            let rx = Arc::new(AtomicU64::new(0));
            let link = Arc::clone(&rx);
            let broker = Broker::new(BrokerConfig::default());
            let server = server_over(&broker);
            let relay = server.attach_upstream(vec![TLD], move || {
                let conn = tcp_connect(upstream).map_err(TransportError::Io)?;
                Ok(Box::new(CountingConn { inner: conn, rx: Arc::clone(&link) }))
            });
            // The next tier can only subscribe once this one knows the
            // shard — wait for the bootstrap snapshot to land.
            let deadline = Instant::now() + Duration::from_secs(30);
            while relay.stats().snapshots_installed == 0 {
                assert!(Instant::now() < deadline, "relay never bootstrapped");
                std::thread::yield_now();
            }
            chain.addrs.push(server.listen_tcp("127.0.0.1:0").expect("bind relay"));
            chain.servers.push(server);
            chain.link_rx.push(rx);
        }
        chain
    }

    /// Dial a leaf view against the last tier, counting its link too.
    fn leaf(&mut self) -> RemoteZoneView<
        impl FnMut(&[(TldId, Option<Serial>)]) -> Result<TransportClient, TransportError>,
    > {
        let addr = *self.addrs.last().expect("chain is never empty");
        let rx = Arc::new(AtomicU64::new(0));
        self.link_rx.push(Arc::clone(&rx));
        let view = RemoteZoneView::connect(&[TLD], move |claims| {
            let conn = tcp_connect(addr).map_err(TransportError::Io)?;
            let mut conn = CountingConn { inner: conn, rx: Arc::clone(&rx) };
            conn.set_recv_timeout(Some(Duration::from_millis(1)))?;
            TransportClient::connect(conn, claims)
        })
        .expect("leaf connect");
        view
    }

    fn shutdown(self) {
        // Leaf-to-root, so no tier redials a vanished upstream.
        for server in self.servers.into_iter().rev() {
            server.shutdown();
        }
    }
}

/// Emit a non-timing metric through the bench JSON channel (the value
/// rides in `median_ns`; `scripts/bench.sh` lifts these ids into
/// dedicated top-level report fields).
fn emit_metric(id: &str, value: f64) {
    println!("{id:<48} value: {value:.1}");
    if let Ok(path) = std::env::var("DARKDNS_BENCH_JSON") {
        let json = format!(
            "{{\"id\":\"{id}\",\"median_ns\":{value:.1},\"elems\":null,\"elems_per_sec\":null}}\n"
        );
        if let Ok(mut file) =
            std::fs::OpenOptions::new().create(true).append(true).open(&path)
        {
            use std::io::Write as _;
            let _ = file.write_all(json.as_bytes());
        }
    }
}

fn bench_depth_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("relay");
    let mut per_link_bytes = Vec::new();
    for depth in [1usize, 2, 3] {
        let mut chain = Chain::build(depth);
        let mut leaf = chain.leaf();
        assert!(
            leaf.pump_until_serials(&[(TLD, Serial::new(0))], Duration::from_secs(30)),
            "leaf never bootstrapped at depth {depth}"
        );
        let mut publisher = BlockPublisher::new();
        let mut nrds = Vec::new();
        // Byte accounting starts after every tier has bootstrapped, so
        // the window holds only the delta stream (plus heartbeats).
        let rx_start: Vec<u64> =
            chain.link_rx.iter().map(|rx| rx.load(Ordering::Relaxed)).collect();
        let serial_start = publisher.serial;
        group.bench_with_input(
            BenchmarkId::new("publish-to-leaf", format!("depth{depth}")),
            &depth,
            |b, _| {
                b.iter(|| {
                    let target = publisher.publish_next(&chain.root);
                    assert!(
                        leaf.pump_until_serials(&[(TLD, target)], Duration::from_secs(30)),
                        "delta never reached the leaf"
                    );
                    // Surface the zone-NRD candidates this delta added
                    // (empty on removal halves) — the consumer-visible
                    // end of the publish→edge-candidate path.
                    leaf.view_mut().drain_new_domains(&mut nrds);
                    nrds.clear();
                })
            },
        );
        let deltas = u64::from(publisher.serial - serial_start);
        let link_bytes: Vec<u64> = chain
            .link_rx
            .iter()
            .zip(&rx_start)
            .map(|(rx, start)| rx.load(Ordering::Relaxed) - start)
            .collect();
        let mean = link_bytes.iter().sum::<u64>() as f64 / link_bytes.len() as f64;
        if depth == 3 {
            // The verbatim-re-serve pin, in bandwidth form: every link
            // of the chain carried (within heartbeat noise) the same
            // bytes for the same deltas.
            for bytes in &link_bytes {
                let diff = (*bytes as f64 - mean).abs();
                assert!(
                    diff / mean < 0.05,
                    "per-link bytes diverged across tiers: {link_bytes:?}"
                );
            }
        }
        assert_eq!(leaf.view().resync_count(), 0, "a clean chain never resyncs");
        per_link_bytes.push((depth, mean / deltas as f64));
        chain.shutdown();
    }
    group.finish();
    for (depth, bytes) in per_link_bytes {
        emit_metric(&format!("relay/bytes/per_delta_per_link_depth{depth}"), bytes);
    }
}

fn bench_chunked_catchup(c: &mut Criterion) {
    let entries: usize = std::env::var("DARKDNS_BENCH_CATCHUP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);
    let snap = shard_snapshot(entries);
    let monolithic = encode_snapshot_push(0, &snap);
    let chunks = encode_snapshot_chunks(0, &snap, 0, 1 << 20);
    emit_metric("relay/catchup-500k/chunks", chunks.len() as f64);
    emit_metric(
        "relay/catchup-500k/monolithic_frame_bytes",
        monolithic.len() as f64,
    );

    let mut group = c.benchmark_group("relay");
    group.throughput(Throughput::Elements(entries as u64));
    group.bench_with_input(
        BenchmarkId::new("catchup-500k", "monolithic-codec"),
        &(),
        |b, _| {
            b.iter(|| {
                let (tld, decoded) = decode_snapshot_push(&monolithic).expect("decode");
                assert_eq!(tld, 0);
                assert_eq!(decoded.len(), entries);
                decoded.serial()
            })
        },
    );
    group.bench_with_input(BenchmarkId::new("catchup-500k", "chunked-codec"), &(), |b, _| {
        b.iter(|| {
            let mut assembled = Vec::with_capacity(entries);
            for frame in &chunks {
                let chunk = decode_snapshot_chunk(frame).expect("decode chunk");
                assert_eq!(chunk.offset as usize, assembled.len());
                assembled.extend(chunk.entries);
            }
            let decoded = ZoneSnapshot::from_entries(
                name("com"),
                snap.serial(),
                snap.taken_at(),
                assembled,
            );
            assert_eq!(decoded.len(), entries);
            decoded.serial()
        })
    });
    group.finish();

    // The chunked entries/s gauge, measured once outside Criterion so
    // the report carries an absolute number next to the ratio.
    let start = Instant::now();
    let mut assembled = Vec::with_capacity(entries);
    for frame in &chunks {
        let chunk = decode_snapshot_chunk(frame).expect("decode chunk");
        assembled.extend(chunk.entries);
    }
    let snapshot = ZoneSnapshot::from_entries(name("com"), snap.serial(), snap.taken_at(), assembled);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(snapshot.len(), entries);
    emit_metric("relay/catchup-500k/chunked_entries_per_sec", entries as f64 / secs);
}

/// Per-link bandwidth of a shard-filtered relay vs a full mirror.
///
/// One root carries `FILTER_FLEET` equal-churn TLD shards; a filtered
/// relay attaches upstream claiming exactly one shard (a 10% subset)
/// while a mirror relay claims all of them. Both upstream links count
/// their received bytes across the same published workload, so the
/// subset link's share is a direct wire-level measurement of what the
/// claims-as-shard-filter saves — no timing, pure accounting.
fn bench_filtered_links(_c: &mut Criterion) {
    const FILTER_FLEET: usize = 10;
    const ROUNDS: u32 = 50;
    let tlds: Vec<TldId> = (0..FILTER_FLEET).map(|t| TldId(t as u16)).collect();
    let root = Broker::new(BrokerConfig::default());
    for &tld in &tlds {
        let snap = ZoneSnapshot::from_entries(
            name("com"),
            Serial::new(0),
            SimTime::ZERO,
            (0..1000)
                .map(|i| (name(&format!("seed-{}-{i:06}.com", tld.0)), vec![name("ns1.seed.net")]))
                .collect(),
        );
        root.add_shard(tld, snap);
    }
    let root_server = server_over(&root);
    let root_addr = root_server.listen_tcp("127.0.0.1:0").expect("bind root");

    let attach = |subset: Vec<TldId>| {
        let rx = Arc::new(AtomicU64::new(0));
        let link = Arc::clone(&rx);
        let server = server_over(&Broker::new(BrokerConfig::default()));
        let expect = subset.len() as u64;
        let relay = server.attach_upstream(subset, move || {
            let conn = tcp_connect(root_addr).map_err(TransportError::Io)?;
            Ok(Box::new(CountingConn { inner: conn, rx: Arc::clone(&link) }) as _)
        });
        let deadline = Instant::now() + Duration::from_secs(30);
        while relay.stats().snapshots_installed < expect {
            assert!(Instant::now() < deadline, "relay never bootstrapped");
            std::thread::yield_now();
        }
        (server, relay, rx)
    };
    let (mirror_server, mirror, rx_mirror) = attach(tlds.clone());
    let (subset_server, subset, rx_subset) = attach(vec![TldId(0)]);

    // Count only the delta stream: both relays have bootstrapped, so
    // from here each push crosses the mirror link once and the subset
    // link only when it belongs to the subscribed shard.
    let mirror_start = rx_mirror.load(Ordering::Relaxed);
    let subset_start = rx_subset.load(Ordering::Relaxed);
    let ns = NsSet::new(vec![name("ns1.rotated.net")]);
    for round in 1..=ROUNDS {
        for &tld in &tlds {
            let mut delta = ZoneDelta::default();
            for i in 0..BLOCK {
                delta.added.push((name(&format!("nrd-{}-{round}-{i:04}.com", tld.0)), ns.clone()));
            }
            root.publish(tld, delta, Serial::new(round), SimTime::ZERO);
        }
    }
    let pushes = u64::from(ROUNDS) * FILTER_FLEET as u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    while mirror.stats().frames_relayed < pushes
        || subset.stats().frames_relayed < u64::from(ROUNDS)
    {
        assert!(Instant::now() < deadline, "relays never absorbed the churn");
        std::thread::yield_now();
    }
    let mirror_bytes = rx_mirror.load(Ordering::Relaxed) - mirror_start;
    let subset_bytes = rx_subset.load(Ordering::Relaxed) - subset_start;
    let share = subset_bytes as f64 / mirror_bytes as f64;
    // The wire-level point of the shard filter: the subset link's bytes
    // track its shard share (10%), with slack for heartbeat noise.
    assert!(share < 0.2, "a 10% shard subset carried {share:.2} of the mirror link");
    emit_metric("relay/filtered/full_mirror_link_bytes", mirror_bytes as f64);
    emit_metric("relay/filtered/subset10_link_bytes", subset_bytes as f64);
    emit_metric("relay/filtered/subset_share", share);
    subset_server.shutdown();
    mirror_server.shutdown();
    root_server.shutdown();
}

/// Median planned-drain handoff latency through a routed view.
///
/// Two loopback-TCP replicas serve one root; each round drains the
/// replica the route is connected to with a generation-bumped
/// [`EndpointMap`] and measures how long until a sentinel publish lands
/// through the successor — the full claim-carrying handoff, which by
/// the drain contract involves no resync and no re-bootstrap. The next
/// round adds the drained replica back and drains the other.
fn bench_drain_latency(_c: &mut Criterion) {
    const SAMPLES: usize = 21;
    let root = Broker::new(BrokerConfig::default());
    root.add_shard(TLD, shard_snapshot(1000));
    let servers = [server_over(&root), server_over(&root)];
    let addrs: Vec<SocketAddr> =
        servers.iter().map(|s| s.listen_tcp("127.0.0.1:0").expect("bind replica")).collect();
    let mut map: EndpointMap<SocketAddr> = EndpointMap::new();
    map.add_route(vec![TLD], addrs.clone());
    let mut view = RoutedZoneView::connect(map.clone(), |addr: &SocketAddr| {
        let mut conn = tcp_connect(*addr).map_err(TransportError::Io)?;
        conn.set_recv_timeout(Some(Duration::from_millis(1)))?;
        Ok(Box::new(conn) as _)
    })
    .expect("routed connect");
    assert!(view.pump_until_serials(&[(TLD, Serial::new(0))], Duration::from_secs(30)));

    let mut serial = 0u32;
    let mut samples_ns: Vec<u64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        // The route reconnects to the drain's survivor (replica 0) and
        // an added replica never disturbs the live connection, so the
        // connected replica is index 0 every round: drain it.
        let drained = map.remove_replica(0, 0);
        let start = Instant::now();
        assert!(view.apply_endpoint_update(map.clone()), "generation must advance");
        serial += 1;
        let mut delta = ZoneDelta::default();
        delta.added.push((name(&format!("drain-sentinel-{serial:04}.com")), NsSet::new(vec![name("ns1.rotated.net")])));
        root.publish(TLD, delta, Serial::new(serial), SimTime::ZERO);
        assert!(
            view.pump_until_serials(&[(TLD, Serial::new(serial))], Duration::from_secs(30)),
            "sentinel never arrived through the successor"
        );
        samples_ns.push(start.elapsed().as_nanos() as u64);
        map.add_replica(0, drained);
        assert!(view.apply_endpoint_update(map.clone()));
    }
    assert_eq!(view.drains_completed(), SAMPLES as u64, "every round was a clean drain");
    assert_eq!(view.view().resync_count(), 0, "a planned drain never resyncs");
    samples_ns.sort_unstable();
    emit_metric("relay/drain/handoff_ns_p50", samples_ns[samples_ns.len() / 2] as f64);
    for server in servers {
        server.shutdown();
    }
}

criterion_group!(
    benches,
    bench_depth_latency,
    bench_filtered_links,
    bench_drain_latency,
    bench_chunked_catchup
);

fn main() {
    benches();
}
