//! B5: edge-tier query throughput under full publish cadence.
//!
//! The edge's claim is that thin-client lookups are decoupled from the
//! publish path: an [`EdgeFeed`] (an ordinary level-2 broker consumer)
//! folds every push into immutable index epochs off to the side, and
//! the query path resolves against the current epoch without taking a
//! single shard publish lock (debug builds assert exactly that on every
//! `EdgeIndex::load` via `shard_locks_held_by_current_thread`; the
//! concurrency test in `darkdns_edge::index` keeps the assertion hot —
//! this release-mode bench measures what the assertion proves).
//!
//! Two things are measured, both **while a 4-shard fleet publishes NS
//! flips at full RZU cadence** the whole time:
//!
//! * `edge/lookup-batch/64names` — one thin client's round trip for a
//!   64-query batch (encode → socket → epoch resolve → socket →
//!   decode), the Criterion-timed entry.
//! * `edge/qps/*` — the ramp driver: client fleets of 1, 2, 4 and 8
//!   connections hammer batched lookups for a fixed window each while a
//!   sampler reads the server's answered-names counter every 25 ms.
//!   Every sample is one fleet-wide queries/s observation; the p50/p99
//!   over the whole ramp's distribution land in `BENCH_pr7.json` as
//!   top-level `queries_per_sec_p50` / `queries_per_sec_p99` (p50 ≈
//!   mid-ramp steady state, p99 ≈ peak throughput at full fan-in).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use darkdns_broker::{Broker, BrokerConfig, OverflowPolicy, RetentionConfig};
use darkdns_edge::{EdgeClient, EdgeConfig, EdgeFeed, EdgeIndex, EdgeIndexConfig, EdgeServer};
use darkdns_dns::diff::NsChange;
use darkdns_dns::wire::{LookupQuery, LOOKUP_ANY_TLD};
use darkdns_dns::{DomainName, NsSet, Serial, ZoneDelta, ZoneSnapshot};
use darkdns_registry::tld::TldId;
use darkdns_sim::time::SimTime;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const SHARD_SIZE: usize = 10_000;
const CHURN: usize = 200;
const BATCH: usize = 64;
const RAMP: [usize; 4] = [1, 2, 4, 8];

fn name(s: &str) -> DomainName {
    DomainName::parse(s).unwrap()
}

fn shard_snapshot(origin: &str, size: usize) -> ZoneSnapshot {
    let providers: Vec<NsSet> = (0..8)
        .map(|p| {
            NsSet::new(vec![
                name(&format!("ns1.provider{p}.net")),
                name(&format!("ns2.provider{p}.net")),
            ])
        })
        .collect();
    let entries = (0..size)
        .map(|i| {
            (
                name(&format!("domain-{i:09}.{origin}")),
                providers[i % providers.len()].as_slice().to_vec(),
            )
        })
        .collect();
    ZoneSnapshot::from_entries(name(origin), Serial::new(0), SimTime::ZERO, entries)
}

/// Alternating forward/backward NS flips over `churn` domains: full
/// cadence publishing that keeps the shard size constant forever.
struct FlipPublisher {
    forward: ZoneDelta,
    backward: ZoneDelta,
    serial: AtomicU32,
}

impl FlipPublisher {
    fn new(snap: &ZoneSnapshot, churn: usize) -> Self {
        let rotated = NsSet::new(vec![name("ns1.rotated.net"), name("ns2.rotated.net")]);
        let mut forward = ZoneDelta::default();
        let mut backward = ZoneDelta::default();
        let step = (snap.len() / churn).max(1);
        for i in (0..snap.len()).step_by(step).take(churn) {
            let domain = snap.domain_column()[i];
            let old = snap.ns_column()[i].clone();
            forward.changed.push(NsChange { domain, old_ns: old.clone(), new_ns: rotated.clone() });
            backward.changed.push(NsChange { domain, old_ns: rotated.clone(), new_ns: old });
        }
        FlipPublisher { forward, backward, serial: AtomicU32::new(0) }
    }

    fn next(&self) -> (ZoneDelta, Serial) {
        let s = self.serial.fetch_add(1, Ordering::Relaxed) + 1;
        let delta = if s % 2 == 1 { self.forward.clone() } else { self.backward.clone() };
        (delta, Serial::new(s))
    }
}

/// A thin client's standing batch: mostly hot names spread over the
/// shards, every eighth query an ANY-TLD scan, a few guaranteed misses.
fn lookup_batch(salt: usize) -> Vec<LookupQuery> {
    (0..BATCH)
        .map(|i| {
            let shard = (salt + i) % SHARDS;
            if i % 13 == 12 {
                LookupQuery {
                    tld: shard as u16,
                    name: name(&format!("never-registered-{salt}-{i}.example")),
                }
            } else {
                let domain = (salt * 31 + i * 97) % SHARD_SIZE;
                LookupQuery {
                    tld: if i % 8 == 7 { LOOKUP_ANY_TLD } else { shard as u16 },
                    name: name(&format!("domain-{domain:09}.tld{shard}")),
                }
            }
        })
        .collect()
}

/// Emit a non-timing metric through the bench JSON channel (the value
/// rides in `median_ns`; `scripts/bench.sh` lifts these ids into
/// dedicated top-level report fields).
fn emit_metric(id: &str, value: f64) {
    println!("{id:<48} value: {value:.1}");
    if let Ok(path) = std::env::var("DARKDNS_BENCH_JSON") {
        let json = format!(
            "{{\"id\":\"{id}\",\"median_ns\":{value:.1},\"elems\":null,\"elems_per_sec\":null}}\n"
        );
        if let Ok(mut file) =
            std::fs::OpenOptions::new().create(true).append(true).open(&path)
        {
            use std::io::Write as _;
            let _ = file.write_all(json.as_bytes());
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn bench_edge_qps(c: &mut Criterion) {
    // The serving stack: broker → edge feed → index → loopback server.
    let broker = Broker::new(BrokerConfig {
        retention: RetentionConfig::new(64, 16),
        subscriber_capacity: 1 << 16,
        overflow: OverflowPolicy::Lag,
        lag_slo: None,
    });
    let tld_ids: Vec<TldId> = (0..SHARDS).map(|t| TldId(t as u16)).collect();
    let publishers: Vec<FlipPublisher> = tld_ids
        .iter()
        .map(|&tld| {
            let snap = shard_snapshot(&format!("tld{}", tld.0), SHARD_SIZE);
            let publisher = FlipPublisher::new(&snap, CHURN);
            broker.add_shard(tld, snap);
            publisher
        })
        .collect();

    let index = Arc::new(EdgeIndex::new(EdgeIndexConfig::default()));
    let mut edge_feed = EdgeFeed::subscribe(&broker, &tld_ids, Arc::clone(&index));
    let server = EdgeServer::new(
        Arc::clone(&index),
        EdgeConfig { writer_tick: Duration::from_millis(5), ..EdgeConfig::default() },
    );
    let addr = server.listen_tcp("127.0.0.1:0").expect("bind loopback");

    // Full RZU cadence for the whole measurement: one publisher thread
    // flips every shard then yields 2 ms (~2k pushes/s fleet-wide), and
    // the feed thread folds each push into a fresh index epoch.
    let stop = Arc::new(AtomicBool::new(false));
    let publish_thread = {
        let broker = broker.clone();
        let stop = Arc::clone(&stop);
        let tld_ids = tld_ids.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for (&tld, publisher) in tld_ids.iter().zip(&publishers) {
                    let (delta, serial) = publisher.next();
                    broker.publish(tld, delta, serial, SimTime::ZERO);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };
    let feed_thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if edge_feed.pump() == 0 {
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
        })
    };
    // The feed must have bootstrapped every shard before clients query.
    let bootstrap_deadline = Instant::now() + Duration::from_secs(30);
    while index.load().tlds().len() < SHARDS {
        assert!(Instant::now() < bootstrap_deadline, "edge feed never bootstrapped");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Criterion-timed entry: one client, one 64-name batch round trip,
    // publishers flipping underneath the whole time.
    let mut group = c.benchmark_group("edge");
    let queries = lookup_batch(0);
    let mut client = EdgeClient::connect_tcp(addr).expect("dial edge");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_with_input(
        BenchmarkId::new("lookup-batch", format!("{BATCH}names")),
        &(),
        |b, _| {
            b.iter(|| {
                let response = client.lookup(&queries).expect("edge lookup");
                assert_eq!(response.answers.len(), BATCH);
                response.epoch
            })
        },
    );
    group.finish();
    drop(client);

    // The qps ramp: grow the client fleet, sample fleet-wide throughput
    // off the server's answered-names counter every 25 ms.
    let window = Duration::from_millis(
        std::env::var("DARKDNS_BENCH_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(1500),
    );
    let mut samples: Vec<f64> = Vec::new();
    for clients in RAMP {
        let step_stop = Arc::new(AtomicBool::new(false));
        let fleet: Vec<_> = (0..clients)
            .map(|cid| {
                let step_stop = Arc::clone(&step_stop);
                std::thread::spawn(move || {
                    let mut client = EdgeClient::connect_tcp(addr).expect("dial edge");
                    let queries = lookup_batch(cid + 1);
                    let mut batches = 0u64;
                    while !step_stop.load(Ordering::Relaxed) {
                        let response = client.lookup(&queries).expect("edge lookup");
                        assert_eq!(response.answers.len(), BATCH);
                        batches += 1;
                    }
                    batches
                })
            })
            .collect();

        let step_start = Instant::now();
        let mut step_samples: Vec<f64> = Vec::new();
        let mut last_names = server.stats().lookup_names;
        let mut last_at = Instant::now();
        while step_start.elapsed() < window {
            std::thread::sleep(Duration::from_millis(25));
            let now = Instant::now();
            let names = server.stats().lookup_names;
            let dt = now.duration_since(last_at).as_secs_f64();
            if dt > 0.0 {
                step_samples.push((names - last_names) as f64 / dt);
            }
            last_names = names;
            last_at = now;
        }
        step_stop.store(true, Ordering::Relaxed);
        let batches: u64 = fleet.into_iter().map(|h| h.join().expect("client thread")).sum();
        assert!(batches > 0, "ramp step served no batches");

        let mut sorted = step_samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        println!(
            "edge/qps ramp {clients:>2} clients: {:>10.0} qps p50 over {} samples, epoch {}",
            percentile(&sorted, 0.50),
            sorted.len(),
            index.epoch(),
        );
        samples.extend(step_samples);
    }

    stop.store(true, Ordering::Relaxed);
    publish_thread.join().expect("publisher thread");
    feed_thread.join().expect("feed thread");

    let stats = server.stats();
    assert_eq!(stats.bad_frames, 0, "thin clients must speak the protocol cleanly");
    // The fleet really published underneath the measurement: the index
    // advanced far past its bootstrap epochs.
    assert!(index.epoch() > SHARDS as u64 + RAMP.len() as u64, "publish cadence stalled");

    samples.sort_by(|a, b| a.total_cmp(b));
    emit_metric("edge/qps/queries_per_sec_p50", percentile(&samples, 0.50));
    emit_metric("edge/qps/queries_per_sec_p99", percentile(&samples, 0.99));
    server.shutdown();
}

criterion_group!(benches, bench_edge_qps);

fn main() {
    // CI smoke hook: run the qps driver alone (window scaled down via
    // DARKDNS_BENCH_MS) without paying for the rest of the suite.
    if std::env::var("DARKDNS_BENCH_ONLY").as_deref() == Ok("edge-qps") {
        let mut criterion = Criterion::default();
        bench_edge_qps(&mut criterion);
        return;
    }
    benches();
}
