//! B2: RFC 1035 wire-codec throughput.
//!
//! Encodes and decodes the message shapes the measurement substrate
//! exchanges: a minimal NS query, an NS referral response (compression
//! heavy), and a fat response exercising every RDATA type.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use darkdns_dns::record::SoaData;
use darkdns_dns::wire::{Header, Message, Rcode};
use darkdns_dns::{DomainName, RData, RecordType, ResourceRecord};

fn name(s: &str) -> DomainName {
    DomainName::parse(s).unwrap()
}

fn query() -> Message {
    Message::query(0x4242, name("suspicious-domain-12345.com"), RecordType::Ns)
}

fn referral() -> Message {
    let mut msg = query();
    msg.header = Header::response_to(&msg.header, Rcode::NoError);
    for i in 0..4 {
        msg.authorities.push(ResourceRecord::new(
            name("suspicious-domain-12345.com"),
            86_400,
            RData::Ns(name(&format!("ns{i}.cloudflare.com"))),
        ));
    }
    msg
}

fn fat_response() -> Message {
    let mut msg = referral();
    msg.answers = vec![
        ResourceRecord::new(name("suspicious-domain-12345.com"), 60, RData::A("192.0.2.1".parse().unwrap())),
        ResourceRecord::new(name("suspicious-domain-12345.com"), 60, RData::Aaaa("2001:db8::1".parse().unwrap())),
        ResourceRecord::new(name("suspicious-domain-12345.com"), 300, RData::Txt(b"v=spf1 -all".to_vec())),
        ResourceRecord::new(
            name("suspicious-domain-12345.com"),
            300,
            RData::Mx { preference: 10, exchange: name("mail.suspicious-domain-12345.com") },
        ),
    ];
    msg.additionals.push(ResourceRecord::new(
        name("com"),
        900,
        RData::Soa(SoaData {
            mname: name("a.gtld-servers.net"),
            rname: name("nstld.verisign-grs.com"),
            serial: 1_700_000_000,
            refresh: 1_800,
            retry: 900,
            expire: 604_800,
            minimum: 86_400,
        }),
    ));
    msg
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    for (label, msg) in [("query", query()), ("referral", referral()), ("fat", fat_response())] {
        let bytes = msg.encode();
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_function(format!("encode/{label}"), |b| b.iter(|| msg.encode()));
        group.bench_function(format!("decode/{label}"), |b| {
            b.iter(|| Message::decode(&bytes).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
