//! B1: zone-diff engine race.
//!
//! Diffs snapshot pairs of increasing size (10k / 100k / 500k delegations,
//! ~3% churn — a day of `.com`-like churn at reduced scale) across the
//! three engines. The expected shape: sorted-merge wins on whole-snapshot
//! diffs; the incremental journal answers the same question in time
//! proportional to the churn, independent of the table size — which is
//! the computational argument for RZU-style feeds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use darkdns_bench::synth::snapshot_pair;
use darkdns_dns::diff::{
    HashPartitionedDiff, JournalEvent, SortedMergeDiff, ZoneDiffEngine, ZoneJournal,
};
use darkdns_dns::Serial;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("zone_diff");
    for &size in &[10_000usize, 100_000, 500_000] {
        let (old, new) = snapshot_pair(size, 0.03, 7);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::new("sorted-merge", size), &size, |b, _| {
            b.iter(|| SortedMergeDiff.diff(&old, &new))
        });
        let hashed = HashPartitionedDiff::new(16);
        group.bench_with_input(BenchmarkId::new("hash-partitioned", size), &size, |b, _| {
            b.iter(|| hashed.diff(&old, &new))
        });
        // The journal only replays the churn events.
        let delta = SortedMergeDiff.diff(&old, &new);
        let mut journal = ZoneJournal::new();
        let mut serial = Serial::new(10);
        for (d, ns) in delta.added.iter() {
            serial = serial.next();
            journal.record(serial, JournalEvent::Added { domain: d.clone(), ns: ns.clone() });
        }
        for (d, ns) in delta.removed.iter() {
            serial = serial.next();
            journal.record(serial, JournalEvent::Removed { domain: d.clone(), prev_ns: ns.clone() });
        }
        for chg in delta.changed.iter() {
            serial = serial.next();
            journal.record(
                serial,
                JournalEvent::NsChanged {
                    domain: chg.domain.clone(),
                    prev_ns: chg.old_ns.clone(),
                    ns: chg.new_ns.clone(),
                },
            );
        }
        let head = journal.head().unwrap();
        group.bench_with_input(BenchmarkId::new("incremental-journal", size), &size, |b, _| {
            b.iter(|| journal.delta_between(Serial::new(10), head))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
