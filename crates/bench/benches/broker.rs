//! B4: RZU distribution broker — fan-out, cold catch-up, per-shard
//! concurrent publishing, and socket delivery.
//!
//! Four claims are measured:
//!
//! * **Fan-out amortises serialization.** Pushing one delta to 1k
//!   subscribers costs one wire encode plus 1k refcount-shared queue
//!   pushes (`broker/fanout-shared/*`). The baseline
//!   (`broker/fanout-encode-per-sub/*`) re-encodes the frame once per
//!   subscriber, which is what a naive per-connection serializer would
//!   do. The shared path must win by ≥5×.
//! * **Checkpoints beat full-journal replay for cold catch-up.** A
//!   subscriber bootstrapping a 500k-delegation shard from the latest
//!   checkpoint decodes and applies only the post-checkpoint deltas
//!   (`broker/catchup-checkpoint/500000`); replaying the full sealed
//!   history from the shard's starting snapshot
//!   (`broker/catchup-full-replay/500000`) pays one O(n) apply per
//!   retained delta.
//! * **Per-shard locks unlock concurrent publishing.** M publisher
//!   threads pushing M disjoint TLDs
//!   (`broker/concurrent-publish/per-shard/*`) never share a mutex; the
//!   baseline (`broker/concurrent-publish/global-lock/*`) serialises the
//!   same workload through one outer lock, which is exactly what the
//!   pre-refactor `Mutex<ShardedJournal>` broker did. Per-shard must be
//!   no slower single-threaded and scale with shards when cores allow
//!   (on a 1-core container the two paths converge; the win is the
//!   absence of cross-shard serialisation, pinned by the contention
//!   counters in the broker's tests).
//! * **The reactor serves socket fan-out from one thread.** One publish
//!   reaching 8 loopback-TCP subscribers end-to-end (publish → shard
//!   fan-out → reactor queue→ring transfer → socket → client decode,
//!   `broker/tcp-fanout/notify-wakeup/8subs` — the id survives from the
//!   writer-thread era for cross-PR comparability; the wakeup is now
//!   the reactor's eventfd). And the scale case the thread-per-
//!   subscriber transport could never run: the same end-to-end round
//!   trip against **10,000** loopback subscribers
//!   (`broker/tcp-fanout-10k/*`), all served by a single reactor
//!   thread. The client fleet lives in a child process (two fds per
//!   loopback connection would bust the container's `RLIMIT_NOFILE`
//!   hard cap in one process); alongside the latency the bench records
//!   `broker/tcp-fanout-10k/threads` (must stay 1, vs ~2×N before) and
//!   `broker/tcp-fanout-10k/bytes_per_conn` (server-side RSS growth per
//!   accepted subscriber).
//! * **The pipeline substrate is end-to-end cheap.** Publish→zone-NRD-
//!   candidate-emitted latency through the `ZoneMembership` consumer
//!   surface, in-process (`broker/detect-latency/inproc`) vs over
//!   loopback TCP (`broker/detect-latency/tcp`): the derived ratio is
//!   what the socket costs the detection pipeline per push.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use darkdns_broker::transport::{
    tcp_connect, ClientEvent, FrameConn, LengthPrefixed, TransportClient,
};
use darkdns_broker::{
    Broker, BrokerConfig, BrokerMessage, BrokerServer, OverflowPolicy, RetentionConfig,
    TransportConfig,
};
use darkdns_core::broker_view::{BrokerZoneView, RemoteZoneView};
use darkdns_dns::wire::{encode_delta_push, encode_hello, TldClaim};
use darkdns_dns::{decode_delta_push, DomainName, NsSet, Serial, ZoneDelta, ZoneSnapshot};
use darkdns_dns::diff::NsChange;
use darkdns_registry::tld::TldId;
use darkdns_sim::time::SimTime;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn name(s: &str) -> DomainName {
    DomainName::parse(s).unwrap()
}

/// A shard snapshot of `size` delegations spread over `providers` NS sets.
fn shard_snapshot(origin: &str, size: usize) -> ZoneSnapshot {
    let providers: Vec<NsSet> = (0..8)
        .map(|p| {
            NsSet::new(vec![
                name(&format!("ns1.provider{p}.net")),
                name(&format!("ns2.provider{p}.net")),
            ])
        })
        .collect();
    let entries = (0..size)
        .map(|i| {
            (
                name(&format!("domain-{i:09}.{origin}")),
                providers[i % providers.len()].as_slice().to_vec(),
            )
        })
        .collect();
    ZoneSnapshot::from_entries(name(origin), Serial::new(0), SimTime::ZERO, entries)
}

/// An NS-flip delta over `churn` domains of `snap`: forward rotates the
/// delegations onto a fresh host, backward restores them. Publishing
/// forward then backward keeps the shard size constant forever.
fn flip_deltas(snap: &ZoneSnapshot, churn: usize) -> (ZoneDelta, ZoneDelta) {
    let rotated = NsSet::new(vec![name("ns1.rotated.net"), name("ns2.rotated.net")]);
    let mut forward = ZoneDelta::default();
    let mut backward = ZoneDelta::default();
    let step = (snap.len() / churn).max(1);
    for i in (0..snap.len()).step_by(step).take(churn) {
        let domain = snap.domain_column()[i];
        let old = snap.ns_column()[i].clone();
        forward.changed.push(NsChange {
            domain,
            old_ns: old.clone(),
            new_ns: rotated.clone(),
        });
        backward.changed.push(NsChange { domain, old_ns: rotated.clone(), new_ns: old });
    }
    (forward, backward)
}

/// Alternate forward/backward flips with ever-increasing serials.
/// `Sync` (atomic serial) so per-shard publishers can run on scoped
/// threads; each shard still has exactly one publisher at a time.
struct FlipPublisher {
    forward: ZoneDelta,
    backward: ZoneDelta,
    serial: AtomicU32,
}

impl FlipPublisher {
    fn new(snap: &ZoneSnapshot, churn: usize) -> Self {
        let (forward, backward) = flip_deltas(snap, churn);
        FlipPublisher { forward, backward, serial: AtomicU32::new(0) }
    }

    fn next(&self) -> (ZoneDelta, Serial) {
        let s = self.serial.fetch_add(1, Ordering::Relaxed) + 1;
        let delta = if s % 2 == 1 { self.forward.clone() } else { self.backward.clone() };
        (delta, Serial::new(s))
    }
}

fn fanout_broker(tlds: usize, subs_per_tld: usize, shard_size: usize) -> (Broker, Vec<TldId>) {
    let broker = Broker::new(BrokerConfig {
        retention: RetentionConfig::new(64, 16),
        // Small bound + Lag: queues saturate and stay flat, so steady-
        // state publish cost is measured, not queue growth.
        subscriber_capacity: 8,
        overflow: OverflowPolicy::Lag,
        lag_slo: None,
    });
    let mut ids = Vec::with_capacity(tlds);
    for t in 0..tlds {
        let tld = TldId(t as u16);
        broker.add_shard(tld, shard_snapshot(&format!("tld{t}"), shard_size));
        ids.push(tld);
    }
    let mut handles = Vec::with_capacity(tlds * subs_per_tld);
    for &tld in &ids {
        for _ in 0..subs_per_tld {
            handles.push(broker.subscribe(&[tld], Some(Serial::new(0))));
        }
    }
    // Keep the subscriptions alive for the broker's lifetime.
    std::mem::forget(handles);
    (broker, ids)
}

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker");
    const CHURN: usize = 1_000;

    // 1 TLD × 1000 subscribers: one publish = one encode + 1000 shares.
    let (broker, ids) = fanout_broker(1, 1_000, 10_000);
    let publisher = FlipPublisher::new(&broker.head(ids[0]).unwrap(), CHURN);
    group.throughput(Throughput::Elements(1_000));
    group.bench_with_input(BenchmarkId::new("fanout-shared", "1tld-1000subs"), &(), |b, _| {
        b.iter(|| {
            let (delta, serial) = publisher.next();
            broker.publish(ids[0], delta, serial, SimTime::ZERO)
        })
    });

    // Baseline: what fan-out costs if every subscriber gets its own
    // encode of the same delta (no shared frames).
    let (forward, _) = flip_deltas(&broker.head(ids[0]).unwrap(), CHURN);
    group.bench_with_input(
        BenchmarkId::new("fanout-encode-per-sub", "1tld-1000subs"),
        &(),
        |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for _ in 0..1_000 {
                    total += encode_delta_push(
                        &name("tld0"),
                        Serial::new(0),
                        Serial::new(1),
                        SimTime::ZERO,
                        &forward,
                    )
                    .len();
                }
                total
            })
        },
    );

    // 10 TLDs × 100 subscribers: the sharded layout at the same total
    // subscriber count; one iteration publishes one push per shard.
    let (broker10, ids10) = fanout_broker(10, 100, 10_000);
    let publishers: Vec<FlipPublisher> = ids10
        .iter()
        .map(|&tld| FlipPublisher::new(&broker10.head(tld).unwrap(), CHURN / 10))
        .collect();
    group.throughput(Throughput::Elements(1_000));
    group.bench_with_input(BenchmarkId::new("fanout-shared", "10tld-100subs"), &(), |b, _| {
        b.iter(|| {
            for (&tld, publisher) in ids10.iter().zip(&publishers) {
                let (delta, serial) = publisher.next();
                broker10.publish(tld, delta, serial, SimTime::ZERO);
            }
        })
    });
    group.finish();
}

/// M publisher threads, M disjoint shards, K pushes each per iteration.
/// `global_lock` serialises every publish through one outer mutex — the
/// shape of the pre-refactor broker, measured in-run as the baseline.
fn run_concurrent_publish(
    broker: &Broker,
    ids: &[TldId],
    publishers: &[FlipPublisher],
    pushes_per_shard: u32,
    global_lock: Option<&Mutex<()>>,
) {
    std::thread::scope(|scope| {
        for (&tld, publisher) in ids.iter().zip(publishers) {
            scope.spawn(move || {
                for _ in 0..pushes_per_shard {
                    let (delta, serial) = publisher.next();
                    match global_lock {
                        Some(lock) => {
                            let _held = lock.lock();
                            broker.publish(tld, delta, serial, SimTime::ZERO);
                        }
                        None => {
                            broker.publish(tld, delta, serial, SimTime::ZERO);
                        }
                    }
                }
            });
        }
    });
}

fn bench_concurrent_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker");
    const CHURN: usize = 250;
    const PUSHES_PER_SHARD: u32 = 8;
    for shards in [4usize, 8] {
        let (broker, ids) = fanout_broker(shards, 50, 10_000);
        let publishers: Vec<FlipPublisher> = ids
            .iter()
            .map(|&tld| FlipPublisher::new(&broker.head(tld).unwrap(), CHURN))
            .collect();
        let label = format!("{shards}shards-{shards}threads");
        group.throughput(Throughput::Elements(shards as u64 * u64::from(PUSHES_PER_SHARD)));
        group.bench_with_input(
            BenchmarkId::new("concurrent-publish/per-shard", &label),
            &(),
            |b, _| {
                b.iter(|| run_concurrent_publish(&broker, &ids, &publishers, PUSHES_PER_SHARD, None))
            },
        );
        let global = Mutex::new(());
        group.bench_with_input(
            BenchmarkId::new("concurrent-publish/global-lock", &label),
            &(),
            |b, _| {
                b.iter(|| {
                    run_concurrent_publish(&broker, &ids, &publishers, PUSHES_PER_SHARD, Some(&global))
                })
            },
        );
        // The acceptance pin holds under the bench workload too: one
        // publisher per shard on the per-shard path never contends.
        // (Contention from the global-lock runs shows up on the outer
        // mutex, not the shard locks.)
        for stats in broker.all_shard_stats() {
            assert_eq!(stats.lock_contentions, 0, "unexpected shard contention in bench");
        }
    }
    group.finish();
}

/// Loopback-TCP fan-out: one publish must reach all 8 socket
/// subscribers end-to-end. The benchmark id keeps its writer-thread-era
/// name (`notify-wakeup`) so the floor in BENCH_pr5.json stays directly
/// comparable; the wakeup today is the subscriber queue's waker
/// callback poking the reactor's eventfd. One iteration = publish one
/// delta + wait until every subscriber has decoded it off its socket.
fn bench_tcp_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker");
    const SUBS: usize = 8;
    const CHURN: usize = 200;
    // Stall bound for any single wait (handshake or one fan-out
    // round-trip) — deliberately per-wait, not a shared timestamp, so a
    // large DARKDNS_BENCH_MS sampling budget cannot expire it.
    const STALL: Duration = Duration::from_secs(60);
    {
        let label = "tcp-fanout/notify-wakeup";
        let broker = Broker::new(BrokerConfig {
            retention: RetentionConfig::new(64, 16),
            subscriber_capacity: 4096,
            overflow: OverflowPolicy::Lag,
            lag_slo: None,
        });
        let tld = TldId(0);
        broker.add_shard(tld, shard_snapshot("com", 10_000));
        let server = BrokerServer::new(
            broker.clone(),
            TransportConfig {
                writer_tick: Duration::from_millis(20),
                ..TransportConfig::default()
            },
        );
        let addr = server.listen_tcp("127.0.0.1:0").expect("bind loopback");

        // Subscriber threads: decode every delta envelope off the
        // socket and publish the reached serial.
        let received: Arc<Vec<AtomicU32>> =
            Arc::new((0..SUBS).map(|_| AtomicU32::new(0)).collect());
        let stop = Arc::new(AtomicBool::new(false));
        let clients: Vec<_> = (0..SUBS)
            .map(|i| {
                let received = Arc::clone(&received);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let stream = std::net::TcpStream::connect(addr).expect("dial");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut conn = LengthPrefixed::new(stream);
                    conn.set_recv_timeout(Some(Duration::from_millis(20))).expect("timeout");
                    let mut client = TransportClient::connect(conn, &[(tld, Some(Serial::new(0)))])
                        .expect("hello");
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        match client.next_event() {
                            ClientEvent::Delta { push, .. } => {
                                received[i].store(push.to_serial.get(), Ordering::Release);
                            }
                            ClientEvent::Snapshot { .. } | ClientEvent::Idle => {}
                            ClientEvent::Evicted | ClientEvent::Closed(_) => return,
                        }
                    }
                })
            })
            .collect();
        let connect_deadline = Instant::now() + STALL;
        while server.stats().handshakes < SUBS as u64 {
            assert!(Instant::now() < connect_deadline, "tcp subscribers never connected");
            std::thread::yield_now();
        }

        let publisher = FlipPublisher::new(&broker.head(tld).unwrap(), CHURN);
        group.throughput(Throughput::Elements(SUBS as u64));
        group.bench_with_input(BenchmarkId::new(label, format!("{SUBS}subs")), &(), |b, _| {
            b.iter(|| {
                let (delta, serial) = publisher.next();
                broker.publish(tld, delta, serial, SimTime::ZERO);
                let target = serial.get();
                let round_deadline = Instant::now() + STALL;
                for slot in received.iter() {
                    while slot.load(Ordering::Acquire) < target {
                        assert!(Instant::now() < round_deadline, "a tcp subscriber stalled");
                        std::thread::yield_now();
                    }
                }
            })
        });
        stop.store(true, Ordering::Relaxed);
        server.shutdown();
        for client in clients {
            let _ = client.join();
        }
    }
    group.finish();
}

/// End-to-end detection latency: publish a delta adding `BATCH` fresh
/// domains and time until the pipeline's zone view has applied it and
/// emitted the domains as zone-NRD candidates (the Table-1 "Zone NRD"
/// population, drained via `drain_new_domains`), then remove them again
/// so the shard size stays constant. `inproc` consumes through a
/// `BrokerZoneView` (publish → shard fan-out → queue → pump);
/// `tcp` consumes through a `RemoteZoneView` behind a real
/// `BrokerServer` on loopback (publish → writer thread → socket →
/// decode → apply). One iteration is one add-visible-remove-confirmed
/// cycle, identical for both backends, so the derived ratio is the
/// socket path's end-to-end overhead.
fn bench_detect_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker");
    const BATCH: usize = 100;
    const STALL: Duration = Duration::from_secs(60);
    let tld = TldId(0);

    let fresh_deltas = |serial: u32| {
        let ns = NsSet::new(vec![name("ns1.provider0.net")]);
        let mut add = ZoneDelta::default();
        let mut remove = ZoneDelta::default();
        for i in 0..BATCH {
            let domain = name(&format!("fresh-{serial:08}-{i:03}.com"));
            add.added.push((domain, ns.clone()));
            remove.removed.push((domain, ns.clone()));
        }
        (add, remove)
    };

    // --- in-process consumer ----------------------------------------
    {
        let broker = Broker::new(BrokerConfig::default());
        broker.add_shard(tld, shard_snapshot("com", 10_000));
        let mut view = BrokerZoneView::subscribe(&broker, &[tld]);
        view.pump(); // bootstrap
        let mut serial = 0u32;
        let mut drained = Vec::with_capacity(BATCH);
        group.throughput(Throughput::Elements(BATCH as u64));
        group.bench_with_input(BenchmarkId::new("detect-latency", "inproc"), &(), |b, _| {
            b.iter(|| {
                let (add, remove) = fresh_deltas(serial);
                broker.publish(tld, add, Serial::new(serial + 1), SimTime::ZERO);
                view.pump();
                drained.clear();
                view.drain_new_domains(&mut drained);
                assert_eq!(drained.len(), BATCH, "zone NRDs must surface in one pump");
                broker.publish(tld, remove, Serial::new(serial + 2), SimTime::ZERO);
                view.pump();
                assert_eq!(view.serial(tld), Some(Serial::new(serial + 2)));
                serial += 2;
            })
        });
    }

    // --- socket consumer --------------------------------------------
    {
        let broker = Broker::new(BrokerConfig::default());
        broker.add_shard(tld, shard_snapshot("com", 10_000));
        let server = BrokerServer::new(
            broker.clone(),
            TransportConfig {
                writer_tick: Duration::from_millis(20),
                ..TransportConfig::default()
            },
        );
        let addr = server.listen_tcp("127.0.0.1:0").expect("bind loopback");
        let mut view = RemoteZoneView::connect(&[tld], move |claims| {
            let mut conn = tcp_connect(addr)?;
            conn.set_recv_timeout(Some(Duration::from_millis(1)))?;
            TransportClient::connect(conn, claims)
        })
        .expect("dial");
        assert!(view.pump_until_serials(&[(tld, Serial::new(0))], STALL), "bootstrap");
        let mut serial = 0u32;
        let mut drained = Vec::with_capacity(BATCH);
        group.throughput(Throughput::Elements(BATCH as u64));
        group.bench_with_input(BenchmarkId::new("detect-latency", "tcp"), &(), |b, _| {
            b.iter(|| {
                let (add, remove) = fresh_deltas(serial);
                broker.publish(tld, add, Serial::new(serial + 1), SimTime::ZERO);
                assert!(
                    view.pump_until_serials(&[(tld, Serial::new(serial + 1))], STALL),
                    "socket consumer stalled on the add"
                );
                drained.clear();
                view.view_mut().drain_new_domains(&mut drained);
                assert_eq!(drained.len(), BATCH, "zone NRDs must cross the socket");
                broker.publish(tld, remove, Serial::new(serial + 2), SimTime::ZERO);
                assert!(
                    view.pump_until_serials(&[(tld, Serial::new(serial + 2))], STALL),
                    "socket consumer stalled on the remove"
                );
                serial += 2;
            })
        });
        server.shutdown();
    }
    group.finish();
}

fn bench_catchup(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker");
    const SHARD: usize = 500_000;
    // Not a multiple of the checkpoint cadence: the checkpoint genuinely
    // lags the head (here by 2 deltas), so the checkpoint path still has
    // frames to decode and apply.
    const HISTORY: usize = 34;
    const CHURN: usize = 2_000;

    // A 500k-delegation shard with 34 sealed deltas of history and a
    // checkpoint every 4 pushes. Retention keeps the full history so the
    // "replay it all" baseline has something to replay.
    let broker = Broker::new(BrokerConfig {
        retention: RetentionConfig::new(HISTORY + 2, 4),
        ..BrokerConfig::default()
    });
    let tld = TldId(0);
    let start = shard_snapshot("com", SHARD);
    broker.add_shard(tld, start.clone());
    let publisher = FlipPublisher::new(&start, CHURN);
    let mut sealed = Vec::with_capacity(HISTORY);
    for _ in 0..HISTORY {
        let (delta, serial) = publisher.next();
        sealed.push(broker.publish(tld, delta, serial, SimTime::ZERO));
    }
    let head = broker.head(tld).unwrap();

    group.throughput(Throughput::Elements(SHARD as u64));
    // Cold catch-up as the broker serves it: checkpoint snapshot
    // (Arc-shared) + decode/apply of the post-checkpoint deltas.
    group.bench_with_input(BenchmarkId::new("catchup-checkpoint", SHARD), &(), |b, _| {
        b.iter(|| {
            let sub = broker.subscribe(&[tld], None);
            let mut state: Option<ZoneSnapshot> = None;
            for msg in sub.drain() {
                match msg {
                    BrokerMessage::Snapshot { snapshot, .. } => state = Some(snapshot),
                    BrokerMessage::Delta { frame, .. } => {
                        let push = decode_delta_push(&frame).expect("well-formed");
                        let s = state.as_mut().expect("snapshot first");
                        *s = push.delta.apply(s, push.to_serial, push.pushed_at);
                    }
                }
            }
            let state = state.expect("bootstrapped");
            assert_eq!(state.serial(), head.serial());
            state
        })
    });

    // Baseline: no checkpoints — decode and apply the entire sealed
    // history onto the shard's starting snapshot.
    group.bench_with_input(BenchmarkId::new("catchup-full-replay", SHARD), &(), |b, _| {
        b.iter(|| {
            let mut state = start.clone();
            for d in &sealed {
                let push = decode_delta_push(&d.frame).expect("well-formed");
                state = push.delta.apply(&state, push.to_serial, push.pushed_at);
            }
            assert_eq!(state.serial(), head.serial());
            state
        })
    });
    group.finish();
}

/// Server-side resident set, from `/proc/self/status` (Linux-only, like
/// the epoll shim the transport is built on).
fn vm_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 =
                rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Emit a non-timing metric through the same JSON channel the bench
/// shim uses (the value rides in `median_ns`; `scripts/bench.sh` lifts
/// these ids into dedicated report fields).
fn emit_metric(id: &str, value: f64) {
    println!("{id:<48} value: {value:.1}");
    if let Ok(path) = std::env::var("DARKDNS_BENCH_JSON") {
        let json = format!(
            "{{\"id\":\"{id}\",\"median_ns\":{value:.1},\"elems\":null,\"elems_per_sec\":null}}\n"
        );
        if let Ok(mut file) =
            std::fs::OpenOptions::new().create(true).append(true).open(&path)
        {
            use std::io::Write as _;
            let _ = file.write_all(json.as_bytes());
        }
    }
}

/// The 10k-subscriber fan-out: the population the thread-per-subscriber
/// transport could not host (20k threads), served end-to-end by the one
/// reactor thread. One iteration = publish one delta + wait until every
/// one of the `DARKDNS_FANOUT_SUBS` (default 10,000) loopback
/// subscribers has received it. The client fleet runs in a child
/// process (`fanout_client_fleet`): two fds per loopback connection
/// would bust the container's 20k `RLIMIT_NOFILE` hard cap inside a
/// single process. The child prints one line per converged round; the
/// parent's iteration closes on that line, so the measured time spans
/// publish → 10k socket deliveries → 10k client-side decodes.
fn bench_tcp_fanout_10k(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker");
    let subs: usize = std::env::var("DARKDNS_FANOUT_SUBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    const CHURN: usize = 20;
    const STALL: Duration = Duration::from_secs(120);
    let _ = mio_shim::raise_nofile_limit(subs as u64 + 256);

    let broker = Broker::new(BrokerConfig {
        retention: RetentionConfig::new(64, 16),
        subscriber_capacity: 64,
        overflow: OverflowPolicy::Lag,
        lag_slo: None,
    });
    let tld = TldId(0);
    broker.add_shard(tld, shard_snapshot("com", 10_000));
    let server = BrokerServer::new(
        broker.clone(),
        TransportConfig { writer_tick: Duration::from_millis(20), ..TransportConfig::default() },
    );
    let addr = server.listen_tcp("127.0.0.1:0").expect("bind loopback");

    // RSS before the fleet: everything allocated after this point and
    // before the last handshake is per-connection server state.
    let rss_before = vm_rss_bytes();
    let exe = std::env::current_exe().expect("own executable path");
    let mut child = std::process::Command::new(exe)
        .env("DARKDNS_FANOUT_CLIENT", "1")
        .env("DARKDNS_FANOUT_ADDR", addr.to_string())
        .env("DARKDNS_FANOUT_SUBS", subs.to_string())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn client fleet");
    let mut rounds = std::io::BufReader::new(child.stdout.take().expect("child stdout"));

    let deadline = Instant::now() + STALL;
    while (server.stats().handshakes as usize) < subs {
        assert!(Instant::now() < deadline, "client fleet never finished handshaking");
        std::thread::sleep(Duration::from_millis(5));
    }
    let bytes_per_conn = vm_rss_bytes().saturating_sub(rss_before) / subs as u64;
    assert_eq!(server.transport_threads(), 1, "reactor thread count must be flat");

    let publisher = FlipPublisher::new(&broker.head(tld).unwrap(), CHURN);
    let mut expected_round = 0u64;
    group.throughput(Throughput::Elements(subs as u64));
    group.bench_with_input(
        BenchmarkId::new("tcp-fanout-10k", format!("{subs}subs")),
        &(),
        |b, _| {
            b.iter(|| {
                let (delta, serial) = publisher.next();
                broker.publish(tld, delta, serial, SimTime::ZERO);
                expected_round += 1;
                let mut line = String::new();
                use std::io::BufRead as _;
                rounds.read_line(&mut line).expect("client fleet died mid-round");
                assert_eq!(
                    line.trim().parse::<u64>().ok(),
                    Some(expected_round),
                    "fleet convergence out of step"
                );
            })
        },
    );
    assert_eq!(server.transport_threads(), 1, "reactor must not grow threads under load");
    emit_metric("broker/tcp-fanout-10k/threads", server.transport_threads() as f64);
    emit_metric("broker/tcp-fanout-10k/bytes_per_conn", bytes_per_conn as f64);
    let _ = child.kill();
    let _ = child.wait();
    server.shutdown();
    group.finish();
}

/// Frame-boundary tracker for one fleet connection: counts fully
/// received non-empty frames (heartbeats are empty and don't count).
struct FleetConn {
    stream: std::net::TcpStream,
    head: [u8; 4],
    have: usize,
    payload_left: usize,
    frames: u64,
}

impl FleetConn {
    fn feed(&mut self, mut buf: &[u8]) {
        while !buf.is_empty() {
            if self.payload_left == 0 {
                let take = (4 - self.have).min(buf.len());
                self.head[self.have..self.have + take].copy_from_slice(&buf[..take]);
                self.have += take;
                buf = &buf[take..];
                if self.have == 4 {
                    self.have = 0;
                    self.payload_left = u32::from_be_bytes(self.head) as usize;
                }
            } else {
                let take = self.payload_left.min(buf.len());
                self.payload_left -= take;
                buf = &buf[take..];
                if self.payload_left == 0 {
                    self.frames += 1;
                }
            }
        }
    }
}

/// Child-process entry point: dial `DARKDNS_FANOUT_SUBS` loopback
/// connections, handshake each as a subscriber claiming serial 0, then
/// drive them all from one epoll loop, printing the round number every
/// time the whole fleet has received that many delta frames.
fn fanout_client_fleet() {
    use mio_shim::{Epoll, Events, Interest, Token};
    use std::io::Write as _;
    use std::os::unix::io::AsRawFd;

    let addr: std::net::SocketAddr =
        std::env::var("DARKDNS_FANOUT_ADDR").expect("addr").parse().expect("valid addr");
    let n: usize = std::env::var("DARKDNS_FANOUT_SUBS").expect("subs").parse().expect("count");
    let _ = mio_shim::raise_nofile_limit(n as u64 + 64);

    let epoll = Epoll::new().expect("epoll");
    let hello_payload = encode_hello(&[TldClaim { tld: 0, from_serial: Some(Serial::new(0)) }]);
    let mut hello = (hello_payload.len() as u32).to_be_bytes().to_vec();
    hello.extend_from_slice(&hello_payload);

    let mut conns: Vec<FleetConn> = Vec::with_capacity(n);
    for i in 0..n {
        let stream = std::net::TcpStream::connect(addr).expect("dial fan-out server");
        stream.set_nodelay(true).expect("nodelay");
        (&stream).write_all(&hello).expect("send hello");
        stream.set_nonblocking(true).expect("nonblocking");
        epoll.register(stream.as_raw_fd(), Token(i), Interest::READABLE).expect("register");
        conns.push(FleetConn { stream, head: [0; 4], have: 0, payload_left: 0, frames: 0 });
    }

    let mut round = 1u64;
    let mut events = Events::with_capacity(1024);
    let mut buf = vec![0u8; 64 << 10];
    let stdout = std::io::stdout();
    loop {
        let _ = epoll.wait(&mut events, Some(Duration::from_millis(200)));
        for event in events.iter() {
            let conn = &mut conns[event.token().0];
            loop {
                match std::io::Read::read(&mut conn.stream, &mut buf) {
                    // Server closed (bench over): the fleet's job is done.
                    Ok(0) => std::process::exit(0),
                    Ok(k) => conn.feed(&buf[..k]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => std::process::exit(0),
                }
            }
        }
        while conns.iter().all(|c| c.frames >= round) {
            let mut out = stdout.lock();
            let _ = writeln!(out, "{round}");
            let _ = out.flush();
            round += 1;
        }
    }
}

criterion_group!(
    benches,
    bench_fanout,
    bench_concurrent_publish,
    bench_tcp_fanout,
    bench_tcp_fanout_10k,
    bench_detect_latency,
    bench_catchup
);

fn main() {
    // The bench binary doubles as its own 10k-connection client fleet:
    // re-exec'd with this env var, it dials instead of measuring.
    if std::env::var("DARKDNS_FANOUT_CLIENT").is_ok() {
        fanout_client_fleet();
        return;
    }
    // CI smoke hook: run just the reactor fan-out bench (scaled down
    // via DARKDNS_FANOUT_SUBS) without paying for the whole suite.
    if std::env::var("DARKDNS_BENCH_ONLY").as_deref() == Ok("tcp-fanout-10k") {
        let mut criterion = Criterion::default();
        bench_tcp_fanout_10k(&mut criterion);
        return;
    }
    benches();
}
