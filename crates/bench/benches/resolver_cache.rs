//! B4: caching-resolver ablation.
//!
//! Resolves a probe-like query mix (repeated A lookups per domain on a
//! 10-minute grid) under two cache policies: the paper's 60-second TTL
//! cap versus honouring the upstream 1-hour TTL. The capped cache pays
//! more upstream lookups (lower hit rate) — the cost the paper accepts in
//! exchange for observing removals at probe-interval resolution.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use darkdns_dns::{DomainName, RecordType};
use darkdns_measure::resolver::CachingResolver;
use darkdns_registry::hosting::{HostingLandscape, ProviderId};
use darkdns_registry::registrar::RegistrarId;
use darkdns_registry::tld::TldId;
use darkdns_registry::universe::{CertTiming, DomainId, DomainKind, DomainRecord, Universe};
use darkdns_sim::time::{SimDuration, SimTime};

fn build_universe(n: usize) -> Universe {
    let mut u = Universe::new();
    for i in 0..n {
        let created = SimTime::from_hours(1);
        u.push(DomainRecord {
            id: DomainId(0),
            name: DomainName::parse(&format!("bench-domain-{i:06}.com")).unwrap(),
            tld: TldId(0),
            kind: DomainKind::LongLived,
            created,
            zone_insert: created,
            removed: None,
            registrar: RegistrarId(0),
            dns_provider: ProviderId(0),
            web_asn: 13_335,
            cert_timing: CertTiming::Prompt,
            cert_hint: None,
            ns_change_at: None,
            malicious: false,
        });
    }
    u
}

fn bench_resolver(c: &mut Criterion) {
    let universe = build_universe(2_000);
    let landscape = HostingLandscape::paper_landscape();
    let names: Vec<DomainName> = universe.iter().map(|r| r.name.clone()).collect();
    // Probe mix: every domain queried on a 10-minute grid for 2 hours.
    let probes: Vec<(usize, SimTime)> = (0..12u64)
        .flat_map(|tick| {
            let at = SimTime::from_hours(2) + SimDuration::from_secs(tick * 600);
            (0..names.len()).map(move |i| (i, at))
        })
        .collect();

    let mut group = c.benchmark_group("resolver_cache");
    group.throughput(Throughput::Elements(probes.len() as u64));
    for (label, cap_secs) in [("capped-60s", 60u64), ("uncapped-1h", 3_600u64)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut resolver =
                    CachingResolver::new(&universe, &landscape, SimDuration::from_secs(cap_secs));
                for (i, at) in &probes {
                    let _ = resolver.resolve(&names[*i], RecordType::A, *at);
                }
                (resolver.hits(), resolver.misses())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_resolver);
criterion_main!(benches);
