//! B3: detection-pipeline throughput.
//!
//! Measures Step 1 (CT-stream → NRD candidates) in certstream entries per
//! second over a prebuilt small universe, and the end-to-end small
//! experiment as a macro benchmark.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use darkdns_core::config::ExperimentConfig;
use darkdns_core::detector::Detector;
use darkdns_core::experiment::Experiment;
use darkdns_core::membership::OracleMembership;
use darkdns_ct::ca::CaFleet;
use darkdns_ct::stream::CertStream;
use darkdns_dns::PublicSuffixList;
use darkdns_registry::czds::{SnapshotOracle, SnapshotSchedule};
use darkdns_registry::hosting::HostingLandscape;
use darkdns_registry::registrar::RegistrarFleet;
use darkdns_registry::workload::UniverseBuilder;
use darkdns_sim::rng::RngPool;

fn bench_detector(c: &mut Criterion) {
    let cfg = ExperimentConfig::small(3);
    let pool = RngPool::new(cfg.seed);
    let fleet = RegistrarFleet::paper_fleet();
    let hosting = HostingLandscape::paper_landscape();
    let schedule =
        SnapshotSchedule::new(&pool, &cfg.tlds, cfg.workload.window_start, cfg.workload.window_days);
    let builder = UniverseBuilder {
        tlds: &cfg.tlds,
        fleet: &fleet,
        hosting: &hosting,
        schedule: &schedule,
        config: cfg.workload.clone(),
    };
    let universe = builder.build(&pool);
    let (stream, _) = CertStream::build(&universe, &schedule, &CaFleet::paper_fleet(), &pool);
    let psl = PublicSuffixList::builtin();
    let oracle = SnapshotOracle::new(&schedule);

    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("detector/certstream", |b| {
        b.iter(|| {
            let mut det =
                Detector::new(&psl, &universe, OracleMembership::new(&oracle, &universe));
            det.run(stream.entries()).len()
        })
    });
    group.sample_size(10);
    group.bench_function("experiment/small", |b| {
        b.iter(|| Experiment::new(ExperimentConfig::small(3)).run().nrd_total)
    });
    group.finish();
}

criterion_group!(benches, bench_detector);
criterion_main!(benches);
