//! The RDAP collection client.
//!
//! The paper's collector ran as Azure functions cycling over distinct
//! egress IPs, rate-limited itself to ~1 query/second overall, and never
//! retried failures. The client reproduces those policies: queries are
//! spread round-robin over `workers` source IPs, spaced by a minimum
//! inter-query gap per worker, and each candidate is attempted exactly
//! once.

use crate::model::RdapOutcome;
use crate::server::RdapDirectory;
use darkdns_dns::DomainName;
use darkdns_sim::time::{SimDuration, SimTime};

/// A collected (query time, outcome) pair.
#[derive(Debug, Clone)]
pub struct Collection {
    pub queried_at: SimTime,
    pub worker: u16,
    pub outcome: RdapOutcome,
}

/// The worker-pool client.
#[derive(Debug, Clone)]
pub struct RdapClient {
    workers: u16,
    /// Earliest next send per worker (self rate limiting).
    next_free: Vec<SimTime>,
    /// Minimum gap between queries on one worker.
    min_gap: SimDuration,
    round_robin: u16,
}

impl RdapClient {
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: u16, min_gap: SimDuration) -> Self {
        assert!(workers > 0, "need at least one worker");
        RdapClient {
            workers,
            next_free: vec![SimTime::ZERO; workers as usize],
            min_gap,
            round_robin: 0,
        }
    }

    /// The paper's deployment: four workers, one query per second overall
    /// (i.e. a 4-second gap per worker).
    pub fn paper_client() -> Self {
        RdapClient::new(4, SimDuration::from_secs(4))
    }

    pub fn workers(&self) -> u16 {
        self.workers
    }

    /// Issue one query for `name`, not before `earliest`. The actual send
    /// time respects the per-worker pacing; no retries are attempted.
    pub fn collect(
        &mut self,
        directory: &mut RdapDirectory<'_>,
        name: &DomainName,
        earliest: SimTime,
    ) -> Collection {
        let worker = self.round_robin % self.workers;
        self.round_robin = self.round_robin.wrapping_add(1);
        let slot = &mut self.next_free[worker as usize];
        let send_at = if *slot > earliest { *slot } else { earliest };
        *slot = send_at + self.min_gap;
        let outcome = directory.query(name, worker, send_at);
        Collection { queried_at: send_at, worker, outcome }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RdapConfig;
    use darkdns_registry::hosting::ProviderId;
    use darkdns_registry::registrar::{RegistrarFleet, RegistrarId};
    use darkdns_registry::tld::TldId;
    use darkdns_registry::universe::{CertTiming, DomainId, DomainKind, DomainRecord, Universe};
    use darkdns_sim::rng::RngPool;

    fn universe_with(names: &[&str]) -> Universe {
        let mut u = Universe::new();
        for n in names {
            u.push(DomainRecord {
                id: DomainId(0),
                name: DomainName::parse(n).unwrap(),
                tld: TldId(0),
                kind: DomainKind::LongLived,
                created: SimTime::from_days(1),
                zone_insert: SimTime::from_days(1),
                removed: None,
                registrar: RegistrarId(0),
                dns_provider: ProviderId(0),
                web_asn: 13_335,
                cert_timing: CertTiming::Prompt,
                cert_hint: None,
                ns_change_at: None,
                malicious: false,
            });
        }
        u
    }

    #[test]
    fn queries_rotate_workers() {
        let u = universe_with(&["a.com", "b.com", "c.com", "d.com", "e.com"]);
        let fleet = RegistrarFleet::paper_fleet();
        let mut dir = RdapDirectory::new(&u, &fleet, RdapConfig::default(), &RngPool::new(1));
        let mut client = RdapClient::new(4, SimDuration::from_secs(4));
        let t = SimTime::from_days(2);
        let workers: Vec<u16> = ["a.com", "b.com", "c.com", "d.com", "e.com"]
            .iter()
            .map(|n| client.collect(&mut dir, &DomainName::parse(n).unwrap(), t).worker)
            .collect();
        assert_eq!(workers, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn pacing_spaces_queries_per_worker() {
        let u = universe_with(&["a.com"]);
        let fleet = RegistrarFleet::paper_fleet();
        let mut dir = RdapDirectory::new(&u, &fleet, RdapConfig::default(), &RngPool::new(2));
        let mut client = RdapClient::new(1, SimDuration::from_secs(10));
        let t = SimTime::from_days(2);
        let name = DomainName::parse("a.com").unwrap();
        let c1 = client.collect(&mut dir, &name, t);
        let c2 = client.collect(&mut dir, &name, t);
        let c3 = client.collect(&mut dir, &name, t);
        assert_eq!(c1.queried_at, t);
        assert_eq!(c2.queried_at, t + SimDuration::from_secs(10));
        assert_eq!(c3.queried_at, t + SimDuration::from_secs(20));
    }

    #[test]
    fn earliest_bound_is_respected() {
        let u = universe_with(&["a.com"]);
        let fleet = RegistrarFleet::paper_fleet();
        let mut dir = RdapDirectory::new(&u, &fleet, RdapConfig::default(), &RngPool::new(3));
        let mut client = RdapClient::paper_client();
        let name = DomainName::parse("a.com").unwrap();
        let c = client.collect(&mut dir, &name, SimTime::from_days(3));
        assert!(c.queried_at >= SimTime::from_days(3));
        assert_eq!(client.workers(), 4);
    }

    #[test]
    fn collection_outcome_reaches_caller() {
        let u = universe_with(&["a.com"]);
        let fleet = RegistrarFleet::paper_fleet();
        let mut dir = RdapDirectory::new(&u, &fleet, RdapConfig::default(), &RngPool::new(4));
        let mut client = RdapClient::paper_client();
        let hit = client.collect(&mut dir, &DomainName::parse("a.com").unwrap(), SimTime::from_days(2));
        let miss = client.collect(&mut dir, &DomainName::parse("nope.com").unwrap(), SimTime::from_days(2));
        assert!(hit.outcome.is_ok());
        assert!(miss.outcome.is_err());
    }
}
