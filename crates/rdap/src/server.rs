//! The RDAP directory: per-registry servers answering over the universe.
//!
//! Mechanics (each mapped to a paper observation):
//!
//! * **sync lag** — a registration becomes visible to RDAP only after a
//!   per-query log-normal lag (median ≈ 2 min). Querying a very fresh
//!   domain can race the backend ("we were too early").
//! * **purge after deletion** — once a domain is removed, its RDAP data
//!   survives only briefly: a query after removal fails with `NotFound`
//!   with high probability ("we detected too late").
//! * **ghosts** — certificate-only names have no registration at all:
//!   always `NotFound` (cause iii).
//! * **rate limits** — one token bucket per (registry, source IP); the
//!   client cycles IPs exactly so that this rarely trips.
//! * **base error rate** — transient server failures; never retried.

use crate::model::{RdapError, RdapOutcome, RdapResponse};
use crate::ratelimit::TokenBucket;
use darkdns_dns::DomainName;
use darkdns_registry::registrar::RegistrarFleet;
use darkdns_registry::tld::TldId;
use darkdns_registry::universe::{DomainKind, DomainRecord, Universe};
use darkdns_sim::dist::LogNormal;
use darkdns_sim::rng::RngPool;
use darkdns_sim::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashMap;

/// Behavioural parameters of the directory.
#[derive(Debug, Clone)]
pub struct RdapConfig {
    /// Median backend sync lag in seconds (registration → RDAP visible).
    pub sync_lag_median_secs: f64,
    pub sync_lag_sigma: f64,
    /// Probability that data for a deleted domain is already purged.
    pub purge_probability: f64,
    /// Grace period after deletion during which data always survives.
    pub purge_grace: SimDuration,
    /// Base probability of a transient server error.
    pub base_error_rate: f64,
    /// Per-(registry, IP) bucket: burst capacity and hourly rate
    /// (CentralNic-style: 7,200/hour).
    pub bucket_capacity: u32,
    pub bucket_rate_per_hour: f64,
}

impl Default for RdapConfig {
    fn default() -> Self {
        RdapConfig {
            sync_lag_median_secs: 120.0,
            sync_lag_sigma: 1.3,
            purge_probability: 0.80,
            purge_grace: SimDuration::from_minutes(30),
            base_error_rate: 0.015,
            bucket_capacity: 60,
            bucket_rate_per_hour: 7_200.0,
        }
    }
}

/// The simulated RDAP service fronting every registry.
pub struct RdapDirectory<'a> {
    universe: &'a Universe,
    fleet: &'a RegistrarFleet,
    config: RdapConfig,
    buckets: HashMap<(TldId, u16), TokenBucket>,
    rng: SmallRng,
}

impl<'a> RdapDirectory<'a> {
    pub fn new(
        universe: &'a Universe,
        fleet: &'a RegistrarFleet,
        config: RdapConfig,
        pool: &RngPool,
    ) -> Self {
        RdapDirectory {
            universe,
            fleet,
            config,
            buckets: HashMap::new(),
            rng: pool.stream("rdap.server"),
        }
    }

    /// Handle one query from `source_ip` (an opaque worker index) at `now`.
    pub fn query(&mut self, name: &DomainName, source_ip: u16, now: SimTime) -> RdapOutcome {
        let record = match self.universe.lookup(name) {
            Some(r) => r,
            None => return Err(RdapError::NotFound),
        };
        // Rate limit first — the registry rejects before doing any lookup.
        let bucket = self
            .buckets
            .entry((record.tld, source_ip))
            .or_insert_with(|| {
                TokenBucket::new(self.config.bucket_capacity, self.config.bucket_rate_per_hour, now)
            });
        if !bucket.try_acquire(now) {
            return Err(RdapError::RateLimited);
        }
        if self.rng.gen::<f64>() < self.config.base_error_rate {
            return Err(RdapError::ServerError);
        }
        match record.kind {
            DomainKind::Ghost { .. } => Err(RdapError::NotFound),
            _ => self.answer_registered(record, now),
        }
    }

    fn answer_registered(&mut self, record: &DomainRecord, now: SimTime) -> RdapOutcome {
        // Too early: backend has not synced the fresh registration.
        if now >= record.created {
            let lag = LogNormal::from_median(self.config.sync_lag_median_secs, self.config.sync_lag_sigma)
                .sample(&mut self.rng)
                .min(3.0 * 3_600.0);
            if now.saturating_since(record.created).as_secs() < lag as u64 {
                return Err(RdapError::NotSynced);
            }
        } else {
            return Err(RdapError::NotFound);
        }
        // Too late: registry purged the data after deletion. Re-registered
        // names are exempt — their data is live again under the new
        // registration (which is exactly why RDAP exposes the old date).
        if record.kind != DomainKind::ReRegistered {
            if let Some(removed) = record.removed {
                if now > removed + self.config.purge_grace
                    && self.rng.gen::<f64>() < self.config.purge_probability
                {
                    return Err(RdapError::NotFound);
                }
            }
        }
        let registrar = self.fleet.get(record.registrar);
        // EPP statuses as the registry's lifecycle model reports them.
        let statuses: Vec<String> = darkdns_registry::lifecycle::phase_at(record, now)
            .epp_statuses()
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        Ok(RdapResponse {
            domain: record.name.clone(),
            created: record.created,
            registrar: registrar.name.clone(),
            registrar_iana: registrar.iana_id,
            statuses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkdns_registry::hosting::ProviderId;
    use darkdns_registry::registrar::RegistrarId;
    use darkdns_registry::universe::{CertTiming, DomainId};

    fn record(name: &str, kind: DomainKind, created: SimTime, removed: Option<SimTime>) -> DomainRecord {
        DomainRecord {
            id: DomainId(0),
            name: DomainName::parse(name).unwrap(),
            tld: TldId(0),
            kind,
            created,
            zone_insert: created,
            removed,
            registrar: RegistrarId(0),
            dns_provider: ProviderId(0),
            web_asn: 13_335,
            cert_timing: CertTiming::Prompt,
            cert_hint: None,
            ns_change_at: None,
            malicious: false,
        }
    }

    fn setup(records: Vec<DomainRecord>) -> (Universe, RegistrarFleet) {
        let mut u = Universe::new();
        for r in records {
            u.push(r);
        }
        (u, RegistrarFleet::paper_fleet())
    }

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn live_domain_resolves_with_creation_date() {
        let created = SimTime::from_days(10);
        let (u, f) = setup(vec![record("a.com", DomainKind::LongLived, created, None)]);
        let mut dir = RdapDirectory::new(&u, &f, RdapConfig::default(), &RngPool::new(1));
        let resp = dir
            .query(&name("a.com"), 0, created + SimDuration::from_hours(2))
            .expect("should resolve");
        assert_eq!(resp.created, created);
        assert_eq!(resp.registrar, "GoDaddy");
        assert!(resp.statuses.contains(&"addPeriod".to_owned()));
    }

    #[test]
    fn unknown_domain_is_not_found() {
        let (u, f) = setup(vec![]);
        let mut dir = RdapDirectory::new(&u, &f, RdapConfig::default(), &RngPool::new(1));
        assert_eq!(dir.query(&name("ghost.com"), 0, SimTime::from_days(1)), Err(RdapError::NotFound));
    }

    #[test]
    fn ghosts_always_fail() {
        let created = SimTime::from_days(1);
        let (u, f) = setup(vec![record(
            "g.com",
            DomainKind::Ghost { previously_registered: true },
            created,
            Some(created + SimDuration::from_days(5)),
        )]);
        let mut dir = RdapDirectory::new(&u, &f, RdapConfig::default(), &RngPool::new(1));
        for i in 0..20 {
            let out = dir.query(&name("g.com"), i % 4, SimTime::from_days(100));
            assert!(matches!(out, Err(RdapError::NotFound) | Err(RdapError::ServerError)));
        }
    }

    #[test]
    fn very_fresh_domain_often_not_synced() {
        let created = SimTime::from_days(10);
        let (u, f) = setup(vec![record("a.com", DomainKind::LongLived, created, None)]);
        let mut dir = RdapDirectory::new(&u, &f, RdapConfig::default(), &RngPool::new(2));
        let mut not_synced = 0;
        for i in 0..200 {
            // One second after creation; spread over IPs to dodge limits.
            if dir.query(&name("a.com"), i % 16, created + SimDuration::from_secs(1))
                == Err(RdapError::NotSynced)
            {
                not_synced += 1;
            }
        }
        assert!(not_synced > 150, "expected mostly NotSynced, got {not_synced}");
    }

    #[test]
    fn long_dead_domain_usually_purged() {
        let created = SimTime::from_days(10);
        let removed = created + SimDuration::from_hours(6);
        let (u, f) = setup(vec![record("t.com", DomainKind::Transient, created, Some(removed))]);
        let mut dir = RdapDirectory::new(&u, &f, RdapConfig::default(), &RngPool::new(3));
        let mut not_found = 0;
        for i in 0..200 {
            if dir.query(&name("t.com"), i % 16, removed + SimDuration::from_days(2))
                == Err(RdapError::NotFound)
            {
                not_found += 1;
            }
        }
        let frac = not_found as f64 / 200.0;
        assert!((0.65..0.95).contains(&frac), "purge fraction {frac}");
    }

    #[test]
    fn within_grace_period_data_survives() {
        let created = SimTime::from_days(10);
        let removed = created + SimDuration::from_hours(6);
        let (u, f) = setup(vec![record("t.com", DomainKind::Transient, created, Some(removed))]);
        let mut cfg = RdapConfig::default();
        cfg.base_error_rate = 0.0;
        let mut dir = RdapDirectory::new(&u, &f, cfg, &RngPool::new(4));
        for i in 0..50 {
            let out = dir.query(&name("t.com"), i % 16, removed + SimDuration::from_minutes(5));
            assert!(out.is_ok(), "query failed inside grace: {out:?}");
        }
    }

    #[test]
    fn rereg_reports_old_creation_despite_deletion() {
        let created = SimTime::from_days(50);
        let removed = created + SimDuration::from_days(30);
        let (u, f) = setup(vec![record("old.com", DomainKind::ReRegistered, created, Some(removed))]);
        let mut cfg = RdapConfig::default();
        cfg.base_error_rate = 0.0;
        let mut dir = RdapDirectory::new(&u, &f, cfg, &RngPool::new(5));
        let resp = dir.query(&name("old.com"), 0, SimTime::from_days(500)).expect("rereg resolves");
        assert_eq!(resp.created, created);
    }

    #[test]
    fn hammering_one_ip_trips_rate_limit() {
        let created = SimTime::from_days(10);
        let (u, f) = setup(vec![record("a.com", DomainKind::LongLived, created, None)]);
        let mut cfg = RdapConfig::default();
        cfg.bucket_capacity = 5;
        cfg.bucket_rate_per_hour = 60.0;
        let mut dir = RdapDirectory::new(&u, &f, cfg, &RngPool::new(6));
        let now = created + SimDuration::from_days(1);
        let mut limited = 0;
        for _ in 0..50 {
            if dir.query(&name("a.com"), 0, now) == Err(RdapError::RateLimited) {
                limited += 1;
            }
        }
        assert!(limited >= 40, "rate limit barely tripped: {limited}");
        // A different source IP has its own bucket.
        assert_ne!(dir.query(&name("a.com"), 1, now), Err(RdapError::RateLimited));
    }

    #[test]
    fn query_before_creation_is_not_found() {
        let created = SimTime::from_days(10);
        let (u, f) = setup(vec![record("a.com", DomainKind::LongLived, created, None)]);
        let mut cfg = RdapConfig::default();
        cfg.base_error_rate = 0.0;
        let mut dir = RdapDirectory::new(&u, &f, cfg, &RngPool::new(7));
        assert_eq!(
            dir.query(&name("a.com"), 0, created.saturating_sub(SimDuration::from_hours(1))),
            Err(RdapError::NotFound)
        );
    }
}
