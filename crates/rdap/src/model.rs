//! RDAP responses and failure taxonomy.

use darkdns_dns::DomainName;
use darkdns_sim::time::SimTime;
use serde::Serialize;

/// A successful RDAP domain lookup (the fields the pipeline consumes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RdapResponse {
    pub domain: DomainName,
    /// Registration (creation) timestamp — the pipeline's ground truth for
    /// detection latency and its misclassification filter.
    pub created: SimTime,
    /// Sponsoring registrar name.
    pub registrar: String,
    /// Sponsoring registrar IANA id.
    pub registrar_iana: u32,
    /// EPP-style status strings (e.g. `addPeriod` shortly after creation).
    pub statuses: Vec<String>,
}

/// Why an RDAP query failed. The variants map onto the paper's three
/// causes for the transient-domain failure-rate gap, plus the operational
/// failures every collector sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum RdapError {
    /// No registration data (never existed, or purged after deletion —
    /// causes i and iii).
    NotFound,
    /// Registration exists but the registry's RDAP backend has not caught
    /// up yet (cause ii, "we were too early").
    NotSynced,
    /// Registry rate limit tripped.
    RateLimited,
    /// Transient server-side error (the collector does not retry).
    ServerError,
}

impl RdapError {
    pub fn label(self) -> &'static str {
        match self {
            RdapError::NotFound => "not-found",
            RdapError::NotSynced => "not-synced",
            RdapError::RateLimited => "rate-limited",
            RdapError::ServerError => "server-error",
        }
    }
}

/// Outcome of one collection attempt (no retries, per the paper's ethics
/// stance).
pub type RdapOutcome = Result<RdapResponse, RdapError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let all = [
            RdapError::NotFound,
            RdapError::NotSynced,
            RdapError::RateLimited,
            RdapError::ServerError,
        ];
        let labels: std::collections::HashSet<_> = all.iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn response_serializes() {
        let r = RdapResponse {
            domain: DomainName::parse("example.com").unwrap(),
            created: SimTime::from_secs(123),
            registrar: "GoDaddy".into(),
            registrar_iana: 146,
            statuses: vec!["addPeriod".into()],
        };
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("example.com"));
        assert!(json.contains("addPeriod"));
    }
}
