//! RDAP substrate.
//!
//! Step 2 of the paper's pipeline collects RDAP registration data for every
//! candidate NRD, and Step 4 validates detections against the RDAP
//! creation timestamp. The paper's operational constraints are modelled
//! faithfully:
//!
//! * registries **rate-limit** (the paper cycled Azure egress IPs and kept
//!   under ~1 qps to stay below limits like CentralNic's 7,200/h);
//! * the measurement deliberately **never retries** failures, to avoid
//!   burdening registry infrastructure;
//! * failures have structure (§4.2): *too late* (domain purged after
//!   deletion), *too early* (registry data not yet synced), and ghosts
//!   (no registration at all) — which is why transient domains fail RDAP
//!   an order of magnitude more often (≈34%) than ordinary NRDs (≈3%).
//!
//! Modules: [`ratelimit`] (token bucket), [`model`] (responses/errors),
//! [`server`] (the per-registry directory), [`client`] (the worker pool).

pub mod client;
pub mod model;
pub mod ratelimit;
pub mod server;

pub use client::RdapClient;
pub use model::{RdapError, RdapResponse};
pub use ratelimit::TokenBucket;
pub use server::RdapDirectory;
