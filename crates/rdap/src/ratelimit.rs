//! A token bucket on simulated time.
//!
//! Registries rate-limit RDAP; the bucket is keyed per (registry, source
//! IP) by the server module. Tokens refill continuously at `rate_per_hour`
//! up to `capacity`.

use darkdns_sim::time::SimTime;

/// A continuous-refill token bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    rate_per_sec: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// # Panics
    /// Panics unless `capacity > 0` and `rate_per_hour > 0`.
    pub fn new(capacity: u32, rate_per_hour: f64, now: SimTime) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(rate_per_hour > 0.0, "rate must be positive");
        TokenBucket {
            capacity: f64::from(capacity),
            rate_per_sec: rate_per_hour / 3_600.0,
            tokens: f64::from(capacity),
            last: now,
        }
    }

    fn refill(&mut self, now: SimTime) {
        // Time can only move forward; out-of-order calls refill nothing.
        if now > self.last {
            let dt = now.saturating_since(self.last).as_secs() as f64;
            self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.capacity);
            self.last = now;
        }
    }

    /// Take one token if available.
    pub fn try_acquire(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkdns_sim::time::SimDuration;

    #[test]
    fn starts_full_and_drains() {
        let now = SimTime::from_secs(0);
        let mut b = TokenBucket::new(3, 3_600.0, now);
        assert!(b.try_acquire(now));
        assert!(b.try_acquire(now));
        assert!(b.try_acquire(now));
        assert!(!b.try_acquire(now));
    }

    #[test]
    fn refills_at_rate() {
        let t0 = SimTime::from_secs(0);
        // 3600/h = 1 token/sec.
        let mut b = TokenBucket::new(2, 3_600.0, t0);
        b.try_acquire(t0);
        b.try_acquire(t0);
        assert!(!b.try_acquire(t0));
        let t1 = t0 + SimDuration::from_secs(1);
        assert!(b.try_acquire(t1));
        assert!(!b.try_acquire(t1));
    }

    #[test]
    fn never_exceeds_capacity() {
        let t0 = SimTime::from_secs(0);
        let mut b = TokenBucket::new(5, 3_600.0, t0);
        let much_later = t0 + SimDuration::from_days(1);
        assert!((b.available(much_later) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn centralnic_style_limit() {
        // 7,200/h refills 2 tokens/s; a burst of 100 queries in 10 s far
        // exceeds capacity 10 + ~20 refilled and must be mostly denied.
        let t0 = SimTime::from_secs(0);
        let mut b = TokenBucket::new(10, 7_200.0, t0);
        let mut denied = 0;
        for i in 0..100 {
            let now = t0 + SimDuration::from_secs(i / 10);
            if !b.try_acquire(now) {
                denied += 1;
            }
        }
        assert!((60..=80).contains(&denied), "denied {denied}, expected ~70");
    }

    #[test]
    fn time_going_backwards_is_tolerated() {
        let t0 = SimTime::from_secs(100);
        let mut b = TokenBucket::new(1, 3_600.0, t0);
        assert!(b.try_acquire(t0));
        // An out-of-order call neither panics nor mints tokens.
        assert!(!b.try_acquire(SimTime::from_secs(50)));
    }
}
