//! The in-memory topic bus and the public NRD feed.
//!
//! The paper's measurement infrastructure glues its stages together with
//! Kafka topics; the reproduction uses an in-process broadcast topic built
//! on crossbeam channels. The same machinery implements the paper's
//! released artifact — the public "zonestream" feed of newly
//! registered domains (reference 33 of the paper) — which the repository's examples subscribe to.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use darkdns_dns::DomainName;
use darkdns_sim::time::SimTime;
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::Arc;

/// A broadcast topic: every subscriber receives every message published
/// after it subscribed.
pub struct Topic<T: Clone> {
    subscribers: Arc<Mutex<Vec<Sender<T>>>>,
    published: Arc<Mutex<u64>>,
}

impl<T: Clone> Default for Topic<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Clone for Topic<T> {
    fn clone(&self) -> Self {
        Topic { subscribers: Arc::clone(&self.subscribers), published: Arc::clone(&self.published) }
    }
}

impl<T: Clone> Topic<T> {
    pub fn new() -> Self {
        Topic { subscribers: Arc::new(Mutex::new(Vec::new())), published: Arc::new(Mutex::new(0)) }
    }

    /// Subscribe; messages published from now on are delivered.
    pub fn subscribe(&self) -> Subscription<T> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        Subscription { rx }
    }

    /// Publish to all live subscribers. Dropped subscribers are pruned.
    pub fn publish(&self, message: T) {
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| tx.send(message.clone()).is_ok());
        *self.published.lock() += 1;
    }

    /// Messages published so far (delivered or not).
    pub fn published_count(&self) -> u64 {
        *self.published.lock()
    }

    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

/// A consumer handle for a [`Topic`].
pub struct Subscription<T> {
    rx: Receiver<T>,
}

impl<T> Subscription<T> {
    /// Non-blocking poll.
    pub fn try_next(&self) -> Option<T> {
        match self.rx.try_recv() {
            Ok(v) => Some(v),
            Err(TryRecvError::Empty | TryRecvError::Disconnected) => None,
        }
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.try_next() {
            out.push(v);
        }
        out
    }
}

/// One record on the public newly-registered-domain feed ("zonestream").
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct NrdFeedRecord {
    pub domain: DomainName,
    /// When the pipeline first saw the name in CT.
    pub detected_at: SimTime,
    /// RDAP-reported creation time, when collection succeeded.
    pub rdap_created: Option<SimTime>,
    /// Sponsoring registrar, when known.
    pub registrar: Option<String>,
}

/// The public feed the paper releases: a topic of [`NrdFeedRecord`]s.
pub type NrdFeed = Topic<NrdFeedRecord>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_subscribe_round_trip() {
        let topic: Topic<u32> = Topic::new();
        let sub = topic.subscribe();
        topic.publish(1);
        topic.publish(2);
        assert_eq!(sub.drain(), vec![1, 2]);
        assert_eq!(topic.published_count(), 2);
    }

    #[test]
    fn subscribers_only_see_messages_after_joining() {
        let topic: Topic<u32> = Topic::new();
        topic.publish(1);
        let sub = topic.subscribe();
        topic.publish(2);
        assert_eq!(sub.drain(), vec![2]);
    }

    #[test]
    fn multiple_subscribers_each_get_everything() {
        let topic: Topic<&'static str> = Topic::new();
        let a = topic.subscribe();
        let b = topic.subscribe();
        topic.publish("x");
        assert_eq!(a.drain(), vec!["x"]);
        assert_eq!(b.drain(), vec!["x"]);
        assert_eq!(topic.subscriber_count(), 2);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let topic: Topic<u32> = Topic::new();
        {
            let _sub = topic.subscribe();
        }
        topic.publish(5); // send fails; subscriber pruned
        assert_eq!(topic.subscriber_count(), 0);
    }

    #[test]
    fn try_next_on_empty_is_none() {
        let topic: Topic<u32> = Topic::new();
        let sub = topic.subscribe();
        assert_eq!(sub.try_next(), None);
    }

    #[test]
    fn feed_record_serializes() {
        let rec = NrdFeedRecord {
            domain: DomainName::parse("example.com").unwrap(),
            detected_at: SimTime::from_secs(100),
            rdap_created: Some(SimTime::from_secs(40)),
            registrar: Some("GoDaddy".into()),
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("example.com"));
        assert!(json.contains("GoDaddy"));
    }
}
