//! The in-memory topic bus and the public NRD feed.
//!
//! The paper's measurement infrastructure glues its stages together with
//! Kafka topics; the reproduction uses an in-process broadcast topic built
//! on crossbeam channels. The same machinery implements the paper's
//! released artifact — the public "zonestream" feed of newly
//! registered domains (reference 33 of the paper) — which the repository's examples subscribe to.
//!
//! Topics are **bounded**: every subscriber has a channel of fixed
//! capacity, and a publisher never blocks on a slow consumer. On
//! overflow the topic either drops the message for that subscriber
//! (counted — [`Subscription::dropped_count`]) or evicts the subscriber
//! outright, per [`OverflowPolicy`]. This replaces the earlier unbounded
//! semantics, under which one stalled consumer grew its queue without
//! limit — at zone scale, an OOM with extra steps. The same policy
//! vocabulary is used by the RZU distribution broker
//! (`darkdns_broker`), which additionally offers snapshot catch-up for
//! subscribers that fell behind.

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use darkdns_broker::lockdep::{LockClass, TrackedMutex};
use darkdns_dns::DomainName;
use darkdns_sim::time::SimTime;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The topic subscriber registry's lock class: a leaf — `publish`
/// try-sends on crossbeam channels under it but never takes another
/// tracked lock. Level from `docs/INVARIANTS.md`.
static TOPIC_SUBS: LockClass = LockClass::new("core.topic_subs", 80);

/// What a topic does with a subscriber whose channel is full — the same
/// policy vocabulary the RZU distribution broker uses.
pub use darkdns_broker::OverflowPolicy;

/// Default per-subscriber channel capacity.
pub const DEFAULT_TOPIC_CAPACITY: usize = 4096;

struct TopicSubscriber<T> {
    tx: Sender<T>,
    dropped: Arc<AtomicU64>,
}

/// A broadcast topic: every subscriber receives every message published
/// after it subscribed, up to its bounded buffer.
pub struct Topic<T: Clone> {
    // lock-level: 80
    subscribers: Arc<TrackedMutex<Vec<TopicSubscriber<T>>>>,
    published: Arc<AtomicU64>,
    capacity: usize,
    overflow: OverflowPolicy,
}

impl<T: Clone> Default for Topic<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Clone for Topic<T> {
    fn clone(&self) -> Self {
        Topic {
            subscribers: Arc::clone(&self.subscribers),
            published: Arc::clone(&self.published),
            capacity: self.capacity,
            overflow: self.overflow,
        }
    }
}

impl<T: Clone> Topic<T> {
    /// A topic with the default capacity and the Lag overflow policy.
    pub fn new() -> Self {
        Topic::with_config(DEFAULT_TOPIC_CAPACITY, OverflowPolicy::Lag)
    }

    /// A topic with explicit per-subscriber capacity and overflow policy.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_config(capacity: usize, overflow: OverflowPolicy) -> Self {
        assert!(capacity > 0, "topic capacity must be positive");
        Topic {
            subscribers: Arc::new(TrackedMutex::new(&TOPIC_SUBS, Vec::new())),
            published: Arc::new(AtomicU64::new(0)),
            capacity,
            overflow,
        }
    }

    /// Subscribe; messages published from now on are delivered, up to
    /// the topic's per-subscriber capacity.
    pub fn subscribe(&self) -> Subscription<T> {
        let (tx, rx) = bounded(self.capacity);
        let dropped = Arc::new(AtomicU64::new(0));
        self.subscribers.lock().push(TopicSubscriber { tx, dropped: Arc::clone(&dropped) });
        Subscription { rx, dropped }
    }

    /// Publish to all live subscribers. Dropped subscribers are pruned;
    /// full subscribers lag or are evicted per the overflow policy.
    pub fn publish(&self, message: T) {
        let mut subs = self.subscribers.lock();
        let overflow = self.overflow;
        subs.retain(|sub| match sub.tx.try_send(message.clone()) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => match overflow {
                OverflowPolicy::Lag => {
                    sub.dropped.fetch_add(1, Ordering::Relaxed);
                    true
                }
                OverflowPolicy::Evict => false,
            },
            Err(TrySendError::Disconnected(_)) => false,
        });
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages published so far (delivered or not).
    pub fn published_count(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }

    /// Messages dropped across all *current* subscribers (evicted ones
    /// no longer count). A publisher that must not lose records checks
    /// this after the run instead of trusting silence.
    pub fn dropped_total(&self) -> u64 {
        self.subscribers.lock().iter().map(|s| s.dropped.load(Ordering::Relaxed)).sum()
    }

    /// Per-subscriber channel capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A consumer handle for a [`Topic`].
pub struct Subscription<T> {
    rx: Receiver<T>,
    dropped: Arc<AtomicU64>,
}

impl<T> Subscription<T> {
    /// Non-blocking poll.
    pub fn try_next(&self) -> Option<T> {
        match self.rx.try_recv() {
            Ok(v) => Some(v),
            Err(TryRecvError::Empty | TryRecvError::Disconnected) => None,
        }
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.try_next() {
            out.push(v);
        }
        out
    }

    /// Messages this subscriber missed because its buffer was full.
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// One record on the public newly-registered-domain feed ("zonestream").
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct NrdFeedRecord {
    pub domain: DomainName,
    /// When the pipeline first saw the name in CT.
    pub detected_at: SimTime,
    /// RDAP-reported creation time, when collection succeeded.
    pub rdap_created: Option<SimTime>,
    /// Sponsoring registrar, when known.
    pub registrar: Option<String>,
}

/// The public feed the paper releases: a topic of [`NrdFeedRecord`]s.
pub type NrdFeed = Topic<NrdFeedRecord>;

/// Capacity for archive-shaped feeds whose consumers drain once at the
/// end of a run (the experiment's released zonestream artifact): large
/// enough to hold every NRD of a paper-scale window, while still
/// bounding a runaway publisher. Live consumers that poll as they go
/// are fine with [`DEFAULT_TOPIC_CAPACITY`].
pub const ARTIFACT_FEED_CAPACITY: usize = 1 << 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_subscribe_round_trip() {
        let topic: Topic<u32> = Topic::new();
        let sub = topic.subscribe();
        topic.publish(1);
        topic.publish(2);
        assert_eq!(sub.drain(), vec![1, 2]);
        assert_eq!(topic.published_count(), 2);
    }

    #[test]
    fn subscribers_only_see_messages_after_joining() {
        let topic: Topic<u32> = Topic::new();
        topic.publish(1);
        let sub = topic.subscribe();
        topic.publish(2);
        assert_eq!(sub.drain(), vec![2]);
    }

    #[test]
    fn multiple_subscribers_each_get_everything() {
        let topic: Topic<&'static str> = Topic::new();
        let a = topic.subscribe();
        let b = topic.subscribe();
        topic.publish("x");
        assert_eq!(a.drain(), vec!["x"]);
        assert_eq!(b.drain(), vec!["x"]);
        assert_eq!(topic.subscriber_count(), 2);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let topic: Topic<u32> = Topic::new();
        {
            let _sub = topic.subscribe();
        }
        topic.publish(5); // send fails; subscriber pruned
        assert_eq!(topic.subscriber_count(), 0);
    }

    #[test]
    fn try_next_on_empty_is_none() {
        let topic: Topic<u32> = Topic::new();
        let sub = topic.subscribe();
        assert_eq!(sub.try_next(), None);
    }

    #[test]
    fn full_subscriber_lags_and_counts_drops() {
        let topic: Topic<u32> = Topic::with_config(3, OverflowPolicy::Lag);
        let sub = topic.subscribe();
        for i in 0..10 {
            topic.publish(i);
        }
        // The first 3 fit; the rest were dropped for this subscriber.
        assert_eq!(sub.drain(), vec![0, 1, 2]);
        assert_eq!(sub.dropped_count(), 7);
        assert_eq!(topic.published_count(), 10);
        assert_eq!(topic.subscriber_count(), 1, "lagging subscriber stays registered");
    }

    #[test]
    fn draining_heals_a_lagging_subscriber() {
        let topic: Topic<u32> = Topic::with_config(2, OverflowPolicy::Lag);
        let sub = topic.subscribe();
        topic.publish(1);
        topic.publish(2);
        topic.publish(3); // dropped
        assert_eq!(sub.drain(), vec![1, 2]);
        topic.publish(4); // fits again after the drain
        assert_eq!(sub.drain(), vec![4]);
        assert_eq!(sub.dropped_count(), 1);
    }

    #[test]
    fn evict_policy_removes_slow_subscribers() {
        let topic: Topic<u32> = Topic::with_config(1, OverflowPolicy::Evict);
        let slow = topic.subscribe();
        let fast = topic.subscribe();
        topic.publish(1);
        fast.drain();
        topic.publish(2); // slow still holds 1 -> evicted
        assert_eq!(topic.subscriber_count(), 1);
        assert_eq!(slow.drain(), vec![1], "evicted subscriber keeps what it had");
        assert_eq!(fast.drain(), vec![2]);
        topic.publish(3);
        assert_eq!(slow.try_next(), None, "nothing delivered after eviction");
        assert_eq!(fast.drain(), vec![3]);
    }

    #[test]
    fn independent_drop_counters_per_subscriber() {
        let topic: Topic<u32> = Topic::with_config(1, OverflowPolicy::Lag);
        let busy = topic.subscribe();
        let idle = topic.subscribe();
        topic.publish(1);
        busy.drain();
        topic.publish(2); // idle is full, busy is not
        assert_eq!(busy.dropped_count(), 0);
        assert_eq!(idle.dropped_count(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Topic::<u32>::with_config(0, OverflowPolicy::Lag);
    }

    #[test]
    fn feed_record_serializes() {
        let rec = NrdFeedRecord {
            domain: DomainName::parse("example.com").unwrap(),
            detected_at: SimTime::from_secs(100),
            rdap_created: Some(SimTime::from_secs(40)),
            registrar: Some("GoDaddy".into()),
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("example.com"));
        assert!(json.contains("GoDaddy"));
    }
}
