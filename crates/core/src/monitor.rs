//! Step 3: reactive monitoring of candidates.
//!
//! Thin orchestration over the measurement substrate: every candidate is
//! assigned to a worker and monitored for 48 hours from detection. The
//! per-domain [`MonitorReport`]s feed lifetime estimation (Figure 2), the
//! NS-stability statistic (§4.1) and the hosting tables (4 and 5).

use crate::detector::NrdCandidate;
use darkdns_measure::authoritative::TldAuthority;
use darkdns_measure::resolver::CachingResolver;
use darkdns_measure::worker::{MonitorPool, MonitorReport};
use darkdns_registry::hosting::HostingLandscape;
use darkdns_registry::universe::Universe;
use darkdns_sim::time::SimDuration;

/// Runs Step 3 over all candidates.
pub struct Monitor<'a> {
    authority: TldAuthority<'a>,
    resolver: CachingResolver<'a>,
    pool: MonitorPool,
}

impl<'a> Monitor<'a> {
    pub fn new(universe: &'a Universe, landscape: &'a HostingLandscape) -> Self {
        Monitor {
            authority: TldAuthority::new(universe, landscape),
            resolver: CachingResolver::new(universe, landscape, SimDuration::from_secs(60)),
            pool: MonitorPool::paper_pool(),
        }
    }

    pub fn monitor_one(&mut self, candidate: &NrdCandidate) -> MonitorReport {
        self.pool.monitor(
            &self.authority,
            &mut self.resolver,
            candidate.record,
            &candidate.domain,
            candidate.detected_at,
        )
    }

    pub fn monitor_all(&mut self, candidates: &[NrdCandidate]) -> Vec<MonitorReport> {
        candidates.iter().map(|c| self.monitor_one(c)).collect()
    }

    /// Resolver cache statistics (for the resolver bench and sanity
    /// checks).
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.resolver.hits(), self.resolver.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkdns_dns::DomainName;
    use darkdns_registry::hosting::ProviderId;
    use darkdns_registry::registrar::RegistrarId;
    use darkdns_registry::tld::TldId;
    use darkdns_registry::universe::{CertTiming, DomainId, DomainKind, DomainRecord};
    use darkdns_sim::time::SimTime;

    fn universe() -> Universe {
        let mut u = Universe::new();
        u.push(DomainRecord {
            id: DomainId(0),
            name: DomainName::parse("t.com").unwrap(),
            tld: TldId(0),
            kind: DomainKind::Transient,
            created: SimTime::from_hours(100),
            zone_insert: SimTime::from_hours(100),
            removed: Some(SimTime::from_hours(106)),
            registrar: RegistrarId(0),
            dns_provider: ProviderId(0),
            web_asn: 13_335,
            cert_timing: CertTiming::Prompt,
            cert_hint: None,
            ns_change_at: None,
            malicious: true,
        });
        u
    }

    #[test]
    fn monitoring_brackets_the_death() {
        let u = universe();
        let l = HostingLandscape::paper_landscape();
        let mut m = Monitor::new(&u, &l);
        let candidate = NrdCandidate {
            domain: DomainName::parse("t.com").unwrap(),
            record: DomainId(0),
            detected_at: SimTime::from_hours(100) + SimDuration::from_minutes(40),
        };
        let report = m.monitor_one(&candidate);
        assert!(report.observed_death());
        let death = SimTime::from_hours(106);
        assert!(report.last_ns_ok.unwrap() < death);
        assert!(report.first_nxdomain.unwrap() >= death);
        let (hits, misses) = m.cache_stats();
        assert_eq!(hits + misses, 1); // exactly one A probe per domain
    }

    #[test]
    fn batch_monitoring_produces_one_report_each() {
        let u = universe();
        let l = HostingLandscape::paper_landscape();
        let mut m = Monitor::new(&u, &l);
        let c = NrdCandidate {
            domain: DomainName::parse("t.com").unwrap(),
            record: DomainId(0),
            detected_at: SimTime::from_hours(101),
        };
        let reports = m.monitor_all(&[c.clone(), c]);
        assert_eq!(reports.len(), 2);
    }
}
