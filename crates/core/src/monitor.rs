//! Step 3: reactive monitoring of candidates.
//!
//! Thin orchestration over the measurement substrate: every candidate is
//! assigned to a worker and monitored for 48 hours from detection. The
//! per-domain [`MonitorReport`]s feed lifetime estimation (Figure 2), the
//! NS-stability statistic (§4.1) and the hosting tables (4 and 5).
//!
//! The monitor is generic over the zone view
//! ([`crate::membership::ZoneMembership`]): alongside the active
//! A/AAAA/NS probes it asks the view whether each candidate ever became
//! zone-visible by the end of its monitoring window. That consumer-side
//! staleness accounting ([`MonitorZoneStats`]) is the early-warning
//! version of the Step-5 transient classification — a candidate the
//! zone view never confirms is transient-shaped long before the ±3-day
//! snapshot slack elapses, and at RZU freshness the signal arrives
//! within one push interval.

use crate::detector::NrdCandidate;
use crate::membership::ZoneMembership;
use darkdns_measure::authoritative::TldAuthority;
use darkdns_measure::probe::MONITOR_HORIZON;
use darkdns_measure::resolver::CachingResolver;
use darkdns_measure::worker::{MonitorPool, MonitorReport};
use darkdns_registry::hosting::HostingLandscape;
use darkdns_registry::universe::Universe;
use darkdns_sim::time::SimDuration;

/// Consumer-side zone-visibility accounting over the monitored
/// candidates, as answered by the monitor's membership backend at the
/// probe horizon (`darkdns_measure::probe::MONITOR_HORIZON`, the same
/// 48 h the active probes run for).
///
/// Zone views only move forward (`advance_to` is monotonic), so the
/// check answers at the *later* of the candidate's monitoring-window
/// end and wherever the view already stands — e.g. after a batch
/// detection pass, at the detection horizon. The stat is therefore
/// "was the candidate zone-visible when the view (at least) reached
/// its window end", uniformly for every backend.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MonitorZoneStats {
    /// Candidates the zone view confirmed visible.
    pub confirmed_in_view: u64,
    /// Candidates the zone view never confirmed — transient-shaped at
    /// this backend's freshness.
    pub never_in_view: u64,
}

/// Runs Step 3 over all candidates.
pub struct Monitor<'a, M: ZoneMembership> {
    authority: TldAuthority<'a>,
    resolver: CachingResolver<'a>,
    pool: MonitorPool,
    membership: M,
    zone_stats: MonitorZoneStats,
}

impl<'a, M: ZoneMembership> Monitor<'a, M> {
    pub fn new(universe: &'a Universe, landscape: &'a HostingLandscape, membership: M) -> Self {
        Monitor {
            authority: TldAuthority::new(universe, landscape),
            resolver: CachingResolver::new(universe, landscape, SimDuration::from_secs(60)),
            pool: MonitorPool::paper_pool(),
            membership,
            zone_stats: MonitorZoneStats::default(),
        }
    }

    pub fn monitor_one(&mut self, candidate: &NrdCandidate) -> MonitorReport {
        let report = self.pool.monitor(
            &self.authority,
            &mut self.resolver,
            candidate.record,
            &candidate.domain,
            candidate.detected_at,
        );
        // Zone-visibility check at the probe horizon. `advance_to` is
        // monotonic, so a view the detector already carried further
        // simply answers at its present boundary (see
        // [`MonitorZoneStats`] for the exact semantics).
        self.membership.advance_to(candidate.detected_at + MONITOR_HORIZON);
        if self.membership.contains_anywhere(&candidate.domain) {
            self.zone_stats.confirmed_in_view += 1;
        } else {
            self.zone_stats.never_in_view += 1;
        }
        report
    }

    pub fn monitor_all(&mut self, candidates: &[NrdCandidate]) -> Vec<MonitorReport> {
        candidates.iter().map(|c| self.monitor_one(c)).collect()
    }

    /// Zone-visibility accounting across everything monitored so far.
    pub fn zone_stats(&self) -> MonitorZoneStats {
        self.zone_stats
    }

    /// The zone view the monitor consults.
    pub fn membership(&self) -> &M {
        &self.membership
    }

    /// Resolver cache statistics (for the resolver bench and sanity
    /// checks).
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.resolver.hits(), self.resolver.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkdns_dns::DomainName;
    use darkdns_registry::hosting::ProviderId;
    use darkdns_registry::live::UniverseZoneView;
    use darkdns_registry::registrar::RegistrarId;
    use darkdns_registry::tld::TldId;
    use darkdns_registry::universe::{CertTiming, DomainId, DomainKind, DomainRecord};
    use darkdns_sim::time::SimTime;

    fn universe() -> Universe {
        let mut u = Universe::new();
        u.push(DomainRecord {
            id: DomainId(0),
            name: DomainName::parse("t.com").unwrap(),
            tld: TldId(0),
            kind: DomainKind::Transient,
            created: SimTime::from_hours(100),
            zone_insert: SimTime::from_hours(100),
            removed: Some(SimTime::from_hours(106)),
            registrar: RegistrarId(0),
            dns_provider: ProviderId(0),
            web_asn: 13_335,
            cert_timing: CertTiming::Prompt,
            cert_hint: None,
            ns_change_at: None,
            malicious: true,
        });
        u
    }

    fn view(u: &Universe) -> UniverseZoneView<'_> {
        UniverseZoneView::new(u, &[TldId(0)], SimTime::ZERO, SimDuration::from_minutes(5))
    }

    #[test]
    fn monitoring_brackets_the_death() {
        let u = universe();
        let l = HostingLandscape::paper_landscape();
        let mut m = Monitor::new(&u, &l, view(&u));
        let candidate = NrdCandidate {
            domain: DomainName::parse("t.com").unwrap(),
            record: DomainId(0),
            detected_at: SimTime::from_hours(100) + SimDuration::from_minutes(40),
        };
        let report = m.monitor_one(&candidate);
        assert!(report.observed_death());
        let death = SimTime::from_hours(106);
        assert!(report.last_ns_ok.unwrap() < death);
        assert!(report.first_nxdomain.unwrap() >= death);
        let (hits, misses) = m.cache_stats();
        assert_eq!(hits + misses, 1); // exactly one A probe per domain
        // The domain died before the monitoring window closed: by then
        // the zone view no longer confirms it.
        assert_eq!(m.zone_stats(), MonitorZoneStats { confirmed_in_view: 0, never_in_view: 1 });
    }

    #[test]
    fn batch_monitoring_produces_one_report_each() {
        let u = universe();
        let l = HostingLandscape::paper_landscape();
        let mut m = Monitor::new(&u, &l, view(&u));
        let c = NrdCandidate {
            domain: DomainName::parse("t.com").unwrap(),
            record: DomainId(0),
            detected_at: SimTime::from_hours(101),
        };
        let reports = m.monitor_all(&[c.clone(), c]);
        assert_eq!(reports.len(), 2);
        let zs = m.zone_stats();
        assert_eq!(zs.confirmed_in_view + zs.never_in_view, 2);
    }

    #[test]
    fn long_lived_candidates_are_confirmed_by_the_view() {
        let mut u = Universe::new();
        u.push(DomainRecord {
            id: DomainId(0),
            name: DomainName::parse("keeper.com").unwrap(),
            tld: TldId(0),
            kind: DomainKind::LongLived,
            created: SimTime::from_hours(100),
            zone_insert: SimTime::from_hours(100),
            removed: None,
            registrar: RegistrarId(0),
            dns_provider: ProviderId(0),
            web_asn: 13_335,
            cert_timing: CertTiming::Prompt,
            cert_hint: None,
            ns_change_at: None,
            malicious: false,
        });
        let l = HostingLandscape::paper_landscape();
        let mut m = Monitor::new(&u, &l, view(&u));
        let c = NrdCandidate {
            domain: DomainName::parse("keeper.com").unwrap(),
            record: DomainId(0),
            detected_at: SimTime::from_hours(100),
        };
        m.monitor_one(&c);
        assert_eq!(m.zone_stats(), MonitorZoneStats { confirmed_in_view: 1, never_in_view: 0 });
    }
}
