//! Steps 2 and 4: RDAP collection and cross-validation.
//!
//! Each candidate gets exactly one RDAP query, enqueued shortly after
//! detection (the stream-consumer lag is modelled as a log-normal delay).
//! A successful response yields the *detection latency* — the difference
//! between the certstream timestamp and the RDAP creation time, Figure 1's
//! metric — and drives the misclassification filter: a creation date
//! before the observation window means the name is not newly registered
//! at all (re-registration or SLD misextraction).

use crate::detector::NrdCandidate;
use darkdns_rdap::client::RdapClient;
use darkdns_rdap::model::{RdapError, RdapResponse};
use darkdns_rdap::server::RdapDirectory;
use darkdns_sim::dist::LogNormal;
use darkdns_sim::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;

/// A candidate with its RDAP outcome attached.
#[derive(Debug, Clone)]
pub struct ValidatedCandidate {
    pub candidate: NrdCandidate,
    pub queried_at: SimTime,
    pub rdap: Result<RdapResponse, RdapError>,
}

impl ValidatedCandidate {
    /// Detection latency: CT sighting minus RDAP creation, in seconds.
    /// `None` without a successful RDAP response. Negative deltas (clock
    /// skew between CT and registry) clamp to zero.
    pub fn detection_latency_secs(&self) -> Option<u64> {
        let resp = self.rdap.as_ref().ok()?;
        Some(self.candidate.detected_at.saturating_since(resp.created).as_secs())
    }

    /// The Step-4 misclassification filter: RDAP succeeded but the
    /// creation date predates the observation window, so the "new domain"
    /// inference was wrong.
    pub fn is_misclassified(&self, window_start: SimTime) -> bool {
        match &self.rdap {
            Ok(resp) => resp.created < window_start,
            Err(_) => false,
        }
    }

    /// Paper's validation criterion: RDAP and CT timestamps consistent
    /// within 24 hours.
    pub fn is_consistent(&self) -> bool {
        matches!(self.detection_latency_secs(), Some(d) if d <= 86_400)
    }
}

/// Step-2/4 runner.
pub struct Validator<'a, 'u> {
    directory: &'a mut RdapDirectory<'u>,
    client: RdapClient,
    queue_delay: LogNormal,
    rng: SmallRng,
}

impl<'a, 'u> Validator<'a, 'u> {
    pub fn new(
        directory: &'a mut RdapDirectory<'u>,
        client: RdapClient,
        queue_median_secs: f64,
        rng: SmallRng,
    ) -> Self {
        Validator {
            directory,
            client,
            queue_delay: LogNormal::from_median(queue_median_secs.max(1.0), 0.8),
            rng,
        }
    }

    /// Collect RDAP for one candidate.
    pub fn validate(&mut self, candidate: NrdCandidate) -> ValidatedCandidate {
        let delay = self.queue_delay.sample(&mut self.rng).min(6.0 * 3_600.0) as u64;
        let earliest = candidate.detected_at + SimDuration::from_secs(delay);
        let collection = self.client.collect(self.directory, &candidate.domain, earliest);
        ValidatedCandidate {
            candidate,
            queried_at: collection.queried_at,
            rdap: collection.outcome,
        }
    }

    /// Collect RDAP for a batch, in order.
    pub fn validate_all(&mut self, candidates: Vec<NrdCandidate>) -> Vec<ValidatedCandidate> {
        candidates.into_iter().map(|c| self.validate(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkdns_dns::DomainName;
    use darkdns_registry::universe::DomainId;

    fn candidate(domain: &str, detected_secs: u64) -> NrdCandidate {
        NrdCandidate {
            domain: DomainName::parse(domain).unwrap(),
            record: DomainId(0),
            detected_at: SimTime::from_secs(detected_secs),
        }
    }

    fn ok_response(created_secs: u64) -> Result<RdapResponse, RdapError> {
        Ok(RdapResponse {
            domain: DomainName::parse("a.com").unwrap(),
            created: SimTime::from_secs(created_secs),
            registrar: "GoDaddy".into(),
            registrar_iana: 146,
            statuses: vec![],
        })
    }

    #[test]
    fn latency_is_ct_minus_rdap() {
        let v = ValidatedCandidate {
            candidate: candidate("a.com", 10_000),
            queried_at: SimTime::from_secs(10_100),
            rdap: ok_response(8_000),
        };
        assert_eq!(v.detection_latency_secs(), Some(2_000));
        assert!(v.is_consistent());
    }

    #[test]
    fn failed_rdap_has_no_latency() {
        let v = ValidatedCandidate {
            candidate: candidate("a.com", 10_000),
            queried_at: SimTime::from_secs(10_100),
            rdap: Err(RdapError::NotFound),
        };
        assert_eq!(v.detection_latency_secs(), None);
        assert!(!v.is_consistent());
        assert!(!v.is_misclassified(SimTime::from_secs(0)));
    }

    #[test]
    fn old_creation_date_is_misclassified() {
        let window_start = SimTime::from_days(400);
        let v = ValidatedCandidate {
            candidate: candidate("a.com", 400 * 86_400 + 10_000),
            queried_at: SimTime::from_secs(400 * 86_400 + 10_100),
            rdap: ok_response(100 * 86_400),
        };
        assert!(v.is_misclassified(window_start));
        assert!(!v.is_consistent()); // months-old creation is inconsistent
    }

    #[test]
    fn day_plus_latency_is_inconsistent_but_not_misclassified() {
        let window_start = SimTime::from_secs(0);
        let v = ValidatedCandidate {
            candidate: candidate("a.com", 3 * 86_400),
            queried_at: SimTime::from_secs(3 * 86_400 + 60),
            rdap: ok_response(86_400), // detected 2 days after creation
        };
        assert!(!v.is_consistent());
        assert!(!v.is_misclassified(window_start));
        assert_eq!(v.detection_latency_secs(), Some(2 * 86_400));
    }

    #[test]
    fn negative_delta_clamps_to_zero() {
        // CT sighting before the RDAP-reported creation (registry clock
        // ahead): clamp rather than underflow.
        let v = ValidatedCandidate {
            candidate: candidate("a.com", 1_000),
            queried_at: SimTime::from_secs(1_100),
            rdap: ok_response(1_500),
        };
        assert_eq!(v.detection_latency_secs(), Some(0));
    }
}
