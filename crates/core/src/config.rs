//! Experiment configuration and presets.

use darkdns_intel::blocklist::BlocklistConfig;
use darkdns_intel::nod::NodConfig;
use darkdns_rdap::server::RdapConfig;
use darkdns_registry::tld::{nl_cctld, paper_gtlds, TldConfig};
use darkdns_registry::workload::WorkloadConfig;
use darkdns_sim::time::SimDuration;

/// Everything an [`crate::experiment::Experiment`] needs.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Master seed: two runs with equal configs and seeds are identical.
    pub seed: u64,
    pub tlds: Vec<TldConfig>,
    pub workload: WorkloadConfig,
    pub rdap: RdapConfig,
    pub blocklists: BlocklistConfig,
    pub nod: NodConfig,
    /// Delay between CT detection and the RDAP query being enqueued
    /// (stream consumer lag), median seconds.
    pub rdap_queue_median_secs: f64,
    /// Day (window-relative) used for the one-day NOD comparison (§4.4
    /// used 9 May 2024; any mid-window day works here).
    pub nod_comparison_day: u64,
}

impl ExperimentConfig {
    /// The paper-shaped experiment at 1% volume: 92 days, all gTLDs plus
    /// the `.nl` ground-truth ccTLD. Runs in seconds in release mode.
    pub fn paper(seed: u64) -> Self {
        let mut tlds = paper_gtlds();
        tlds.push(nl_cctld());
        ExperimentConfig {
            seed,
            tlds,
            workload: WorkloadConfig { scale: 0.01, ..WorkloadConfig::default() },
            rdap: RdapConfig::default(),
            blocklists: BlocklistConfig::default(),
            nod: NodConfig::default(),
            rdap_queue_median_secs: 300.0,
            nod_comparison_day: 46,
        }
    }

    /// A scaled-down universe for tests, doctests and quick examples:
    /// a handful of simulated days at reduced volume.
    pub fn small(seed: u64) -> Self {
        let mut cfg = Self::paper(seed);
        cfg.workload.scale = 0.004;
        cfg.workload.window_days = 12;
        cfg.workload.base_population_frac = 0.02;
        cfg.nod_comparison_day = 6;
        cfg
    }

    /// Heavier run for bench binaries (still scaled; the full-magnitude
    /// run would generate ~23M records).
    pub fn bench(seed: u64) -> Self {
        let mut cfg = Self::paper(seed);
        cfg.workload.scale = 0.02;
        cfg
    }

    pub fn window_days(&self) -> u64 {
        self.workload.window_days
    }

    /// ±3-day transient slack plus the window itself — how long the
    /// simulation horizon must be.
    pub fn horizon(&self) -> SimDuration {
        SimDuration::from_days(self.workload.window_days + 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_includes_nl() {
        let cfg = ExperimentConfig::paper(1);
        assert!(cfg.tlds.iter().any(|t| t.name == "nl"));
        assert!(cfg.tlds.iter().any(|t| t.name == "com"));
        assert_eq!(cfg.window_days(), 92);
    }

    #[test]
    fn small_config_is_small() {
        let cfg = ExperimentConfig::small(1);
        assert!(cfg.window_days() < 20);
        assert!(cfg.workload.scale < 0.01);
        assert!(cfg.nod_comparison_day < cfg.window_days());
    }

    #[test]
    fn seeds_propagate() {
        assert_eq!(ExperimentConfig::paper(7).seed, 7);
    }
}
