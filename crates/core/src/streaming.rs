//! The streaming deployment shape of the pipeline.
//!
//! The paper's infrastructure is a set of stream processors glued by Kafka
//! topics: certstream entries flow in; NRD candidates, RDAP collections
//! and monitor triggers flow between stages. [`crate::experiment`] runs
//! the same logic as a batch (simpler to evaluate); this module runs it
//! through actual [`crate::feed::Topic`]s, stage by stage, and is used by
//! the examples that demonstrate feed consumption. A test pins that the
//! streaming and batch deployments produce identical candidate sets.

use crate::detector::{Detector, NrdCandidate};
use crate::feed::Topic;
use crate::membership::ZoneMembership;
use crate::validate::{ValidatedCandidate, Validator};
use darkdns_ct::stream::CertStreamEntry;
use darkdns_dns::PublicSuffixList;
use darkdns_rdap::client::RdapClient;
use darkdns_rdap::server::RdapDirectory;
use darkdns_registry::universe::Universe;
use rand::rngs::SmallRng;

/// The wired topics of a streaming deployment.
pub struct StreamingPipeline {
    /// Raw certificate entries, as Certstream delivers them.
    pub certstream: Topic<CertStreamEntry>,
    /// Step-1 output: deduplicated NRD candidates.
    pub candidates: Topic<NrdCandidate>,
}

/// Counters of one streaming run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamingStats {
    pub entries_in: u64,
    pub candidates_out: u64,
    pub rdap_ok: u64,
    pub rdap_failed: u64,
}

impl StreamingPipeline {
    pub fn new() -> Self {
        // Both topics serve run-once archive consumers (subscribe up
        // front, drain after the run), so they get the artifact
        // capacity rather than the live-consumer default — a big run
        // must not silently truncate what such a subscriber sees.
        StreamingPipeline {
            certstream: Topic::with_config(
                crate::feed::ARTIFACT_FEED_CAPACITY,
                crate::feed::OverflowPolicy::Lag,
            ),
            candidates: Topic::with_config(
                crate::feed::ARTIFACT_FEED_CAPACITY,
                crate::feed::OverflowPolicy::Lag,
            ),
        }
    }

    /// Pump `entries` through detector and validator stages, publishing on
    /// the way. Generic over the zone view, like every pipeline stage:
    /// the test runs it against the snapshot oracle, a streaming
    /// deployment hands it a broker- or socket-fed view. Returns the
    /// validated candidates plus run counters.
    #[allow(clippy::too_many_arguments)]
    pub fn run<M: ZoneMembership>(
        &self,
        entries: &[CertStreamEntry],
        psl: &PublicSuffixList,
        membership: M,
        universe: &Universe,
        directory: &mut RdapDirectory<'_>,
        client: RdapClient,
        rdap_queue_median_secs: f64,
        validator_rng: SmallRng,
    ) -> (Vec<ValidatedCandidate>, StreamingStats) {
        let mut stats = StreamingStats::default();
        let mut detector = Detector::new(psl, universe, membership);
        let mut validator = Validator::new(directory, client, rdap_queue_median_secs, validator_rng);
        let candidate_sub = self.candidates.subscribe();
        let mut validated = Vec::new();

        for entry in entries {
            stats.entries_in += 1;
            self.certstream.publish(entry.clone());
            // Stage 1: detection.
            for candidate in detector.observe(entry) {
                self.candidates.publish(candidate);
            }
            // Stage 2: RDAP collection, consuming the candidate topic.
            while let Some(candidate) = candidate_sub.try_next() {
                stats.candidates_out += 1;
                let v = validator.validate(candidate);
                if v.rdap.is_ok() {
                    stats.rdap_ok += 1;
                } else {
                    stats.rdap_failed += 1;
                }
                validated.push(v);
            }
        }
        (validated, stats)
    }
}

impl Default for StreamingPipeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::membership::OracleMembership;
    use darkdns_ct::ca::CaFleet;
    use darkdns_ct::stream::CertStream;
    use darkdns_rdap::server::RdapConfig;
    use darkdns_registry::czds::{SnapshotOracle, SnapshotSchedule};
    use darkdns_registry::hosting::HostingLandscape;
    use darkdns_registry::registrar::RegistrarFleet;
    use darkdns_registry::workload::UniverseBuilder;
    use darkdns_sim::rng::RngPool;

    #[test]
    fn streaming_equals_batch_detection() {
        let cfg = ExperimentConfig::small(31);
        let pool = RngPool::new(cfg.seed);
        let fleet = RegistrarFleet::paper_fleet();
        let hosting = HostingLandscape::paper_landscape();
        let schedule = SnapshotSchedule::new(
            &pool,
            &cfg.tlds,
            cfg.workload.window_start,
            cfg.workload.window_days,
        );
        let universe = UniverseBuilder {
            tlds: &cfg.tlds,
            fleet: &fleet,
            hosting: &hosting,
            schedule: &schedule,
            config: cfg.workload.clone(),
        }
        .build(&pool);
        let (stream, _) = CertStream::build(&universe, &schedule, &CaFleet::paper_fleet(), &pool);
        let psl = PublicSuffixList::builtin();
        let oracle = SnapshotOracle::new(&schedule);

        // Batch detection.
        let mut batch_detector =
            Detector::new(&psl, &universe, OracleMembership::new(&oracle, &universe));
        let batch: Vec<NrdCandidate> = batch_detector.run(stream.entries());

        // Streaming detection + validation.
        let mut directory = RdapDirectory::new(&universe, &fleet, RdapConfig::default(), &pool);
        let pipeline = StreamingPipeline::new();
        let certstream_sub = pipeline.certstream.subscribe();
        let (validated, stats) = pipeline.run(
            stream.entries(),
            &psl,
            OracleMembership::new(&oracle, &universe),
            &universe,
            &mut directory,
            RdapClient::paper_client(),
            cfg.rdap_queue_median_secs,
            pool.stream("core.validator"),
        );

        assert_eq!(stats.entries_in, stream.len() as u64);
        assert_eq!(certstream_sub.drain().len(), stream.len());
        assert_eq!(stats.candidates_out as usize, batch.len());
        assert_eq!(validated.len(), batch.len());
        for (streamed, batched) in validated.iter().zip(&batch) {
            assert_eq!(&streamed.candidate, batched);
        }
        assert_eq!(stats.rdap_ok + stats.rdap_failed, stats.candidates_out);
        assert!(stats.rdap_ok > stats.rdap_failed, "RDAP mostly succeeds on NRDs");
    }
}
