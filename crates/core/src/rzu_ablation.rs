//! The RZU cadence ablation — §5's argument, quantified.
//!
//! The paper argues that a Rapid Zone Update service (Verisign's historical
//! 5-minute pushes) would close the transient-domain blind spot that daily
//! snapshots leave. This module sweeps the consumer-visible zone-state
//! cadence from one minute to one day and measures, against ground truth:
//!
//! * **transient capture** — the fraction of true transient registrations
//!   visible at that cadence (daily ≈ 0% by construction; 5 min ≈ all);
//! * **median reveal latency** — how long after zone insertion a consumer
//!   first sees a new domain.

use crate::membership::ZoneMembership;
use darkdns_registry::rzu::first_visible_at_cadence;
use darkdns_registry::universe::{DomainKind, Universe};
use darkdns_sim::cdf::Cdf;
use darkdns_sim::time::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::HashSet;

/// Results for one cadence.
#[derive(Debug, Clone, Serialize)]
pub struct CadenceRow {
    pub cadence_secs: u64,
    /// True transients visible at this cadence / all true transients.
    pub transient_capture_pct: f64,
    /// Median seconds from zone insertion to first consumer visibility
    /// (over all window registrations that become visible).
    pub median_reveal_latency_secs: u64,
    /// NRDs (non-transient) visible — sanity: should be ~100% everywhere.
    pub nrd_visible_pct: f64,
}

/// The default sweep: 1 min, 5 min (Verisign RZU), 15 min, 1 h, 6 h, 24 h
/// (CZDS).
pub const DEFAULT_CADENCES_SECS: [u64; 6] = [60, 300, 900, 3_600, 21_600, 86_400];

/// Run the sweep over ground truth.
pub fn sweep(universe: &Universe, window_start: SimTime, cadences: &[u64]) -> Vec<CadenceRow> {
    let anchor = window_start;
    cadences
        .iter()
        .map(|&cadence_secs| {
            let cadence = SimDuration::from_secs(cadence_secs);
            let mut transient_total = 0u64;
            let mut transient_visible = 0u64;
            let mut nrd_total = 0u64;
            let mut nrd_visible = 0u64;
            let mut latencies: Vec<f64> = Vec::new();
            for r in universe.iter() {
                if !r.kind.has_registration() || r.created < window_start {
                    continue;
                }
                let visible = first_visible_at_cadence(r, anchor, cadence);
                match r.kind {
                    DomainKind::Transient => {
                        transient_total += 1;
                        if visible.is_some() {
                            transient_visible += 1;
                        }
                    }
                    DomainKind::LongLived | DomainKind::EarlyRemoved => {
                        nrd_total += 1;
                        if visible.is_some() {
                            nrd_visible += 1;
                        }
                    }
                    _ => continue,
                }
                if let Some(at) = visible {
                    latencies.push(at.saturating_since(r.zone_insert).as_secs() as f64);
                }
            }
            let median = if latencies.is_empty() {
                0
            } else {
                Cdf::from_samples(latencies).median() as u64
            };
            CadenceRow {
                cadence_secs,
                transient_capture_pct: pct(transient_visible, transient_total),
                median_reveal_latency_secs: median,
                nrd_visible_pct: pct(nrd_visible, nrd_total),
            }
        })
        .collect()
}

fn pct(num: u64, denom: u64) -> f64 {
    if denom == 0 {
        0.0
    } else {
        100.0 * num as f64 / denom as f64
    }
}

/// What one *deployed* membership backend actually observed, scored
/// against ground truth — the consumer-side counterpart of [`sweep`],
/// which computes the same capture rates in closed form. `sweep` says
/// what a cadence *could* capture; this says what a concrete
/// [`ZoneMembership`] backend (direct view, broker view, socket view)
/// *did* capture after a run, from its drained zone-NRD log.
#[derive(Debug, Clone, Serialize)]
pub struct ObservedCapture {
    /// Distinct domains the backend's new-domain log surfaced.
    pub domains_observed: u64,
    /// True window transients, and how many of them the backend saw.
    pub transient_total: u64,
    pub transient_observed: u64,
    pub transient_capture_pct: f64,
    /// Window NRDs (long-lived + early-removed), and how many appeared.
    pub nrd_total: u64,
    pub nrd_observed: u64,
    pub nrd_observed_pct: f64,
}

/// Drain `membership`'s zone-NRD log and score it against the ground
/// truth of `universe`'s window registrations. Call after the backend
/// has been driven to the end of the window; draining consumes the log.
pub fn observed_capture<M: ZoneMembership>(
    membership: &mut M,
    universe: &Universe,
    window_start: SimTime,
) -> ObservedCapture {
    let mut names = Vec::new();
    membership.drain_new_domains(&mut names);
    let observed: HashSet<_> = names.iter().copied().collect();
    let mut cap = ObservedCapture {
        domains_observed: observed.len() as u64,
        transient_total: 0,
        transient_observed: 0,
        transient_capture_pct: 0.0,
        nrd_total: 0,
        nrd_observed: 0,
        nrd_observed_pct: 0.0,
    };
    for r in universe.iter() {
        if !r.kind.has_registration() || r.created < window_start {
            continue;
        }
        match r.kind {
            DomainKind::Transient => {
                cap.transient_total += 1;
                if observed.contains(&r.name) {
                    cap.transient_observed += 1;
                }
            }
            DomainKind::LongLived | DomainKind::EarlyRemoved => {
                cap.nrd_total += 1;
                if observed.contains(&r.name) {
                    cap.nrd_observed += 1;
                }
            }
            _ => continue,
        }
    }
    cap.transient_capture_pct = pct(cap.transient_observed, cap.transient_total);
    cap.nrd_observed_pct = pct(cap.nrd_observed, cap.nrd_total);
    cap
}

/// Render the sweep as an aligned text table.
pub fn render(rows: &[CadenceRow]) -> String {
    let mut s = String::from(
        "RZU ablation: zone-state cadence vs transient capture\n\
         cadence    transients-visible  median-reveal  NRDs-visible\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>8}  {:>17.1}%  {:>12}  {:>11.1}%\n",
            SimDuration::from_secs(r.cadence_secs).to_string(),
            r.transient_capture_pct,
            SimDuration::from_secs(r.median_reveal_latency_secs).to_string(),
            r.nrd_visible_pct,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use darkdns_registry::czds::SnapshotSchedule;
    use darkdns_registry::hosting::HostingLandscape;
    use darkdns_registry::registrar::RegistrarFleet;
    use darkdns_registry::workload::UniverseBuilder;
    use darkdns_sim::rng::RngPool;

    fn universe() -> (Universe, SimTime) {
        let cfg = ExperimentConfig::small(3);
        let pool = RngPool::new(cfg.seed);
        let fleet = RegistrarFleet::paper_fleet();
        let hosting = HostingLandscape::paper_landscape();
        let schedule = SnapshotSchedule::new(
            &pool,
            &cfg.tlds,
            cfg.workload.window_start,
            cfg.workload.window_days,
        );
        let builder = UniverseBuilder {
            tlds: &cfg.tlds,
            fleet: &fleet,
            hosting: &hosting,
            schedule: &schedule,
            config: cfg.workload.clone(),
        };
        (builder.build(&pool), cfg.workload.window_start)
    }

    #[test]
    fn finer_cadence_captures_more_transients() {
        let (u, start) = universe();
        let rows = sweep(&u, start, &DEFAULT_CADENCES_SECS);
        assert_eq!(rows.len(), 6);
        for w in rows.windows(2) {
            assert!(
                w[0].transient_capture_pct >= w[1].transient_capture_pct,
                "coarser cadence captured more: {w:?}"
            );
        }
        // 5-minute RZU captures nearly everything; daily captures nothing
        // (transients are between-snapshot by construction).
        assert!(rows[1].transient_capture_pct > 90.0, "{:?}", rows[1]);
        assert!(rows[5].transient_capture_pct < 25.0, "{:?}", rows[5]);
    }

    #[test]
    fn reveal_latency_scales_with_cadence() {
        let (u, start) = universe();
        let rows = sweep(&u, start, &DEFAULT_CADENCES_SECS);
        for r in &rows {
            assert!(
                r.median_reveal_latency_secs <= r.cadence_secs,
                "median reveal beyond one period: {r:?}"
            );
        }
        assert!(rows[0].median_reveal_latency_secs < rows[5].median_reveal_latency_secs);
    }

    #[test]
    fn nrds_are_visible_at_every_cadence() {
        let (u, start) = universe();
        for r in sweep(&u, start, &DEFAULT_CADENCES_SECS) {
            assert!(r.nrd_visible_pct > 99.0, "{r:?}");
        }
    }

    #[test]
    fn render_contains_each_cadence() {
        let (u, start) = universe();
        let rows = sweep(&u, start, &[300, 86_400]);
        let text = render(&rows);
        assert!(text.contains("5m"));
        assert!(text.contains("1d"));
    }

    #[test]
    fn observed_capture_tracks_the_closed_form_sweep() {
        use crate::membership::ZoneMembership;
        use darkdns_registry::live::UniverseZoneView;
        use darkdns_registry::tld::TldId;

        let (u, start) = universe();
        let cfg = ExperimentConfig::small(3);
        let tlds: Vec<TldId> = (0..cfg.tlds.len() as u16).map(TldId).collect();
        let horizon = start + cfg.horizon();
        let rows = sweep(&u, start, &[300, 86_400]);

        let capture_at = |cadence_secs: u64| {
            let mut view =
                UniverseZoneView::new(&u, &tlds, start, SimDuration::from_secs(cadence_secs));
            ZoneMembership::advance_to(&mut view, horizon);
            observed_capture(&mut view, &u, start)
        };
        let rzu = capture_at(300);
        let daily = capture_at(86_400);
        // The deployed view realises the closed-form capture rates
        // (same grid arithmetic, measured instead of computed).
        assert!((rzu.transient_capture_pct - rows[0].transient_capture_pct).abs() < 1e-9);
        assert!((daily.transient_capture_pct - rows[1].transient_capture_pct).abs() < 1e-9);
        assert!(rzu.transient_capture_pct > daily.transient_capture_pct);
        assert!(rzu.nrd_observed_pct > 99.0);
        assert!(rzu.domains_observed >= rzu.transient_observed + rzu.nrd_observed);
    }
}
