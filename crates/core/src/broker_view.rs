//! The broker-backed subscriber path of the pipeline.
//!
//! The batch pipeline answers "is this name already in the zone?" from
//! the [`darkdns_registry::czds::SnapshotOracle`] — ground truth at
//! daily-snapshot granularity. This module is the RZU deployment shape:
//! a [`BrokerZoneView`] subscribes to the distribution broker
//! (`darkdns_broker`), bootstraps each TLD from a checkpoint snapshot,
//! applies the shared delta frames as they arrive, and serves two
//! pipeline needs from the live view:
//!
//! * **membership** — [`BrokerZoneView::contains`], the detector's
//!   "already delegated?" check at push (not daily) freshness;
//! * **zone NRDs** — every delta's `added` section is the
//!   newly-registered-domain population of Table 1's `Zone NRD` column;
//!   the view accumulates them for the ablation comparisons.
//!
//! A view that lags past its buffer bound loses deltas; it detects the
//! serial gap on the next frame, stops applying (a torn zone view is
//! worse than a stale one), and [`BrokerZoneView::resync`] rejoins the
//! broker, which answers with a delta replay or a checkpoint snapshot
//! per the catch-up decision rule. [`BrokerZoneView::resync_count`]
//! exposes how often that recovery path fired, so fleet runs can assert
//! a healthy deployment saw zero gap-resyncs.
//!
//! The contract holds unchanged under the broker's per-shard concurrent
//! publishers: each shard's frames arrive in that shard's serial order
//! (gap detection and application are per-TLD), and only the *interleaving*
//! across TLDs varies run to run. `pump` applies whatever has arrived;
//! a view is converged when [`BrokerZoneView::synced_with`] holds, which
//! publishers stop moving once they are done. Pinned by the threaded
//! convergence proptest in `tests/proptest_broker.rs`.

use darkdns_broker::transport::{
    ClientEvent, FrameConn, SnapshotProgress, TransportClient, TransportError,
};
use darkdns_broker::{Broker, BrokerMessage, BrokerSubscription};
use darkdns_dns::hash::NameMap;
use darkdns_dns::wire::DeltaPush;
use darkdns_dns::{decode_delta_push, DomainName, Serial, ZoneSnapshot};
use darkdns_registry::tld::TldId;

/// A subscriber-side, multi-TLD live zone view.
///
/// The view has two deployment shapes sharing all state and gap logic:
/// **attached** ([`BrokerZoneView::subscribe`]) holds an in-process
/// broker subscription and drains it with [`BrokerZoneView::pump`];
/// **detached** ([`BrokerZoneView::detached`]) holds no subscription
/// and is fed decoded messages by a transport driver (see
/// [`RemoteZoneView`]) through the same `ingest_*` entry points `pump`
/// itself uses.
pub struct BrokerZoneView {
    sub: Option<BrokerSubscription>,
    tlds: Vec<TldId>,
    states: NameMap<TldId, ZoneSnapshot>,
    /// Domains first seen in a delta's `added` section, in arrival order.
    new_domains: Vec<DomainName>,
    frames_applied: u64,
    snapshots_adopted: u64,
    resyncs: u64,
    lost_sync: bool,
}

impl BrokerZoneView {
    /// Subscribe with no prior state: the broker bootstraps every shard
    /// from its checkpoint snapshot (catch-up rule 3).
    pub fn subscribe(broker: &Broker, tlds: &[TldId]) -> Self {
        let mut view = Self::detached(tlds);
        view.sub = Some(broker.subscribe(tlds, None));
        view
    }

    /// A view with no broker subscription, fed by a transport driver.
    pub fn detached(tlds: &[TldId]) -> Self {
        BrokerZoneView {
            sub: None,
            tlds: tlds.to_vec(),
            states: NameMap::default(),
            new_domains: Vec::new(),
            frames_applied: 0,
            snapshots_adopted: 0,
            resyncs: 0,
            lost_sync: false,
        }
    }

    /// Adopt `snapshot` as `tld`'s state (a bootstrap or rule-3
    /// catch-up). Always succeeds: a snapshot is self-contained.
    pub fn ingest_snapshot(&mut self, tld: TldId, snapshot: ZoneSnapshot) {
        self.states.insert(tld, snapshot);
        self.snapshots_adopted += 1;
    }

    /// Apply one validated delta push to `tld`'s state. Returns `false`
    /// — and latches [`BrokerZoneView::lost_sync`] — when the push does
    /// not chain (no bootstrap yet, a missed frame, or a duplicate
    /// delivery): a non-chaining delta is **never** applied, which is
    /// the no-double-apply guarantee the transport reconnect relies on.
    pub fn ingest_delta(&mut self, tld: TldId, push: &DeltaPush) -> bool {
        let Some(state) = self.states.get_mut(&tld) else {
            // Delta before any snapshot for this TLD: only possible
            // after losing the bootstrap.
            self.lost_sync = true;
            return false;
        };
        if push.from_serial != state.serial() {
            self.lost_sync = true;
            return false;
        }
        for (domain, _) in &push.delta.added {
            self.new_domains.push(*domain);
        }
        *state = push.delta.apply(state, push.to_serial, push.pushed_at);
        self.frames_applied += 1;
        true
    }

    /// Apply everything queued. Returns the number of messages applied.
    /// Stops early (returning what was applied so far) if a serial gap
    /// is detected; the view then reports [`BrokerZoneView::lost_sync`]
    /// until [`BrokerZoneView::resync`] is called. Detached views have
    /// nothing to pump and return 0.
    ///
    /// Eviction counts as losing sync: an evicted subscriber's queue was
    /// cleared and receives nothing further, so the gap could never be
    /// observed through a next frame — without this check a view under
    /// `OverflowPolicy::Evict` would stall forever looking healthy.
    pub fn pump(&mut self) -> usize {
        let Some(sub) = &self.sub else {
            return 0;
        };
        if sub.is_evicted() {
            self.lost_sync = true;
        }
        if self.lost_sync {
            return 0;
        }
        let mut applied = 0;
        loop {
            let Some(sub) = &self.sub else { break };
            let Some(msg) = sub.try_next() else { break };
            match msg {
                BrokerMessage::Snapshot { tld, snapshot } => {
                    self.ingest_snapshot(tld, snapshot);
                }
                BrokerMessage::Delta { tld, frame } => {
                    let push = decode_delta_push(&frame).expect("broker frames are well-formed");
                    if !self.ingest_delta(tld, &push) {
                        return applied;
                    }
                }
            }
            applied += 1;
        }
        // An eviction racing the drain (a concurrent publisher's
        // overflow decision) is surfaced now, not on the next pump.
        if self.sub.as_ref().is_some_and(|sub| sub.is_evicted()) {
            self.lost_sync = true;
        }
        applied
    }

    /// Record an eviction observed by an external driver (a transport
    /// client or an edge feed pumping a detached view): latches
    /// [`BrokerZoneView::lost_sync`] exactly as [`BrokerZoneView::pump`]
    /// does when its own subscription reports eviction.
    pub fn ingest_eviction(&mut self) {
        self.lost_sync = true;
    }

    /// True once a dropped frame left the view unable to advance.
    pub fn lost_sync(&self) -> bool {
        self.lost_sync
    }

    /// The view's current per-TLD serial claims — exactly what a
    /// (re)subscription or a transport HELLO should carry. Shards the
    /// view is current on (or only slightly behind) then catch up via
    /// the cheap delta-replay path; only shards beyond the retention
    /// ring pay for a snapshot bootstrap.
    pub fn claims(&self) -> Vec<(TldId, Option<Serial>)> {
        self.tlds.iter().map(|&t| (t, self.serial(t))).collect()
    }

    /// Record a completed resync-from-claims: clears the lost-sync latch
    /// and counts the recovery. Callers (in-process
    /// [`BrokerZoneView::resync`], the transport's [`RemoteZoneView`])
    /// invoke this only once the replacement subscription/connection is
    /// actually established, so a failed reconnect attempt is never
    /// counted as a heal.
    pub fn note_resynced(&mut self) {
        self.resyncs += 1;
        self.lost_sync = false;
    }

    /// Rejoin the broker, claiming the view's actual per-TLD serials
    /// ([`BrokerZoneView::claims`]). Queued-but-unapplied messages from
    /// the old subscription are discarded (the catch-up replaces them).
    pub fn resync(&mut self, broker: &Broker) {
        // Views with no serial (never bootstrapped) get a snapshot; the
        // rest keep their state and continue from their claimed serial.
        self.sub = Some(broker.subscribe_with(&self.claims()));
        self.note_resynced();
    }

    /// Times this view had to rejoin the broker to heal a gap. Zero in a
    /// deployment whose buffers never overflow.
    pub fn resync_count(&self) -> u64 {
        self.resyncs
    }

    /// Is `domain` currently delegated in `tld`'s view?
    pub fn contains(&self, tld: TldId, domain: &DomainName) -> bool {
        self.states.get(&tld).is_some_and(|s| s.contains(domain))
    }

    /// Is `domain` delegated in any subscribed TLD's view?
    pub fn contains_anywhere(&self, domain: &DomainName) -> bool {
        self.states.values().any(|s| s.contains(domain))
    }

    /// The view's serial for `tld` (None before the bootstrap arrived).
    pub fn serial(&self, tld: TldId) -> Option<Serial> {
        self.states.get(&tld).map(|s| s.serial())
    }

    /// Delegation count for `tld`.
    pub fn len(&self, tld: TldId) -> Option<usize> {
        self.states.get(&tld).map(|s| s.len())
    }

    /// The view's snapshot of `tld`, if bootstrapped.
    pub fn snapshot(&self, tld: TldId) -> Option<&ZoneSnapshot> {
        self.states.get(&tld)
    }

    /// Append-and-clear the accumulated zone-NRD log (delta `added`
    /// domains, arrival order) into `out`. Drain-style on purpose: the
    /// internal buffer keeps its capacity and `out` is caller-reused,
    /// so the pump → drain hot loop allocates nothing at steady state
    /// (the old `take_new_domains` handed out a fresh `Vec` per call).
    pub fn drain_new_domains(&mut self, out: &mut Vec<DomainName>) {
        out.append(&mut self.new_domains);
    }

    /// The health probe of the [`crate::membership::ZoneMembership`]
    /// contract: ready only when every subscribed TLD is bootstrapped
    /// and no gap is outstanding.
    pub fn sync_state(&self) -> crate::membership::SyncState {
        use crate::membership::{SyncHealth, SyncState};
        let ready = self.tlds.iter().filter(|t| self.states.get(t).is_some()).count();
        let health = if self.lost_sync {
            SyncHealth::LostSync
        } else if ready < self.tlds.len() {
            SyncHealth::Bootstrapping
        } else {
            SyncHealth::Ready
        };
        SyncState { health, tlds_ready: ready, tlds_total: self.tlds.len(), resyncs: self.resyncs }
    }

    pub fn frames_applied(&self) -> u64 {
        self.frames_applied
    }

    pub fn snapshots_adopted(&self) -> u64 {
        self.snapshots_adopted
    }

    /// Frames the broker dropped for this subscriber (Lag policy).
    /// Detached views have no in-process queue to drop from.
    pub fn dropped_count(&self) -> u64 {
        self.sub.as_ref().map_or(0, |sub| sub.dropped_count())
    }

    /// True for every subscribed TLD whose view serial matches the
    /// broker head.
    pub fn synced_with(&self, broker: &Broker) -> bool {
        self.tlds.iter().all(|&tld| {
            broker.head(tld).map(|h| h.serial()) == self.serial(tld)
        })
    }
}

/// A [`BrokerZoneView`] fed over a real transport, with automatic
/// reconnect-with-claims.
///
/// The driver owns a detached view, a [`TransportClient`], and a dial
/// closure (how to establish a fresh [`FrameConn`]-backed client for a
/// given set of claims — TCP in deployments, an in-memory pipe in the
/// fault tests). [`RemoteZoneView::pump`] pulls decoded events into the
/// view; on *any* fault — server eviction, disconnect, a frame that
/// failed validation, or a delta that does not chain (duplicate or gap)
/// — it drops the connection and redials carrying
/// [`BrokerZoneView::claims`], so recovery costs a delta replay of the
/// missed churn rather than a snapshot bootstrap whenever the retention
/// ring still covers the gap. [`BrokerZoneView::resync_count`] counts
/// exactly the *successful* reconnects, which is what the fault harness
/// pins against the number of injected faults.
pub struct RemoteZoneView<D>
where
    D: FnMut(&[(TldId, Option<Serial>)]) -> Result<TransportClient, TransportError>,
{
    view: BrokerZoneView,
    client: Option<TransportClient>,
    /// The dead connection's [`TransportClient::claimed_serials`], kept
    /// for the redial. The client advances a claim exactly when the
    /// view applies the corresponding message, so the two stay in
    /// lockstep — asserted in debug builds at reconnect time.
    stale_claims: Option<Vec<(TldId, Option<Serial>)>>,
    dial: D,
}

impl<D> RemoteZoneView<D>
where
    D: FnMut(&[(TldId, Option<Serial>)]) -> Result<TransportClient, TransportError>,
{
    /// Dial the initial connection with empty claims (bootstrap every
    /// shard). The initial connect is not a resync.
    pub fn connect(tlds: &[TldId], mut dial: D) -> Result<Self, TransportError> {
        let view = BrokerZoneView::detached(tlds);
        let client = dial(&view.claims())?;
        Ok(RemoteZoneView { view, client: Some(client), stale_claims: None, dial })
    }

    /// Pull up to `max_events` decoded events into the view, healing
    /// faults by reconnecting with claims as they surface. Returns the
    /// number of events applied; returns early when the stream goes
    /// idle (receive timeout) or a redial attempt fails (the next pump
    /// retries it).
    pub fn pump(&mut self, max_events: usize) -> usize {
        let mut applied = 0;
        while applied < max_events {
            let Some(client) = self.client.as_mut() else {
                if self.reconnect().is_err() {
                    return applied;
                }
                continue;
            };
            match client.next_event() {
                ClientEvent::Idle => break,
                ClientEvent::Snapshot { tld, snapshot } => {
                    self.view.ingest_snapshot(tld, snapshot);
                    applied += 1;
                }
                ClientEvent::Delta { tld, push, .. } => {
                    if self.view.ingest_delta(tld, &push) {
                        applied += 1;
                    } else {
                        // Duplicate or gapped delta: the stream can no
                        // longer be trusted; rejoin from our claims.
                        self.retire_client();
                    }
                }
                ClientEvent::Evicted | ClientEvent::Closed(_) => {
                    self.retire_client();
                }
            }
        }
        applied
    }

    /// Drop the dead connection, keeping the serials it verifiably
    /// reached for the redial.
    fn retire_client(&mut self) {
        if let Some(client) = self.client.take() {
            self.stale_claims = Some(client.claimed_serials().to_vec());
        }
    }

    /// Redial with the dead client's claimed serials (the view's claims
    /// are the identical fallback); counts the resync only once the new
    /// connection is established.
    fn reconnect(&mut self) -> Result<(), TransportError> {
        let claims = match &self.stale_claims {
            Some(claims) => {
                debug_assert_eq!(
                    *claims,
                    self.view.claims(),
                    "client claim tracking diverged from the applied view state"
                );
                claims.clone()
            }
            None => self.view.claims(),
        };
        let client = (self.dial)(&claims)?;
        self.client = Some(client);
        self.stale_claims = None;
        self.view.note_resynced();
        Ok(())
    }

    /// True while a connection is established (it may still be found
    /// dead on the next pump).
    pub fn is_connected(&self) -> bool {
        self.client.is_some()
    }

    /// Pump (healing faults as usual) until the view's serial matches
    /// `targets` for every listed TLD, or `timeout` elapses. This is
    /// the synchronisation barrier a time-faithful harness needs:
    /// frames cross the socket asynchronously, so "everything published
    /// so far has been applied" is only observable as the view reaching
    /// the publisher's known head serials. Returns whether the targets
    /// were reached.
    pub fn pump_until_serials(
        &mut self,
        targets: &[(TldId, Serial)],
        timeout: std::time::Duration,
    ) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if targets.iter().all(|&(tld, serial)| self.view.serial(tld) == Some(serial)) {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            if self.pump(1024) == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// The underlying view.
    pub fn view(&self) -> &BrokerZoneView {
        &self.view
    }

    /// Mutable access (e.g. to take the accumulated zone NRDs).
    pub fn view_mut(&mut self) -> &mut BrokerZoneView {
        &mut self.view
    }
}

/// One row of an [`EndpointMap`]: the TLDs a broker (group) is
/// authoritative for, and the replica endpoints serving them in
/// preference order.
#[derive(Debug, Clone)]
pub struct EndpointRoute<E> {
    /// TLDs this route serves.
    pub tlds: Vec<TldId>,
    /// Interchangeable endpoints for those TLDs; a consumer dials the
    /// first and fails over down the list (wrapping) on faults.
    pub replicas: Vec<E>,
}

/// TLD → replica-list routing table for a **partitioned broker fleet**:
/// the universe is split across several root brokers (each owning a
/// disjoint TLD subset), each optionally served by multiple replicas
/// (e.g. regional relay nodes re-serving the same root). `E` is
/// whatever identifies an endpoint to the dial closure — a
/// `SocketAddr` in deployments, a pipe index in tests.
#[derive(Debug, Clone, Default)]
pub struct EndpointMap<E> {
    routes: Vec<EndpointRoute<E>>,
}

impl<E> EndpointMap<E> {
    pub fn new() -> Self {
        EndpointMap { routes: Vec::new() }
    }

    /// Add a route serving `tlds` from `replicas` (preference order).
    ///
    /// # Panics
    /// Panics on an empty replica list or a TLD already routed — a
    /// TLD's frames must have exactly one authoritative stream.
    pub fn add_route(&mut self, tlds: Vec<TldId>, replicas: Vec<E>) {
        assert!(!replicas.is_empty(), "a route needs at least one replica");
        for tld in &tlds {
            assert!(
                self.route_for(*tld).is_none(),
                "{tld:?} is already routed; one authoritative route per TLD"
            );
        }
        self.routes.push(EndpointRoute { tlds, replicas });
    }

    pub fn routes(&self) -> &[EndpointRoute<E>] {
        &self.routes
    }

    /// Index of the route serving `tld`, if any.
    pub fn route_for(&self, tld: TldId) -> Option<usize> {
        self.routes.iter().position(|r| r.tlds.contains(&tld))
    }

    /// Every routed TLD, in route order.
    pub fn tlds(&self) -> Vec<TldId> {
        self.routes.iter().flat_map(|r| r.tlds.iter().copied()).collect()
    }
}

/// Per-route connection state of a [`RoutedZoneView`].
struct RouteConn {
    /// Which replica the route is (or will next be) dialled at.
    cursor: usize,
    client: Option<TransportClient>,
    /// Mid-snapshot chunk progress salvaged from the dead connection,
    /// carried into the next HELLO so the bootstrap resumes instead of
    /// restarting.
    partials: Vec<SnapshotProgress>,
    /// Whether the next successful connect heals a fault (and must be
    /// counted as a resync) or is the initial bootstrap.
    healing: bool,
    /// Chunks received on connections this route has already retired.
    retired_chunks: u64,
}

/// A [`BrokerZoneView`] spanning a **partitioned, replicated** broker
/// fleet: one upstream connection per [`EndpointMap`] route, all
/// feeding one shared view. Faults heal per route — reconnect carries
/// that route's per-TLD claims (and chunked-bootstrap progress), and a
/// connect or stream error fails over to the next replica in the
/// route's list. [`BrokerZoneView::resync_count`] still counts exactly
/// the successful post-fault reconnects, fleet-wide;
/// [`RoutedZoneView::failover_count`] counts replica switches.
pub struct RoutedZoneView<E, D>
where
    D: FnMut(&E) -> Result<Box<dyn FrameConn>, TransportError>,
{
    view: BrokerZoneView,
    map: EndpointMap<E>,
    conns: Vec<RouteConn>,
    dial: D,
    failovers: u64,
}

impl<E, D> RoutedZoneView<E, D>
where
    D: FnMut(&E) -> Result<Box<dyn FrameConn>, TransportError>,
{
    /// Dial every route's preferred replica (failing over down each
    /// list) and bootstrap the shared view. Errors only when some route
    /// has **no** reachable replica.
    pub fn connect(map: EndpointMap<E>, dial: D) -> Result<Self, TransportError> {
        let tlds = map.tlds();
        let conns = map
            .routes()
            .iter()
            .map(|_| RouteConn {
                cursor: 0,
                client: None,
                partials: Vec::new(),
                healing: false,
                retired_chunks: 0,
            })
            .collect();
        let mut routed = RoutedZoneView {
            view: BrokerZoneView::detached(&tlds),
            map,
            conns,
            dial,
            failovers: 0,
        };
        for i in 0..routed.conns.len() {
            routed.reconnect_route(i)?;
        }
        Ok(routed)
    }

    /// The view's claims restricted to one route's TLDs.
    fn route_claims(&self, route: usize) -> Vec<(TldId, Option<Serial>)> {
        self.map.routes()[route]
            .tlds
            .iter()
            .map(|&t| (t, self.view.serial(t)))
            .collect()
    }

    /// Dial `route`, starting at its cursor and failing over across the
    /// replica list (each switch counted). Errs when every replica
    /// refused — the next pump retries from the same cursor.
    fn reconnect_route(&mut self, route: usize) -> Result<(), TransportError> {
        let claims = self.route_claims(route);
        let replicas = self.map.routes()[route].replicas.len();
        let mut last_err = TransportError::Closed;
        for attempt in 0..replicas {
            let at = (self.conns[route].cursor + attempt) % replicas;
            if attempt > 0 {
                self.failovers += 1;
            }
            let endpoint = &self.map.routes()[route].replicas[at];
            let conn = match (self.dial)(endpoint) {
                Ok(conn) => conn,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            let partials = std::mem::take(&mut self.conns[route].partials);
            match TransportClient::connect_resuming(conn, &claims, partials) {
                Ok(client) => {
                    let rc = &mut self.conns[route];
                    rc.cursor = at;
                    rc.client = Some(client);
                    if rc.healing {
                        rc.healing = false;
                        self.view.note_resynced();
                    }
                    return Ok(());
                }
                Err(e) => {
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    /// Retire `route`'s dead connection: salvage chunk progress and
    /// arm the resync accounting, and point the cursor at the *next*
    /// replica so the redial fails over (the current one just died).
    fn retire_route(&mut self, route: usize) {
        let replicas = self.map.routes()[route].replicas.len();
        let rc = &mut self.conns[route];
        if let Some(mut client) = rc.client.take() {
            rc.retired_chunks += client.snapshot_chunks_received();
            rc.partials = client.take_snapshot_progress();
        }
        rc.healing = true;
        if replicas > 1 {
            rc.cursor = (rc.cursor + 1) % replicas;
            self.failovers += 1;
        }
    }

    /// Pump one route for up to `budget` events. Returns the number
    /// applied; sets `progressed` when anything happened (so the outer
    /// loop knows the fleet has gone idle).
    fn pump_route(&mut self, route: usize, budget: usize, progressed: &mut bool) -> usize {
        let mut applied = 0;
        while applied < budget {
            if self.conns[route].client.is_none() {
                if self.reconnect_route(route).is_err() {
                    return applied;
                }
                *progressed = true;
                continue;
            }
            let event = self.conns[route].client.as_mut().expect("just checked").next_event();
            match event {
                ClientEvent::Idle => break,
                ClientEvent::Snapshot { tld, snapshot } => {
                    self.view.ingest_snapshot(tld, snapshot);
                    applied += 1;
                    *progressed = true;
                }
                ClientEvent::Delta { tld, push, .. } => {
                    if self.view.ingest_delta(tld, &push) {
                        applied += 1;
                        *progressed = true;
                    } else {
                        self.retire_route(route);
                        *progressed = true;
                    }
                }
                ClientEvent::Evicted | ClientEvent::Closed(_) => {
                    self.retire_route(route);
                    *progressed = true;
                }
            }
        }
        applied
    }

    /// Pull up to `max_events` decoded events into the shared view,
    /// visiting every route and healing faults per route as they
    /// surface. Returns the number of events applied.
    pub fn pump(&mut self, max_events: usize) -> usize {
        let mut applied = 0;
        loop {
            let mut progressed = false;
            for route in 0..self.conns.len() {
                applied += self.pump_route(route, max_events - applied, &mut progressed);
                if applied >= max_events {
                    return applied;
                }
            }
            if !progressed {
                return applied;
            }
        }
    }

    /// Pump (healing faults as usual) until the view's serial matches
    /// `targets` for every listed TLD, or `timeout` elapses.
    pub fn pump_until_serials(
        &mut self,
        targets: &[(TldId, Serial)],
        timeout: std::time::Duration,
    ) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if targets.iter().all(|&(tld, serial)| self.view.serial(tld) == Some(serial)) {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            if self.pump(1024) == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// Replica switches so far, fleet-wide: every dial attempt that
    /// moved past a replica (connect refused) and every post-fault
    /// redial pointed at the next replica.
    pub fn failover_count(&self) -> u64 {
        self.failovers
    }

    /// Snapshot continuation chunks received across every route and
    /// every connection generation.
    pub fn snapshot_chunks_received(&self) -> u64 {
        self.conns
            .iter()
            .map(|rc| {
                rc.retired_chunks
                    + rc.client.as_ref().map_or(0, |c| c.snapshot_chunks_received())
            })
            .sum()
    }

    /// True while every route has an established connection.
    pub fn is_connected(&self) -> bool {
        self.conns.iter().all(|rc| rc.client.is_some())
    }

    /// The routing table this view was built over.
    pub fn endpoint_map(&self) -> &EndpointMap<E> {
        &self.map
    }

    /// The underlying view.
    pub fn view(&self) -> &BrokerZoneView {
        &self.view
    }

    /// Mutable access (e.g. to take the accumulated zone NRDs).
    pub fn view_mut(&mut self) -> &mut BrokerZoneView {
        &mut self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkdns_broker::{BrokerConfig, OverflowPolicy, RetentionConfig};
    use darkdns_dns::{NsSet, ZoneDelta};
    use darkdns_sim::time::SimTime;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn empty_snap(origin: &str) -> ZoneSnapshot {
        ZoneSnapshot::from_entries(name(origin), Serial::new(0), SimTime::ZERO, vec![])
    }

    fn add_delta(domain: &str) -> ZoneDelta {
        let mut d = ZoneDelta::default();
        d.added.push((name(domain), NsSet::new(vec![name("ns1.provider0.net")])));
        d
    }

    fn remove_delta(domain: &str) -> ZoneDelta {
        let mut d = ZoneDelta::default();
        d.removed.push((name(domain), NsSet::new(vec![name("ns1.provider0.net")])));
        d
    }

    #[test]
    fn view_tracks_membership_and_nrds() {
        let broker = Broker::new(BrokerConfig::default());
        broker.add_shard(TldId(0), empty_snap("com"));
        let mut view = BrokerZoneView::subscribe(&broker, &[TldId(0)]);
        broker.publish(TldId(0), add_delta("fresh.com"), Serial::new(1), SimTime::ZERO);
        broker.publish(TldId(0), add_delta("later.com"), Serial::new(2), SimTime::ZERO);
        broker.publish(TldId(0), remove_delta("fresh.com"), Serial::new(3), SimTime::ZERO);
        view.pump();
        assert!(!view.contains(TldId(0), &name("fresh.com")), "removed again");
        assert!(view.contains(TldId(0), &name("later.com")));
        // Both appeared as zone NRDs even though one is transient. The
        // drain appends into a reusable buffer and clears the log.
        let mut nrds = Vec::new();
        view.drain_new_domains(&mut nrds);
        assert_eq!(nrds, vec![name("fresh.com"), name("later.com")]);
        view.drain_new_domains(&mut nrds);
        assert_eq!(nrds.len(), 2, "drained log must be empty");
        assert!(view.synced_with(&broker));
        assert_eq!(view.serial(TldId(0)), Some(Serial::new(3)));
        assert_eq!(view.snapshots_adopted(), 1);
    }

    #[test]
    fn multi_tld_view_isolates_shards() {
        let broker = Broker::new(BrokerConfig::default());
        broker.add_shard(TldId(0), empty_snap("com"));
        broker.add_shard(TldId(1), empty_snap("net"));
        let mut view = BrokerZoneView::subscribe(&broker, &[TldId(0), TldId(1)]);
        broker.publish(TldId(0), add_delta("a.com"), Serial::new(1), SimTime::ZERO);
        view.pump();
        assert!(view.contains_anywhere(&name("a.com")));
        assert!(!view.contains(TldId(1), &name("a.com")));
        assert_eq!(view.len(TldId(1)), Some(0));
    }

    #[test]
    fn lagging_view_detects_gap_and_resyncs() {
        let config = BrokerConfig {
            retention: RetentionConfig::new(8, 4),
            subscriber_capacity: 2,
            overflow: OverflowPolicy::Lag,
            lag_slo: None,
        };
        let broker = Broker::new(config);
        broker.add_shard(TldId(0), empty_snap("com"));
        let mut view = BrokerZoneView::subscribe(&broker, &[TldId(0)]);
        view.pump(); // apply the (empty) bootstrap snapshot
        // 6 pushes against a capacity-2 buffer: 4 dropped.
        for i in 1..=6u32 {
            broker.publish(TldId(0), add_delta(&format!("d{i}.com")), Serial::new(i), SimTime::ZERO);
        }
        assert_eq!(view.dropped_count(), 4);
        view.pump();
        // The two buffered frames applied cleanly; the gap is only
        // visible once the next frame arrives.
        assert!(!view.lost_sync());
        assert_eq!(view.serial(TldId(0)), Some(Serial::new(2)));
        broker.publish(TldId(0), add_delta("d7.com"), Serial::new(7), SimTime::ZERO);
        view.pump();
        assert!(view.lost_sync());
        assert!(!view.synced_with(&broker));
        assert_eq!(view.resync_count(), 0);
        view.resync(&broker);
        view.pump();
        assert!(!view.lost_sync());
        assert!(view.synced_with(&broker));
        assert_eq!(view.resync_count(), 1);
        assert_eq!(view.len(TldId(0)), Some(7));
        // The resync claimed the view's actual serial, so the ring served
        // a delta replay — no second snapshot bootstrap.
        assert_eq!(broker.stats().delta_catchups, 1);
        assert_eq!(view.snapshots_adopted(), 1);
    }

    #[test]
    fn evicted_view_loses_sync_and_recovers_via_resync() {
        // Under the Evict policy no further frames arrive after an
        // eviction, so the serial-gap path can never fire; pump must
        // surface the eviction itself or the view stalls forever.
        let config = BrokerConfig {
            retention: RetentionConfig::new(16, 8),
            subscriber_capacity: 2,
            overflow: OverflowPolicy::Evict,
            lag_slo: None,
        };
        let broker = Broker::new(config);
        broker.add_shard(TldId(0), empty_snap("com"));
        let mut view = BrokerZoneView::subscribe(&broker, &[TldId(0)]);
        view.pump(); // apply the (empty) bootstrap snapshot
        // 3 live pushes against a capacity-2 buffer: the third evicts.
        for i in 1..=3u32 {
            broker.publish(TldId(0), add_delta(&format!("d{i}.com")), Serial::new(i), SimTime::ZERO);
        }
        assert_eq!(view.pump(), 0, "evicted view must not apply from a cleared queue");
        assert!(view.lost_sync(), "eviction must surface as lost sync");
        view.resync(&broker);
        view.pump();
        assert!(view.synced_with(&broker));
        assert_eq!(view.len(TldId(0)), Some(3));
        assert_eq!(view.resync_count(), 1);
    }

    #[test]
    fn late_join_bootstraps_from_checkpoint() {
        let config =
            BrokerConfig { retention: RetentionConfig::new(4, 2), ..BrokerConfig::default() };
        let broker = Broker::new(config);
        broker.add_shard(TldId(0), empty_snap("com"));
        for i in 1..=20u32 {
            broker.publish(TldId(0), add_delta(&format!("d{i}.com")), Serial::new(i), SimTime::ZERO);
        }
        let mut view = BrokerZoneView::subscribe(&broker, &[TldId(0)]);
        view.pump();
        assert!(view.synced_with(&broker));
        assert_eq!(view.len(TldId(0)), Some(20));
        // Bootstrap came from a checkpoint, so only post-checkpoint
        // additions count as NRDs observed live.
        let mut nrds = Vec::new();
        view.drain_new_domains(&mut nrds);
        assert!(nrds.len() <= 4);
    }
}
