//! The broker-backed subscriber path of the pipeline.
//!
//! The batch pipeline answers "is this name already in the zone?" from
//! the [`darkdns_registry::czds::SnapshotOracle`] — ground truth at
//! daily-snapshot granularity. This module is the RZU deployment shape:
//! a [`BrokerZoneView`] subscribes to the distribution broker
//! (`darkdns_broker`), bootstraps each TLD from a checkpoint snapshot,
//! applies the shared delta frames as they arrive, and serves two
//! pipeline needs from the live view:
//!
//! * **membership** — [`BrokerZoneView::contains`], the detector's
//!   "already delegated?" check at push (not daily) freshness;
//! * **zone NRDs** — every delta's `added` section is the
//!   newly-registered-domain population of Table 1's `Zone NRD` column;
//!   the view accumulates them for the ablation comparisons.
//!
//! A view that lags past its buffer bound loses deltas; it detects the
//! serial gap on the next frame, stops applying (a torn zone view is
//! worse than a stale one), and [`BrokerZoneView::resync`] rejoins the
//! broker, which answers with a delta replay or a checkpoint snapshot
//! per the catch-up decision rule. [`BrokerZoneView::resync_count`]
//! exposes how often that recovery path fired, so fleet runs can assert
//! a healthy deployment saw zero gap-resyncs.
//!
//! The contract holds unchanged under the broker's per-shard concurrent
//! publishers: each shard's frames arrive in that shard's serial order
//! (gap detection and application are per-TLD), and only the *interleaving*
//! across TLDs varies run to run. `pump` applies whatever has arrived;
//! a view is converged when [`BrokerZoneView::synced_with`] holds, which
//! publishers stop moving once they are done. Pinned by the threaded
//! convergence proptest in `tests/proptest_broker.rs`.

use std::time::{Duration, Instant};

use darkdns_broker::transport::{
    fetch_stats_deadline, ClientEvent, FrameConn, SnapshotProgress, TransportClient, TransportError,
};
use darkdns_broker::{Broker, BrokerMessage, BrokerSubscription};
use darkdns_dns::hash::NameMap;
use darkdns_dns::wire::DeltaPush;
use darkdns_dns::{decode_delta_push, DomainName, Serial, ZoneSnapshot};
use darkdns_registry::tld::TldId;

/// A subscriber-side, multi-TLD live zone view.
///
/// The view has two deployment shapes sharing all state and gap logic:
/// **attached** ([`BrokerZoneView::subscribe`]) holds an in-process
/// broker subscription and drains it with [`BrokerZoneView::pump`];
/// **detached** ([`BrokerZoneView::detached`]) holds no subscription
/// and is fed decoded messages by a transport driver (see
/// [`RemoteZoneView`]) through the same `ingest_*` entry points `pump`
/// itself uses.
pub struct BrokerZoneView {
    sub: Option<BrokerSubscription>,
    tlds: Vec<TldId>,
    states: NameMap<TldId, ZoneSnapshot>,
    /// Domains first seen in a delta's `added` section, in arrival order.
    new_domains: Vec<DomainName>,
    frames_applied: u64,
    snapshots_adopted: u64,
    resyncs: u64,
    lost_sync: bool,
}

impl BrokerZoneView {
    /// Subscribe with no prior state: the broker bootstraps every shard
    /// from its checkpoint snapshot (catch-up rule 3).
    pub fn subscribe(broker: &Broker, tlds: &[TldId]) -> Self {
        let mut view = Self::detached(tlds);
        view.sub = Some(broker.subscribe(tlds, None));
        view
    }

    /// A view with no broker subscription, fed by a transport driver.
    pub fn detached(tlds: &[TldId]) -> Self {
        BrokerZoneView {
            sub: None,
            tlds: tlds.to_vec(),
            states: NameMap::default(),
            new_domains: Vec::new(),
            frames_applied: 0,
            snapshots_adopted: 0,
            resyncs: 0,
            lost_sync: false,
        }
    }

    /// Adopt `snapshot` as `tld`'s state (a bootstrap or rule-3
    /// catch-up). Always succeeds: a snapshot is self-contained.
    pub fn ingest_snapshot(&mut self, tld: TldId, snapshot: ZoneSnapshot) {
        self.states.insert(tld, snapshot);
        self.snapshots_adopted += 1;
    }

    /// Apply one validated delta push to `tld`'s state. Returns `false`
    /// — and latches [`BrokerZoneView::lost_sync`] — when the push does
    /// not chain (no bootstrap yet, a missed frame, or a duplicate
    /// delivery): a non-chaining delta is **never** applied, which is
    /// the no-double-apply guarantee the transport reconnect relies on.
    pub fn ingest_delta(&mut self, tld: TldId, push: &DeltaPush) -> bool {
        let Some(state) = self.states.get_mut(&tld) else {
            // Delta before any snapshot for this TLD: only possible
            // after losing the bootstrap.
            self.lost_sync = true;
            return false;
        };
        if push.from_serial != state.serial() {
            self.lost_sync = true;
            return false;
        }
        for (domain, _) in &push.delta.added {
            self.new_domains.push(*domain);
        }
        *state = push.delta.apply(state, push.to_serial, push.pushed_at);
        self.frames_applied += 1;
        true
    }

    /// Apply everything queued. Returns the number of messages applied.
    /// Stops early (returning what was applied so far) if a serial gap
    /// is detected; the view then reports [`BrokerZoneView::lost_sync`]
    /// until [`BrokerZoneView::resync`] is called. Detached views have
    /// nothing to pump and return 0.
    ///
    /// Eviction counts as losing sync: an evicted subscriber's queue was
    /// cleared and receives nothing further, so the gap could never be
    /// observed through a next frame — without this check a view under
    /// `OverflowPolicy::Evict` would stall forever looking healthy.
    pub fn pump(&mut self) -> usize {
        let Some(sub) = &self.sub else {
            return 0;
        };
        if sub.is_evicted() {
            self.lost_sync = true;
        }
        if self.lost_sync {
            return 0;
        }
        let mut applied = 0;
        loop {
            let Some(sub) = &self.sub else { break };
            let Some(msg) = sub.try_next() else { break };
            match msg {
                BrokerMessage::Snapshot { tld, snapshot } => {
                    self.ingest_snapshot(tld, snapshot);
                }
                BrokerMessage::Delta { tld, frame } => {
                    let push = decode_delta_push(&frame).expect("broker frames are well-formed");
                    if !self.ingest_delta(tld, &push) {
                        return applied;
                    }
                }
            }
            applied += 1;
        }
        // An eviction racing the drain (a concurrent publisher's
        // overflow decision) is surfaced now, not on the next pump.
        if self.sub.as_ref().is_some_and(|sub| sub.is_evicted()) {
            self.lost_sync = true;
        }
        applied
    }

    /// Record an eviction observed by an external driver (a transport
    /// client or an edge feed pumping a detached view): latches
    /// [`BrokerZoneView::lost_sync`] exactly as [`BrokerZoneView::pump`]
    /// does when its own subscription reports eviction.
    pub fn ingest_eviction(&mut self) {
        self.lost_sync = true;
    }

    /// True once a dropped frame left the view unable to advance.
    pub fn lost_sync(&self) -> bool {
        self.lost_sync
    }

    /// The view's current per-TLD serial claims — exactly what a
    /// (re)subscription or a transport HELLO should carry. Shards the
    /// view is current on (or only slightly behind) then catch up via
    /// the cheap delta-replay path; only shards beyond the retention
    /// ring pay for a snapshot bootstrap.
    pub fn claims(&self) -> Vec<(TldId, Option<Serial>)> {
        self.tlds.iter().map(|&t| (t, self.serial(t))).collect()
    }

    /// Record a completed resync-from-claims: clears the lost-sync latch
    /// and counts the recovery. Callers (in-process
    /// [`BrokerZoneView::resync`], the transport's [`RemoteZoneView`])
    /// invoke this only once the replacement subscription/connection is
    /// actually established, so a failed reconnect attempt is never
    /// counted as a heal.
    pub fn note_resynced(&mut self) {
        self.resyncs += 1;
        self.lost_sync = false;
    }

    /// Rejoin the broker, claiming the view's actual per-TLD serials
    /// ([`BrokerZoneView::claims`]). Queued-but-unapplied messages from
    /// the old subscription are discarded (the catch-up replaces them).
    pub fn resync(&mut self, broker: &Broker) {
        // Views with no serial (never bootstrapped) get a snapshot; the
        // rest keep their state and continue from their claimed serial.
        self.sub = Some(broker.subscribe_with(&self.claims()));
        self.note_resynced();
    }

    /// Times this view had to rejoin the broker to heal a gap. Zero in a
    /// deployment whose buffers never overflow.
    pub fn resync_count(&self) -> u64 {
        self.resyncs
    }

    /// Is `domain` currently delegated in `tld`'s view?
    pub fn contains(&self, tld: TldId, domain: &DomainName) -> bool {
        self.states.get(&tld).is_some_and(|s| s.contains(domain))
    }

    /// Is `domain` delegated in any subscribed TLD's view?
    pub fn contains_anywhere(&self, domain: &DomainName) -> bool {
        self.states.values().any(|s| s.contains(domain))
    }

    /// The view's serial for `tld` (None before the bootstrap arrived).
    pub fn serial(&self, tld: TldId) -> Option<Serial> {
        self.states.get(&tld).map(|s| s.serial())
    }

    /// Delegation count for `tld`.
    pub fn len(&self, tld: TldId) -> Option<usize> {
        self.states.get(&tld).map(|s| s.len())
    }

    /// The view's snapshot of `tld`, if bootstrapped.
    pub fn snapshot(&self, tld: TldId) -> Option<&ZoneSnapshot> {
        self.states.get(&tld)
    }

    /// Append-and-clear the accumulated zone-NRD log (delta `added`
    /// domains, arrival order) into `out`. Drain-style on purpose: the
    /// internal buffer keeps its capacity and `out` is caller-reused,
    /// so the pump → drain hot loop allocates nothing at steady state
    /// (the old `take_new_domains` handed out a fresh `Vec` per call).
    pub fn drain_new_domains(&mut self, out: &mut Vec<DomainName>) {
        out.append(&mut self.new_domains);
    }

    /// The health probe of the [`crate::membership::ZoneMembership`]
    /// contract: ready only when every subscribed TLD is bootstrapped
    /// and no gap is outstanding.
    pub fn sync_state(&self) -> crate::membership::SyncState {
        use crate::membership::{SyncHealth, SyncState};
        let ready = self.tlds.iter().filter(|t| self.states.get(t).is_some()).count();
        let health = if self.lost_sync {
            SyncHealth::LostSync
        } else if ready < self.tlds.len() {
            SyncHealth::Bootstrapping
        } else {
            SyncHealth::Ready
        };
        SyncState { health, tlds_ready: ready, tlds_total: self.tlds.len(), resyncs: self.resyncs }
    }

    pub fn frames_applied(&self) -> u64 {
        self.frames_applied
    }

    pub fn snapshots_adopted(&self) -> u64 {
        self.snapshots_adopted
    }

    /// Frames the broker dropped for this subscriber (Lag policy).
    /// Detached views have no in-process queue to drop from.
    pub fn dropped_count(&self) -> u64 {
        self.sub.as_ref().map_or(0, |sub| sub.dropped_count())
    }

    /// True for every subscribed TLD whose view serial matches the
    /// broker head.
    pub fn synced_with(&self, broker: &Broker) -> bool {
        self.tlds.iter().all(|&tld| {
            broker.head(tld).map(|h| h.serial()) == self.serial(tld)
        })
    }
}

/// A [`BrokerZoneView`] fed over a real transport, with automatic
/// reconnect-with-claims.
///
/// The driver owns a detached view, a [`TransportClient`], and a dial
/// closure (how to establish a fresh [`FrameConn`]-backed client for a
/// given set of claims — TCP in deployments, an in-memory pipe in the
/// fault tests). [`RemoteZoneView::pump`] pulls decoded events into the
/// view; on *any* fault — server eviction, disconnect, a frame that
/// failed validation, or a delta that does not chain (duplicate or gap)
/// — it drops the connection and redials carrying
/// [`BrokerZoneView::claims`], so recovery costs a delta replay of the
/// missed churn rather than a snapshot bootstrap whenever the retention
/// ring still covers the gap. [`BrokerZoneView::resync_count`] counts
/// exactly the *successful* reconnects, which is what the fault harness
/// pins against the number of injected faults.
pub struct RemoteZoneView<D>
where
    D: FnMut(&[(TldId, Option<Serial>)]) -> Result<TransportClient, TransportError>,
{
    view: BrokerZoneView,
    client: Option<TransportClient>,
    /// The dead connection's [`TransportClient::claimed_serials`], kept
    /// for the redial. The client advances a claim exactly when the
    /// view applies the corresponding message, so the two stay in
    /// lockstep — asserted in debug builds at reconnect time.
    stale_claims: Option<Vec<(TldId, Option<Serial>)>>,
    dial: D,
}

impl<D> RemoteZoneView<D>
where
    D: FnMut(&[(TldId, Option<Serial>)]) -> Result<TransportClient, TransportError>,
{
    /// Dial the initial connection with empty claims (bootstrap every
    /// shard). The initial connect is not a resync.
    pub fn connect(tlds: &[TldId], mut dial: D) -> Result<Self, TransportError> {
        let view = BrokerZoneView::detached(tlds);
        let client = dial(&view.claims())?;
        Ok(RemoteZoneView { view, client: Some(client), stale_claims: None, dial })
    }

    /// Pull up to `max_events` decoded events into the view, healing
    /// faults by reconnecting with claims as they surface. Returns the
    /// number of events applied; returns early when the stream goes
    /// idle (receive timeout) or a redial attempt fails (the next pump
    /// retries it).
    pub fn pump(&mut self, max_events: usize) -> usize {
        let mut applied = 0;
        while applied < max_events {
            let Some(client) = self.client.as_mut() else {
                if self.reconnect().is_err() {
                    return applied;
                }
                continue;
            };
            match client.next_event() {
                ClientEvent::Idle => break,
                ClientEvent::Snapshot { tld, snapshot } => {
                    self.view.ingest_snapshot(tld, snapshot);
                    applied += 1;
                }
                ClientEvent::Delta { tld, push, .. } => {
                    if self.view.ingest_delta(tld, &push) {
                        applied += 1;
                    } else {
                        // Duplicate or gapped delta: the stream can no
                        // longer be trusted; rejoin from our claims.
                        self.retire_client();
                    }
                }
                ClientEvent::Evicted | ClientEvent::Closed(_) => {
                    self.retire_client();
                }
            }
        }
        applied
    }

    /// Drop the dead connection, keeping the serials it verifiably
    /// reached for the redial.
    fn retire_client(&mut self) {
        if let Some(client) = self.client.take() {
            self.stale_claims = Some(client.claimed_serials().to_vec());
        }
    }

    /// Redial with the dead client's claimed serials (the view's claims
    /// are the identical fallback); counts the resync only once the new
    /// connection is established.
    fn reconnect(&mut self) -> Result<(), TransportError> {
        let claims = match &self.stale_claims {
            Some(claims) => {
                debug_assert_eq!(
                    *claims,
                    self.view.claims(),
                    "client claim tracking diverged from the applied view state"
                );
                claims.clone()
            }
            None => self.view.claims(),
        };
        let client = (self.dial)(&claims)?;
        self.client = Some(client);
        self.stale_claims = None;
        self.view.note_resynced();
        Ok(())
    }

    /// True while a connection is established (it may still be found
    /// dead on the next pump).
    pub fn is_connected(&self) -> bool {
        self.client.is_some()
    }

    /// Pump (healing faults as usual) until the view's serial matches
    /// `targets` for every listed TLD, or `timeout` elapses. This is
    /// the synchronisation barrier a time-faithful harness needs:
    /// frames cross the socket asynchronously, so "everything published
    /// so far has been applied" is only observable as the view reaching
    /// the publisher's known head serials. Returns whether the targets
    /// were reached.
    pub fn pump_until_serials(
        &mut self,
        targets: &[(TldId, Serial)],
        timeout: std::time::Duration,
    ) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if targets.iter().all(|&(tld, serial)| self.view.serial(tld) == Some(serial)) {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            if self.pump(1024) == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// The underlying view.
    pub fn view(&self) -> &BrokerZoneView {
        &self.view
    }

    /// Mutable access (e.g. to take the accumulated zone NRDs).
    pub fn view_mut(&mut self) -> &mut BrokerZoneView {
        &mut self.view
    }
}

/// One row of an [`EndpointMap`]: the TLDs a broker (group) is
/// authoritative for, and the replica endpoints serving them in
/// preference order.
#[derive(Debug, Clone)]
pub struct EndpointRoute<E> {
    /// TLDs this route serves.
    pub tlds: Vec<TldId>,
    /// Interchangeable endpoints for those TLDs; a consumer dials the
    /// first and fails over down the list (wrapping) on faults.
    pub replicas: Vec<E>,
}

/// TLD → replica-list routing table for a **partitioned broker fleet**:
/// the universe is split across several root brokers (each owning a
/// disjoint TLD subset), each optionally served by multiple replicas
/// (e.g. regional relay nodes re-serving the same root). `E` is
/// whatever identifies an endpoint to the dial closure — a
/// `SocketAddr` in deployments, a pipe index in tests.
///
/// The map carries a **generation counter**: every mutation bumps it,
/// and a consumer ([`RoutedZoneView::apply_endpoint_update`]) applies a
/// replacement map only when its generation is strictly newer — a
/// reordered or duplicated control-plane update can never roll a fleet
/// back to an older topology.
#[derive(Debug, Clone, Default)]
pub struct EndpointMap<E> {
    routes: Vec<EndpointRoute<E>>,
    generation: u64,
}

impl<E> EndpointMap<E> {
    pub fn new() -> Self {
        EndpointMap { routes: Vec::new(), generation: 0 }
    }

    /// Add a route serving `tlds` from `replicas` (preference order).
    ///
    /// # Panics
    /// Panics on an empty replica list or a TLD already routed — a
    /// TLD's frames must have exactly one authoritative stream.
    pub fn add_route(&mut self, tlds: Vec<TldId>, replicas: Vec<E>) {
        assert!(!replicas.is_empty(), "a route needs at least one replica");
        for tld in &tlds {
            assert!(
                self.route_for(*tld).is_none(),
                "{tld:?} is already routed; one authoritative route per TLD"
            );
        }
        self.routes.push(EndpointRoute { tlds, replicas });
        self.generation += 1;
    }

    /// Append a replica to `route`'s list (it becomes the
    /// least-preferred candidate until health probes say otherwise).
    ///
    /// # Panics
    /// Panics on an out-of-range route index.
    pub fn add_replica(&mut self, route: usize, endpoint: E) {
        self.routes[route].replicas.push(endpoint);
        self.generation += 1;
    }

    /// Remove (drain) `route`'s replica at `index`, returning it. A
    /// consumer applying the updated map finishes the drained replica's
    /// in-flight work before switching — see
    /// [`RoutedZoneView::apply_endpoint_update`].
    ///
    /// # Panics
    /// Panics on an out-of-range index, or when the replica is the
    /// route's last — a route must always have at least one endpoint.
    pub fn remove_replica(&mut self, route: usize, index: usize) -> E {
        assert!(
            self.routes[route].replicas.len() > 1,
            "cannot drain a route's last replica"
        );
        let endpoint = self.routes[route].replicas.remove(index);
        self.generation += 1;
        endpoint
    }

    /// The map's mutation generation: 0 for an empty map, bumped by
    /// every [`EndpointMap::add_route`] / [`EndpointMap::add_replica`] /
    /// [`EndpointMap::remove_replica`]. Strictly monotone over any
    /// update sequence.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn routes(&self) -> &[EndpointRoute<E>] {
        &self.routes
    }

    /// Index of the route serving `tld`, if any.
    pub fn route_for(&self, tld: TldId) -> Option<usize> {
        self.routes.iter().position(|r| r.tlds.contains(&tld))
    }

    /// Every routed TLD, in route order.
    pub fn tlds(&self) -> Vec<TldId> {
        self.routes.iter().flat_map(|r| r.tlds.iter().copied()).collect()
    }
}

/// Observer hook for [`RoutedZoneView::pump_with`]: called with every
/// message the shared view *accepts*, immediately after it is applied.
/// Rejected messages (non-chaining deltas, stale snapshots) never reach
/// the sink, so a sink mirrors exactly the view's applied history. The
/// edge tier uses this to mirror the routed stream into its epoch-swap
/// query index without duplicating any routing machinery; the plain
/// [`RoutedZoneView::pump`] uses the no-op impl on `()`.
pub trait RouteSink {
    /// The view just adopted `snapshot` as `tld`'s state.
    fn on_snapshot(&mut self, tld: TldId, snapshot: &ZoneSnapshot) {
        let _ = (tld, snapshot);
    }
    /// The view just applied `push` to `tld`; `state` is the post-apply
    /// zone state.
    fn on_delta(&mut self, tld: TldId, state: &ZoneSnapshot, push: &DeltaPush) {
        let _ = (tld, state, push);
    }
}

impl RouteSink for () {}

/// How long a health probe waits for the RZUQ stats round-trip before
/// writing the replica off as unscorable this round.
const PROBE_DEADLINE: Duration = Duration::from_millis(400);
/// Dead-replica backoff bounds: the `n`-th consecutive dial/handshake/
/// probe failure sidelines the replica for `floor << (n-1)`, capped at
/// the ceiling. Backoff bounds dial *frequency* toward a dead endpoint
/// — a route whose every replica is down waits for the earliest window
/// to expire instead of dialling each pump — and the windows are
/// time-bounded, so the route is never forfeited.
const DEAD_BACKOFF_FLOOR: Duration = Duration::from_millis(50);
const DEAD_BACKOFF_CEIL: Duration = Duration::from_secs(2);

/// Per-replica health state of one route.
#[derive(Debug, Clone, Default)]
struct ReplicaHealth {
    /// Consecutive dial/handshake/probe failures; cleared by any
    /// success against this replica.
    fail_streak: u32,
    /// Dead-with-backoff: skip this replica in candidate selection
    /// until the instant passes.
    down_until: Option<Instant>,
    /// Most recent probe score (summed head serials over the route's
    /// TLDs); `None` until probed, or after any failure.
    score: Option<u64>,
}

impl ReplicaHealth {
    fn is_down(&self, now: Instant) -> bool {
        self.down_until.is_some_and(|until| now < until)
    }

    fn note_failure(&mut self, now: Instant) {
        self.fail_streak = self.fail_streak.saturating_add(1);
        let shift = (self.fail_streak - 1).min(8);
        let backoff = DEAD_BACKOFF_FLOOR.saturating_mul(1u32 << shift).min(DEAD_BACKOFF_CEIL);
        self.down_until = Some(now + backoff);
        self.score = None;
    }

    fn note_success(&mut self) {
        self.fail_streak = 0;
        self.down_until = None;
    }
}

/// One route's health and rotation state, as reported by
/// [`RoutedZoneView::route_status`] — the staleness / failover-reason
/// surface fleet dashboards (and the RZUQ aggregation walker) read.
#[derive(Debug, Clone)]
pub struct RouteStatus {
    /// Replica index the route is (or will next be) dialled at.
    pub cursor: usize,
    pub connected: bool,
    /// A newer endpoint map drained the connected replica; the route is
    /// finishing in-flight work before switching.
    pub draining: bool,
    /// Last health-probe score per replica (summed head serials over
    /// the route's TLDs); `None` = never probed, or failed since.
    pub probe_scores: Vec<Option<u64>>,
    /// Replicas currently sitting out a dead-with-backoff window.
    pub dead: Vec<bool>,
}

/// Per-route connection state of a [`RoutedZoneView`].
struct RouteConn {
    /// Which replica the route is (or will next be) dialled at.
    cursor: usize,
    client: Option<TransportClient>,
    /// Mid-snapshot chunk progress salvaged from the dead connection,
    /// carried into the next HELLO so the bootstrap resumes instead of
    /// restarting.
    partials: Vec<SnapshotProgress>,
    /// Whether the next successful connect heals a fault (and must be
    /// counted as a resync) or is the initial bootstrap.
    healing: bool,
    /// Chunks received on connections this route has already retired.
    retired_chunks: u64,
    /// Set when an endpoint update drained the connected replica: keep
    /// pumping until no chunk train is in flight, then switch cleanly.
    draining: bool,
    /// Health state, index-aligned with the route's replica list.
    health: Vec<ReplicaHealth>,
}

/// A [`BrokerZoneView`] spanning a **partitioned, replicated** broker
/// fleet: one upstream connection per [`EndpointMap`] route, all
/// feeding one shared view. Faults heal per route — reconnect carries
/// that route's per-TLD claims (and chunked-bootstrap progress), and a
/// connect or stream error fails over across the route's replica list.
/// [`BrokerZoneView::resync_count`] still counts exactly the successful
/// post-fault reconnects, fleet-wide;
/// [`RoutedZoneView::failover_count`] counts replica switches.
///
/// Replica selection is **health-based**, not blind rotation: whenever
/// a route with more than one live candidate must (re)connect, each
/// candidate is probed over the transport's RZUQ stats dialect and the
/// dial order becomes freshest-head-first (ties keep rotation order).
/// Replicas that refuse a dial, handshake, or probe — or that answer
/// with a checkpoint older than the view (a still-catching-up replica
/// whose next answer would be the same stale bytes) — are sidelined
/// dead-with-backoff so a permanently dead endpoint costs a bounded
/// dial rate, not one dial per rotation. Topology changes arrive as
/// whole replacement maps through
/// [`RoutedZoneView::apply_endpoint_update`] — generation-gated, with
/// graceful per-route drains — so a running fleet consumer never
/// restarts to track them.
pub struct RoutedZoneView<E, D>
where
    D: FnMut(&E) -> Result<Box<dyn FrameConn>, TransportError>,
{
    view: BrokerZoneView,
    map: EndpointMap<E>,
    conns: Vec<RouteConn>,
    dial: D,
    failovers: u64,
    /// Failed dial attempts (refused connections), including probe
    /// dials — the "replica unreachable" failover reason.
    dial_failures: u64,
    /// Established streams retired by a fault (eviction, cut, bad
    /// delta, stale snapshot) — the "stream fault" failover reason.
    stream_faults: u64,
    /// Planned drain handoffs completed without a resync.
    drains: u64,
    /// Checkpoint snapshots refused for being older than the fleet
    /// view — the stale-replica guard.
    stale_snapshots: u64,
}

impl<E, D> RoutedZoneView<E, D>
where
    D: FnMut(&E) -> Result<Box<dyn FrameConn>, TransportError>,
{
    /// Dial every route's preferred replica (failing over down each
    /// list) and bootstrap the shared view. Errors only when some route
    /// has **no** reachable replica.
    pub fn connect(map: EndpointMap<E>, dial: D) -> Result<Self, TransportError> {
        let tlds = map.tlds();
        let conns = map
            .routes()
            .iter()
            .map(|r| RouteConn {
                cursor: 0,
                client: None,
                partials: Vec::new(),
                healing: false,
                retired_chunks: 0,
                draining: false,
                health: vec![ReplicaHealth::default(); r.replicas.len()],
            })
            .collect();
        let mut routed = RoutedZoneView {
            view: BrokerZoneView::detached(&tlds),
            map,
            conns,
            dial,
            failovers: 0,
            dial_failures: 0,
            stream_faults: 0,
            drains: 0,
            stale_snapshots: 0,
        };
        for i in 0..routed.conns.len() {
            routed.reconnect_route(i)?;
        }
        Ok(routed)
    }

    /// The view's claims restricted to one route's TLDs.
    fn route_claims(&self, route: usize) -> Vec<(TldId, Option<Serial>)> {
        self.map.routes()[route]
            .tlds
            .iter()
            .map(|&t| (t, self.view.serial(t)))
            .collect()
    }

    /// RZUQ-probe `route`'s replica `at` and score it: the sum of the
    /// reported head serials over the route's TLDs (shards the replica
    /// does not serve contribute 0, so a filtered or lagging relay
    /// scores below a full mirror). Any failure marks the replica
    /// dead-with-backoff and returns `None`.
    fn probe_replica(&mut self, route: usize, at: usize) -> Option<u64> {
        let endpoint = &self.map.routes()[route].replicas[at];
        let conn = match (self.dial)(endpoint) {
            Ok(conn) => conn,
            Err(_) => {
                self.dial_failures += 1;
                self.conns[route].health[at].note_failure(Instant::now());
                return None;
            }
        };
        let report = match fetch_stats_deadline(conn, PROBE_DEADLINE) {
            Ok(report) => report,
            Err(_) => {
                self.conns[route].health[at].note_failure(Instant::now());
                return None;
            }
        };
        let score = self.map.routes()[route]
            .tlds
            .iter()
            .map(|tld| {
                report
                    .shards
                    .iter()
                    .find(|s| s.tld == tld.0)
                    .map_or(0, |s| u64::from(s.head_serial.0))
            })
            .sum();
        let health = &mut self.conns[route].health[at];
        health.score = Some(score);
        health.note_success();
        Some(score)
    }

    /// Build `route`'s dial order. Rotation from the cursor is the base
    /// order; replicas inside a dead-with-backoff window are skipped.
    /// With more than one live candidate, each is health-probed and the
    /// order becomes score-descending — freshest head first — with a
    /// **stable** sort, so equal-score replicas keep rotation order and
    /// the cursor's replica wins ties. A lone live candidate is
    /// returned un-probed (no extra dial on the single-replica path),
    /// and with zero live candidates the order is empty: the route sits
    /// out the reconnect until the earliest backoff window expires, so
    /// a fully-dead replica set costs a bounded dial rate (the backoff
    /// ceiling), never one dial per pump. Backoff windows are
    /// time-bounded, so the route is never forfeited.
    fn candidate_order(&mut self, route: usize) -> Vec<usize> {
        let replicas = self.map.routes()[route].replicas.len();
        let cursor = self.conns[route].cursor % replicas;
        let rotation: Vec<usize> = (0..replicas).map(|i| (cursor + i) % replicas).collect();
        let now = Instant::now();
        let alive: Vec<usize> = rotation
            .into_iter()
            .filter(|&at| !self.conns[route].health[at].is_down(now))
            .collect();
        if alive.len() == 1 {
            return alive;
        }
        let mut scored: Vec<(usize, u64)> = alive
            .into_iter()
            .filter_map(|at| self.probe_replica(route, at).map(|score| (at, score)))
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1));
        scored.into_iter().map(|(at, _)| at).collect()
    }

    /// Dial `route` along its health-ordered candidate list (see
    /// [`RoutedZoneView::candidate_order`]), counting every candidate
    /// moved past as a failover. Errs when no candidate accepted — the
    /// next pump retries, rate-limited by each replica's backoff.
    fn reconnect_route(&mut self, route: usize) -> Result<(), TransportError> {
        let claims = self.route_claims(route);
        let order = self.candidate_order(route);
        let mut last_err = TransportError::Closed;
        for (attempt, at) in order.into_iter().enumerate() {
            if attempt > 0 {
                self.failovers += 1;
            }
            let endpoint = &self.map.routes()[route].replicas[at];
            let conn = match (self.dial)(endpoint) {
                Ok(conn) => conn,
                Err(e) => {
                    self.dial_failures += 1;
                    self.conns[route].health[at].note_failure(Instant::now());
                    last_err = e;
                    continue;
                }
            };
            let partials = std::mem::take(&mut self.conns[route].partials);
            match TransportClient::connect_resuming(conn, &claims, partials) {
                Ok(client) => {
                    let rc = &mut self.conns[route];
                    rc.health[at].note_success();
                    rc.cursor = at;
                    rc.client = Some(client);
                    if rc.healing {
                        rc.healing = false;
                        self.view.note_resynced();
                    }
                    return Ok(());
                }
                Err(e) => {
                    self.conns[route].health[at].note_failure(Instant::now());
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    /// Retire `route`'s dead connection: salvage chunk progress and
    /// arm the resync accounting, and point the cursor at the *next*
    /// replica so the redial fails over (the current one just died).
    fn retire_route(&mut self, route: usize) {
        let replicas = self.map.routes()[route].replicas.len();
        let rc = &mut self.conns[route];
        if let Some(mut client) = rc.client.take() {
            rc.retired_chunks += client.snapshot_chunks_received();
            rc.partials = client.take_snapshot_progress();
            self.stream_faults += 1;
        }
        rc.healing = true;
        rc.draining = false;
        if replicas > 1 {
            rc.cursor = (rc.cursor + 1) % replicas;
            self.failovers += 1;
        }
    }

    /// Finish a planned drain if the route is ready: once no snapshot
    /// chunk train is in flight, the old connection is released cleanly
    /// (nothing to salvage, nothing to heal — **not** a resync) and the
    /// route redials, which lands on the healthiest successor carrying
    /// the view's claims. Returns whether the handoff happened.
    fn try_finish_drain(&mut self, route: usize) -> bool {
        let rc = &mut self.conns[route];
        if !rc.draining {
            return false;
        }
        let mid_train =
            rc.client.as_ref().is_some_and(|client| client.has_snapshot_in_flight());
        if mid_train {
            return false;
        }
        if let Some(client) = rc.client.take() {
            rc.retired_chunks += client.snapshot_chunks_received();
        }
        rc.draining = false;
        self.drains += 1;
        true
    }

    /// Pump one route for up to `budget` events. Returns the number
    /// applied; sets `progressed` when anything happened (so the outer
    /// loop knows the fleet has gone idle).
    fn pump_route(
        &mut self,
        route: usize,
        budget: usize,
        progressed: &mut bool,
        sink: &mut impl RouteSink,
    ) -> usize {
        let mut applied = 0;
        while applied < budget {
            if self.try_finish_drain(route) {
                *progressed = true;
                continue;
            }
            if self.conns[route].client.is_none() {
                if self.reconnect_route(route).is_err() {
                    return applied;
                }
                *progressed = true;
                continue;
            }
            let event = self.conns[route].client.as_mut().expect("just checked").next_event();
            match event {
                ClientEvent::Idle => break,
                ClientEvent::Snapshot { tld, snapshot } => {
                    // A replica answering with a checkpoint older than
                    // what the fleet already applied is stale (e.g. a
                    // just-added, still-catching-up relay): adopting it
                    // would time-travel the shared view. Refuse it and
                    // retire the route; the health-ordered redial finds
                    // a fresher replica, or the same one once its head
                    // catches up. Unlike an ordinary stream fault, the
                    // replica is also sidelined dead-with-backoff: it
                    // answered in good health with a checkpoint it
                    // *cannot* better until its own feed advances, so
                    // an immediate redial is guaranteed to fetch the
                    // same stale bytes again — without the backoff a
                    // route whose only live replica lags the view spins
                    // a reconnect-refuse hot loop instead of idling.
                    if self
                        .view
                        .serial(tld)
                        .is_some_and(|have| have.is_newer_than(snapshot.serial()))
                    {
                        self.stale_snapshots += 1;
                        let at = self.conns[route].cursor;
                        self.conns[route].health[at].note_failure(Instant::now());
                        self.retire_route(route);
                        *progressed = true;
                        continue;
                    }
                    // The snapshot is Arc-shared columnar state; the
                    // clone is two pointer copies.
                    self.view.ingest_snapshot(tld, snapshot.clone());
                    sink.on_snapshot(tld, &snapshot);
                    applied += 1;
                    *progressed = true;
                }
                ClientEvent::Delta { tld, push, .. } => {
                    if self.view.ingest_delta(tld, &push) {
                        let state =
                            self.view.snapshot(tld).expect("delta only chains on a bootstrap");
                        sink.on_delta(tld, state, &push);
                        applied += 1;
                        *progressed = true;
                    } else {
                        self.retire_route(route);
                        *progressed = true;
                    }
                }
                ClientEvent::Evicted | ClientEvent::Closed(_) => {
                    self.retire_route(route);
                    *progressed = true;
                }
            }
        }
        applied
    }

    /// Pull up to `max_events` decoded events into the shared view,
    /// visiting every route and healing faults per route as they
    /// surface. Returns the number of events applied.
    pub fn pump(&mut self, max_events: usize) -> usize {
        self.pump_with(max_events, &mut ())
    }

    /// [`RoutedZoneView::pump`] with an observer: `sink` sees every
    /// message the shared view accepts, immediately post-apply. The
    /// edge tier mirrors the routed stream into its epoch-swap index
    /// through this — one routing implementation, two consumers.
    pub fn pump_with(&mut self, max_events: usize, sink: &mut impl RouteSink) -> usize {
        let mut applied = 0;
        loop {
            let mut progressed = false;
            for route in 0..self.conns.len() {
                applied += self.pump_route(route, max_events - applied, &mut progressed, sink);
                if applied >= max_events {
                    return applied;
                }
            }
            if !progressed {
                return applied;
            }
        }
    }

    /// Pump (healing faults as usual) until the view's serial matches
    /// `targets` for every listed TLD, or `timeout` elapses.
    pub fn pump_until_serials(
        &mut self,
        targets: &[(TldId, Serial)],
        timeout: std::time::Duration,
    ) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if targets.iter().all(|&(tld, serial)| self.view.serial(tld) == Some(serial)) {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            if self.pump(1024) == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// Swap in a newer [`EndpointMap`] **without restarting consumers**.
    ///
    /// Returns `false` (a no-op) unless `new`'s generation is strictly
    /// newer than the current map's — duplicated or reordered control-
    /// plane updates can never roll the fleet back. The update may add
    /// replicas to a route or drain (remove) them; the TLD partition
    /// itself must stay identical, because the shared view's TLD
    /// universe is fixed at [`RoutedZoneView::connect`] time.
    ///
    /// Per route:
    /// * the connected replica is still listed → the connection is
    ///   kept; only the cursor moves to the replica's new index;
    /// * the connected replica was drained → the route keeps pumping
    ///   until no snapshot chunk train is in flight, then hands off to
    ///   a successor carrying its claims. A drain is a planned handoff,
    ///   not a fault: it counts under
    ///   [`RoutedZoneView::drains_completed`], never as a resync. (A
    ///   connection that *dies* mid-drain takes the normal fault path —
    ///   salvaged chunk progress, at most one resync.)
    ///
    /// Health state is reset for the new replica lists; a previously
    /// dead replica gets one fresh dial before backoff re-arms.
    ///
    /// # Panics
    /// Panics when `new` repartitions TLDs across routes.
    pub fn apply_endpoint_update(&mut self, new: EndpointMap<E>) -> bool
    where
        E: PartialEq,
    {
        if new.generation() <= self.map.generation() {
            return false;
        }
        assert_eq!(
            new.routes().len(),
            self.map.routes().len(),
            "an endpoint update may change replicas, not the route partition"
        );
        for (old_route, new_route) in self.map.routes().iter().zip(new.routes()) {
            assert_eq!(
                old_route.tlds, new_route.tlds,
                "an endpoint update may change replicas, not the TLD partition"
            );
        }
        let old = std::mem::replace(&mut self.map, new);
        for (route, rc) in self.conns.iter_mut().enumerate() {
            let new_replicas = &self.map.routes[route].replicas;
            rc.health = vec![ReplicaHealth::default(); new_replicas.len()];
            if rc.client.is_some() {
                let current = &old.routes[route].replicas[rc.cursor];
                match new_replicas.iter().position(|e| e == current) {
                    Some(at) => {
                        rc.cursor = at;
                        rc.draining = false;
                    }
                    None => {
                        rc.cursor = 0;
                        rc.draining = true;
                    }
                }
            } else {
                rc.cursor = rc.cursor.min(new_replicas.len() - 1);
                rc.draining = false;
            }
        }
        true
    }

    /// Per-route health and rotation status — the staleness/failover
    /// surface fleet dashboards read alongside the RZUQ shard stats.
    pub fn route_status(&self) -> Vec<RouteStatus> {
        self.conns
            .iter()
            .map(|rc| RouteStatus {
                cursor: rc.cursor,
                connected: rc.client.is_some(),
                draining: rc.draining,
                probe_scores: rc.health.iter().map(|h| h.score).collect(),
                dead: {
                    let now = Instant::now();
                    rc.health.iter().map(|h| h.is_down(now)).collect()
                },
            })
            .collect()
    }

    /// Replica switches so far, fleet-wide: every dial attempt that
    /// moved past a replica (connect refused) and every post-fault
    /// redial pointed at the next replica.
    pub fn failover_count(&self) -> u64 {
        self.failovers
    }

    /// Failed dial attempts fleet-wide, probes included — the
    /// "replica unreachable" failover reason.
    pub fn dial_failures(&self) -> u64 {
        self.dial_failures
    }

    /// Established streams retired by a fault (eviction, cut, bad
    /// delta, stale snapshot) — the "stream fault" failover reason.
    pub fn stream_faults(&self) -> u64 {
        self.stream_faults
    }

    /// Planned drain handoffs completed cleanly (no resync).
    pub fn drains_completed(&self) -> u64 {
        self.drains
    }

    /// Checkpoint snapshots refused for being older than the fleet
    /// view — how often the stale-replica guard fired.
    pub fn stale_snapshots_refused(&self) -> u64 {
        self.stale_snapshots
    }

    /// Snapshot continuation chunks received across every route and
    /// every connection generation.
    pub fn snapshot_chunks_received(&self) -> u64 {
        self.conns
            .iter()
            .map(|rc| {
                rc.retired_chunks
                    + rc.client.as_ref().map_or(0, |c| c.snapshot_chunks_received())
            })
            .sum()
    }

    /// True while every route has an established connection.
    pub fn is_connected(&self) -> bool {
        self.conns.iter().all(|rc| rc.client.is_some())
    }

    /// The routing table this view was built over.
    pub fn endpoint_map(&self) -> &EndpointMap<E> {
        &self.map
    }

    /// The underlying view.
    pub fn view(&self) -> &BrokerZoneView {
        &self.view
    }

    /// Mutable access (e.g. to take the accumulated zone NRDs).
    pub fn view_mut(&mut self) -> &mut BrokerZoneView {
        &mut self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkdns_broker::{BrokerConfig, OverflowPolicy, RetentionConfig};
    use darkdns_dns::{NsSet, ZoneDelta};
    use darkdns_sim::time::SimTime;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn empty_snap(origin: &str) -> ZoneSnapshot {
        ZoneSnapshot::from_entries(name(origin), Serial::new(0), SimTime::ZERO, vec![])
    }

    fn add_delta(domain: &str) -> ZoneDelta {
        let mut d = ZoneDelta::default();
        d.added.push((name(domain), NsSet::new(vec![name("ns1.provider0.net")])));
        d
    }

    fn remove_delta(domain: &str) -> ZoneDelta {
        let mut d = ZoneDelta::default();
        d.removed.push((name(domain), NsSet::new(vec![name("ns1.provider0.net")])));
        d
    }

    #[test]
    fn view_tracks_membership_and_nrds() {
        let broker = Broker::new(BrokerConfig::default());
        broker.add_shard(TldId(0), empty_snap("com"));
        let mut view = BrokerZoneView::subscribe(&broker, &[TldId(0)]);
        broker.publish(TldId(0), add_delta("fresh.com"), Serial::new(1), SimTime::ZERO);
        broker.publish(TldId(0), add_delta("later.com"), Serial::new(2), SimTime::ZERO);
        broker.publish(TldId(0), remove_delta("fresh.com"), Serial::new(3), SimTime::ZERO);
        view.pump();
        assert!(!view.contains(TldId(0), &name("fresh.com")), "removed again");
        assert!(view.contains(TldId(0), &name("later.com")));
        // Both appeared as zone NRDs even though one is transient. The
        // drain appends into a reusable buffer and clears the log.
        let mut nrds = Vec::new();
        view.drain_new_domains(&mut nrds);
        assert_eq!(nrds, vec![name("fresh.com"), name("later.com")]);
        view.drain_new_domains(&mut nrds);
        assert_eq!(nrds.len(), 2, "drained log must be empty");
        assert!(view.synced_with(&broker));
        assert_eq!(view.serial(TldId(0)), Some(Serial::new(3)));
        assert_eq!(view.snapshots_adopted(), 1);
    }

    #[test]
    fn multi_tld_view_isolates_shards() {
        let broker = Broker::new(BrokerConfig::default());
        broker.add_shard(TldId(0), empty_snap("com"));
        broker.add_shard(TldId(1), empty_snap("net"));
        let mut view = BrokerZoneView::subscribe(&broker, &[TldId(0), TldId(1)]);
        broker.publish(TldId(0), add_delta("a.com"), Serial::new(1), SimTime::ZERO);
        view.pump();
        assert!(view.contains_anywhere(&name("a.com")));
        assert!(!view.contains(TldId(1), &name("a.com")));
        assert_eq!(view.len(TldId(1)), Some(0));
    }

    #[test]
    fn lagging_view_detects_gap_and_resyncs() {
        let config = BrokerConfig {
            retention: RetentionConfig::new(8, 4),
            subscriber_capacity: 2,
            overflow: OverflowPolicy::Lag,
            lag_slo: None,
        };
        let broker = Broker::new(config);
        broker.add_shard(TldId(0), empty_snap("com"));
        let mut view = BrokerZoneView::subscribe(&broker, &[TldId(0)]);
        view.pump(); // apply the (empty) bootstrap snapshot
        // 6 pushes against a capacity-2 buffer: 4 dropped.
        for i in 1..=6u32 {
            broker.publish(TldId(0), add_delta(&format!("d{i}.com")), Serial::new(i), SimTime::ZERO);
        }
        assert_eq!(view.dropped_count(), 4);
        view.pump();
        // The two buffered frames applied cleanly; the gap is only
        // visible once the next frame arrives.
        assert!(!view.lost_sync());
        assert_eq!(view.serial(TldId(0)), Some(Serial::new(2)));
        broker.publish(TldId(0), add_delta("d7.com"), Serial::new(7), SimTime::ZERO);
        view.pump();
        assert!(view.lost_sync());
        assert!(!view.synced_with(&broker));
        assert_eq!(view.resync_count(), 0);
        view.resync(&broker);
        view.pump();
        assert!(!view.lost_sync());
        assert!(view.synced_with(&broker));
        assert_eq!(view.resync_count(), 1);
        assert_eq!(view.len(TldId(0)), Some(7));
        // The resync claimed the view's actual serial, so the ring served
        // a delta replay — no second snapshot bootstrap.
        assert_eq!(broker.stats().delta_catchups, 1);
        assert_eq!(view.snapshots_adopted(), 1);
    }

    #[test]
    fn evicted_view_loses_sync_and_recovers_via_resync() {
        // Under the Evict policy no further frames arrive after an
        // eviction, so the serial-gap path can never fire; pump must
        // surface the eviction itself or the view stalls forever.
        let config = BrokerConfig {
            retention: RetentionConfig::new(16, 8),
            subscriber_capacity: 2,
            overflow: OverflowPolicy::Evict,
            lag_slo: None,
        };
        let broker = Broker::new(config);
        broker.add_shard(TldId(0), empty_snap("com"));
        let mut view = BrokerZoneView::subscribe(&broker, &[TldId(0)]);
        view.pump(); // apply the (empty) bootstrap snapshot
        // 3 live pushes against a capacity-2 buffer: the third evicts.
        for i in 1..=3u32 {
            broker.publish(TldId(0), add_delta(&format!("d{i}.com")), Serial::new(i), SimTime::ZERO);
        }
        assert_eq!(view.pump(), 0, "evicted view must not apply from a cleared queue");
        assert!(view.lost_sync(), "eviction must surface as lost sync");
        view.resync(&broker);
        view.pump();
        assert!(view.synced_with(&broker));
        assert_eq!(view.len(TldId(0)), Some(3));
        assert_eq!(view.resync_count(), 1);
    }

    #[test]
    fn late_join_bootstraps_from_checkpoint() {
        let config =
            BrokerConfig { retention: RetentionConfig::new(4, 2), ..BrokerConfig::default() };
        let broker = Broker::new(config);
        broker.add_shard(TldId(0), empty_snap("com"));
        for i in 1..=20u32 {
            broker.publish(TldId(0), add_delta(&format!("d{i}.com")), Serial::new(i), SimTime::ZERO);
        }
        let mut view = BrokerZoneView::subscribe(&broker, &[TldId(0)]);
        view.pump();
        assert!(view.synced_with(&broker));
        assert_eq!(view.len(TldId(0)), Some(20));
        // Bootstrap came from a checkpoint, so only post-checkpoint
        // additions count as NRDs observed live.
        let mut nrds = Vec::new();
        view.drain_new_domains(&mut nrds);
        assert!(nrds.len() <= 4);
    }
}
