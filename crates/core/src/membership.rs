//! The consumer contract: zone membership, behind one trait.
//!
//! Every stage of the pipeline that asks "is this name already
//! delegated?" — the Step-1 detector's discard test, the monitor's
//! zone-visibility accounting, the ablation's capture measurement —
//! used to be hard-wired to a borrowed in-process oracle. That coupling
//! meant the PR 2–4 broker and socket stack could distribute deltas
//! fast but never feed the actual detection pipeline.
//! [`ZoneMembership`] is the decoupling: the pipeline is generic over
//! *where the zone view comes from*, and the deployment chooses a
//! backend.
//!
//! # Backends and when to use which
//!
//! | backend | freshness | address space | use it for |
//! |---------|-----------|---------------|------------|
//! | [`OracleMembership`] | daily CZDS snapshots | in-process borrow | the paper's batch reproduction ([`crate::experiment::Experiment::run`]) |
//! | [`UniverseZoneView`] | RZU push cadence | in-process borrow | ground-truth reference runs; the direct backend of the cross-backend equivalence tests |
//! | [`BrokerZoneView`] | RZU push cadence | same process as the broker | single-host streaming deployments; zero serialization on the snapshot path |
//! | [`RemoteZoneView`] | RZU push cadence + socket latency | anywhere a TCP dial reaches | fleet consumers; reconnect-with-claims fault recovery built in |
//! | [`RoutedZoneView`](crate::broker_view::RoutedZoneView) | RZU push cadence + socket latency | anywhere a TCP dial reaches; one conn per [`EndpointMap`](crate::broker_view::EndpointMap) route | TLD universes partitioned across several brokers (or relay trees); health-scored replica failover (`RZUQ` probes prefer the freshest head, dead endpoints dial at a backed-off rate), generation-gated live endpoint updates (replicas added or drained without restarting the view), claims preserved across every switch |
//! | filtered relay (`BrokerServer::attach_upstream`) | RZU push cadence + one relay hop per tier | the relay re-serves in its own process | narrowing a universe down a fan-out tree: a relay's scoped `RZUH` subscribes only its TLD subset, so non-subset shards never cross its upstream link, and subset frames re-serve byte-identical |
//! | `darkdns_edge::EdgeClient` | RZU push cadence + one edge feed hop | anywhere a TCP dial reaches; no local replica, O(1) memory | query-only thin clients; batched lookups answered from one shared `EdgeIndex` whose read path takes no shard publish locks; replica-list endpoint failover with bounded backoff built in |
//!
//! All push-cadence backends answer identically for the same feed at
//! the same boundary — pinned by `tests/membership_equivalence.rs`,
//! which runs certstream detection through the direct, in-process-
//! broker and TCP backends and asserts byte-identical candidate sets.
//!
//! # Semantics
//!
//! * **Time.** [`ZoneMembership::advance_to`] brings the view's
//!   knowledge up to `now`: the oracle moves its publication clock,
//!   push-fed views drain whatever frames have arrived. Pull-based
//!   backends are exact; push-based backends additionally need their
//!   producer driven (publish, then pump) — the experiment harness
//!   ([`crate::experiment::run_certstream_detection`]) owns that
//!   interleaving.
//! * **Serials.** [`ZoneMembership::serial`] is a per-TLD freshness
//!   token, comparable only within one backend (the oracle counts
//!   snapshot days, the direct view counts push intervals, broker-fed
//!   views carry zone-journal serials).
//! * **Health.** [`ZoneMembership::sync_state`] says whether answers
//!   are trustworthy right now: a broker view that lost sync reports
//!   [`SyncHealth::LostSync`] until resynced, and consumers must treat
//!   membership answers as stale until then.

use crate::broker_view::{BrokerZoneView, RemoteZoneView};
use darkdns_broker::transport::{TransportClient, TransportError};
use darkdns_dns::{DomainName, Serial};
use darkdns_registry::czds::SnapshotOracle;
use darkdns_registry::live::UniverseZoneView;
use darkdns_registry::tld::TldId;
use darkdns_registry::universe::{DomainRecord, Universe};
use darkdns_sim::time::SimTime;

/// Coarse health of a membership backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncHealth {
    /// Every subscribed TLD has a state and the stream is intact.
    Ready,
    /// Some TLDs have not bootstrapped yet; answers for them are
    /// vacuously negative.
    Bootstrapping,
    /// A gap, eviction or transport fault left the view unable to
    /// advance; answers are stale until a resync completes.
    LostSync,
}

/// The health probe every backend answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncState {
    pub health: SyncHealth,
    /// Subscribed TLDs currently holding a state.
    pub tlds_ready: usize,
    /// Subscribed TLDs in total.
    pub tlds_total: usize,
    /// Times this view healed a gap by rejoining its source (always 0
    /// for pull-based backends).
    pub resyncs: u64,
}

impl SyncState {
    /// A backend that can never desynchronise (oracle, direct view).
    pub fn always_ready(tlds: usize) -> Self {
        SyncState { health: SyncHealth::Ready, tlds_ready: tlds, tlds_total: tlds, resyncs: 0 }
    }

    pub fn is_ready(&self) -> bool {
        self.health == SyncHealth::Ready
    }
}

/// Zone membership as the pipeline consumes it.
///
/// Object-safe; `&mut M` and `Box<dyn ZoneMembership>` forward, so the
/// pipeline stages can borrow one backend in sequence.
pub trait ZoneMembership {
    /// Is `name` currently delegated in `tld`'s view?
    fn contains(&self, tld: TldId, name: &DomainName) -> bool;

    /// Is `name` delegated in any subscribed TLD's view?
    fn contains_anywhere(&self, name: &DomainName) -> bool;

    /// The view's freshness token for `tld` (`None` before any state
    /// exists). Backend-local; never compare across backends.
    fn serial(&self, tld: TldId) -> Option<Serial>;

    /// Append-and-clear the accumulated newly-delegated-domain log into
    /// `out` (the Table-1 "Zone NRD" population as this backend
    /// observes it). Drain-style: implementations reuse their internal
    /// buffer, and callers reuse `out`.
    fn drain_new_domains(&mut self, out: &mut Vec<DomainName>);

    /// Health probe: are membership answers trustworthy right now?
    fn sync_state(&self) -> SyncState;

    /// Bring the view's knowledge up to (at least) `now`. **Monotonic
    /// by contract**: zone views only move forward, and an instant the
    /// view has already passed is a no-op — push-based backends cannot
    /// un-apply deltas, and pull-based backends mirror that so every
    /// backend answers historical probes the same way. Pull-based
    /// backends move their clock; push-based backends drain whatever
    /// has arrived (their producer must be driven separately). The
    /// default is a no-op for views with no notion of time.
    fn advance_to(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Can membership for `tld` be assessed at all yet? Until a
    /// baseline exists, "absent" is indistinguishable from "unseen" and
    /// the detector holds candidates back.
    fn baseline_ready(&self, tld: TldId) -> bool {
        self.serial(tld).is_some()
    }

    /// Membership for a resolved ground-truth record — a fast path for
    /// backends that can answer from the record without a second name
    /// lookup. Must agree with `contains(record.tld, &record.name)`.
    fn contains_record(&self, record: &DomainRecord) -> bool {
        self.contains(record.tld, &record.name)
    }
}

impl<M: ZoneMembership + ?Sized> ZoneMembership for &mut M {
    fn contains(&self, tld: TldId, name: &DomainName) -> bool {
        (**self).contains(tld, name)
    }
    fn contains_anywhere(&self, name: &DomainName) -> bool {
        (**self).contains_anywhere(name)
    }
    fn serial(&self, tld: TldId) -> Option<Serial> {
        (**self).serial(tld)
    }
    fn drain_new_domains(&mut self, out: &mut Vec<DomainName>) {
        (**self).drain_new_domains(out)
    }
    fn sync_state(&self) -> SyncState {
        (**self).sync_state()
    }
    fn advance_to(&mut self, now: SimTime) {
        (**self).advance_to(now)
    }
    fn baseline_ready(&self, tld: TldId) -> bool {
        (**self).baseline_ready(tld)
    }
    fn contains_record(&self, record: &DomainRecord) -> bool {
        (**self).contains_record(record)
    }
}

impl<M: ZoneMembership + ?Sized> ZoneMembership for Box<M> {
    fn contains(&self, tld: TldId, name: &DomainName) -> bool {
        (**self).contains(tld, name)
    }
    fn contains_anywhere(&self, name: &DomainName) -> bool {
        (**self).contains_anywhere(name)
    }
    fn serial(&self, tld: TldId) -> Option<Serial> {
        (**self).serial(tld)
    }
    fn drain_new_domains(&mut self, out: &mut Vec<DomainName>) {
        (**self).drain_new_domains(out)
    }
    fn sync_state(&self) -> SyncState {
        (**self).sync_state()
    }
    fn advance_to(&mut self, now: SimTime) {
        (**self).advance_to(now)
    }
    fn baseline_ready(&self, tld: TldId) -> bool {
        (**self).baseline_ready(tld)
    }
    fn contains_record(&self, record: &DomainRecord) -> bool {
        (**self).contains_record(record)
    }
}

/// The daily-snapshot backend: the paper's batch pipeline, on the
/// shared contract. Wraps the CZDS [`SnapshotOracle`] plus the universe
/// namespace and a publication clock moved by `advance_to`.
pub struct OracleMembership<'a> {
    oracle: &'a SnapshotOracle<'a>,
    universe: &'a Universe,
    now: SimTime,
}

impl<'a> OracleMembership<'a> {
    pub fn new(oracle: &'a SnapshotOracle<'a>, universe: &'a Universe) -> Self {
        OracleMembership { oracle, universe, now: SimTime::ZERO }
    }

    /// The instant the view currently answers for (the furthest
    /// `advance_to` has reached — the clock never rewinds).
    pub fn now(&self) -> SimTime {
        self.now
    }
}

impl ZoneMembership for OracleMembership<'_> {
    fn contains(&self, tld: TldId, name: &DomainName) -> bool {
        self.universe
            .lookup(name)
            .is_some_and(|r| r.tld == tld && self.oracle.in_latest_available(r, self.now))
    }

    fn contains_anywhere(&self, name: &DomainName) -> bool {
        self.universe.lookup(name).is_some_and(|r| self.oracle.in_latest_available(r, self.now))
    }

    fn serial(&self, tld: TldId) -> Option<Serial> {
        self.oracle
            .schedule()
            .latest_available_day(tld, self.now)
            .map(|day| Serial::new(day as u32))
    }

    fn drain_new_domains(&mut self, _out: &mut Vec<DomainName>) {
        // Snapshot consumers extract zone NRDs by diffing consecutive
        // snapshots — a batch job this oracle-backed view does not
        // materialise. The push-cadence backends carry the live log.
    }

    fn sync_state(&self) -> SyncState {
        let total = self.oracle.schedule().tld_count();
        let ready = (0..total as u16)
            .filter(|&t| self.oracle.baseline_available(TldId(t), self.now))
            .count();
        SyncState {
            // Ground truth never tears; before the first publication a
            // TLD is merely unassessable, which `baseline_ready` gates.
            health: if ready == total { SyncHealth::Ready } else { SyncHealth::Bootstrapping },
            tlds_ready: ready,
            tlds_total: total,
            resyncs: 0,
        }
    }

    fn advance_to(&mut self, now: SimTime) {
        self.now = self.now.max(now);
    }

    fn baseline_ready(&self, tld: TldId) -> bool {
        self.oracle.baseline_available(tld, self.now)
    }

    fn contains_record(&self, record: &DomainRecord) -> bool {
        self.oracle.in_latest_available(record, self.now)
    }
}

impl ZoneMembership for UniverseZoneView<'_> {
    fn contains(&self, tld: TldId, name: &DomainName) -> bool {
        UniverseZoneView::contains(self, tld, name)
    }

    fn contains_anywhere(&self, name: &DomainName) -> bool {
        UniverseZoneView::contains_anywhere(self, name)
    }

    fn serial(&self, tld: TldId) -> Option<Serial> {
        UniverseZoneView::serial(self, tld)
    }

    fn drain_new_domains(&mut self, out: &mut Vec<DomainName>) {
        UniverseZoneView::drain_new_domains(self, out)
    }

    fn sync_state(&self) -> SyncState {
        let total = self.tlds().len();
        let ready = if self.boundary().is_some() { total } else { 0 };
        SyncState {
            health: if ready == total { SyncHealth::Ready } else { SyncHealth::Bootstrapping },
            tlds_ready: ready,
            tlds_total: total,
            resyncs: 0,
        }
    }

    fn advance_to(&mut self, now: SimTime) {
        UniverseZoneView::advance_to(self, now)
    }

    fn contains_record(&self, record: &DomainRecord) -> bool {
        UniverseZoneView::contains_record(self, record)
    }
}

impl ZoneMembership for BrokerZoneView {
    fn contains(&self, tld: TldId, name: &DomainName) -> bool {
        BrokerZoneView::contains(self, tld, name)
    }

    fn contains_anywhere(&self, name: &DomainName) -> bool {
        BrokerZoneView::contains_anywhere(self, name)
    }

    fn serial(&self, tld: TldId) -> Option<Serial> {
        BrokerZoneView::serial(self, tld)
    }

    fn drain_new_domains(&mut self, out: &mut Vec<DomainName>) {
        BrokerZoneView::drain_new_domains(self, out)
    }

    fn sync_state(&self) -> SyncState {
        BrokerZoneView::sync_state(self)
    }

    /// Drain whatever frames the broker has already delivered. The
    /// publisher side must be driven separately (the harness publishes
    /// up to `now` before observing); `now` itself carries no
    /// information an in-process queue does not.
    fn advance_to(&mut self, _now: SimTime) {
        self.pump();
    }
}

impl<D> ZoneMembership for RemoteZoneView<D>
where
    D: FnMut(&[(TldId, Option<Serial>)]) -> Result<TransportClient, TransportError>,
{
    fn contains(&self, tld: TldId, name: &DomainName) -> bool {
        self.view().contains(tld, name)
    }

    fn contains_anywhere(&self, name: &DomainName) -> bool {
        self.view().contains_anywhere(name)
    }

    fn serial(&self, tld: TldId) -> Option<Serial> {
        self.view().serial(tld)
    }

    fn drain_new_domains(&mut self, out: &mut Vec<DomainName>) {
        self.view_mut().drain_new_domains(out)
    }

    fn sync_state(&self) -> SyncState {
        self.view().sync_state()
    }

    /// Drain decoded events already on the socket (frames still in
    /// flight arrive at a later pump; callers that need a hard boundary
    /// use [`RemoteZoneView::pump_until_serials`]).
    fn advance_to(&mut self, _now: SimTime) {
        self.pump(usize::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkdns_registry::czds::SnapshotSchedule;
    use darkdns_registry::hosting::ProviderId;
    use darkdns_registry::registrar::RegistrarId;
    use darkdns_registry::tld::paper_gtlds;
    use darkdns_registry::universe::{CertTiming, DomainId, DomainKind};
    use darkdns_sim::rng::RngPool;
    use darkdns_sim::time::SimDuration;

    fn record(name: &str, insert_day: u64, removed_day: Option<u64>) -> DomainRecord {
        DomainRecord {
            id: DomainId(0),
            name: DomainName::parse(name).unwrap(),
            tld: TldId(0),
            kind: DomainKind::LongLived,
            created: SimTime::from_days(insert_day),
            zone_insert: SimTime::from_days(insert_day),
            removed: removed_day.map(SimTime::from_days),
            registrar: RegistrarId(0),
            dns_provider: ProviderId(0),
            web_asn: 13_335,
            cert_timing: CertTiming::Prompt,
            cert_hint: None,
            ns_change_at: None,
            malicious: false,
        }
    }

    #[test]
    fn oracle_membership_matches_the_oracle() {
        let tlds = paper_gtlds();
        let start = SimTime::from_days(400);
        let schedule = SnapshotSchedule::new(&RngPool::new(7), &tlds, start, 30);
        let oracle = SnapshotOracle::new(&schedule);
        let mut universe = Universe::new();
        universe.push(record("a.com", 402, None));
        let mut m = OracleMembership::new(&oracle, &universe);

        // Before the window: no baseline, nothing assessable.
        assert!(!m.baseline_ready(TldId(0)));
        assert_eq!(m.serial(TldId(0)), None);
        assert!(!m.sync_state().is_ready());

        // Ten days in: the latest snapshot contains the day-402 insert.
        m.advance_to(SimTime::from_days(412));
        assert!(m.baseline_ready(TldId(0)));
        assert!(m.contains(TldId(0), &DomainName::parse("a.com").unwrap()));
        assert!(m.contains_anywhere(&DomainName::parse("a.com").unwrap()));
        // The fast path agrees with the name path.
        let r = universe.lookup(&DomainName::parse("a.com").unwrap()).unwrap();
        assert_eq!(m.contains_record(r), m.contains(r.tld, &r.name));
        // Wrong TLD: negative.
        assert!(!m.contains(TldId(1), &DomainName::parse("a.com").unwrap()));
        assert!(m.serial(TldId(0)).is_some());
        // Oracle views have no live NRD log.
        let mut out = Vec::new();
        m.drain_new_domains(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn borrowed_and_boxed_backends_forward() {
        fn takes_membership<M: ZoneMembership>(m: &M, name: &DomainName) -> bool {
            m.contains_anywhere(name)
        }
        let mut universe = Universe::new();
        universe.push(record("a.com", 0, None));
        let mut view =
            UniverseZoneView::new(&universe, &[TldId(0)], SimTime::ZERO, SimDuration::from_minutes(5));
        ZoneMembership::advance_to(&mut view, SimTime::from_days(1));
        let name = DomainName::parse("a.com").unwrap();
        assert!(takes_membership(&(&mut view), &name));
        let boxed: Box<dyn ZoneMembership + '_> = Box::new(view);
        assert!(takes_membership(&boxed, &name));
        assert!(boxed.sync_state().is_ready());
    }
}
