//! The DarkDNS pipeline — the paper's primary contribution.
//!
//! Five steps (§3), each a module here:
//!
//! 1. [`detector`] — infer newly registered domains from the certificate
//!    stream by discarding names already present in the latest available
//!    zone snapshots;
//! 2. [`validate`] — collect RDAP registration data (worker pool, no
//!    retries) for every candidate;
//! 3. [`monitor`] — reactive A/AAAA/NS measurements every 10 minutes for
//!    the first 48 hours of each candidate's life;
//! 4. `validate` again — cross-check the CT detection timestamp against
//!    the RDAP creation time (detection latency; misclassification
//!    filter);
//! 5. [`transient`] — classify candidates that never appear in any zone
//!    snapshot over the window (±3 days slack) as *transient domains*.
//!
//! [`experiment`] wires the substrates together, runs the pipeline over a
//! calibrated universe and produces a [`report::Report`] containing every
//! table and figure of the paper's evaluation. [`feed`] implements the
//! in-memory topic bus (the simulation's Kafka) plus the public
//! "zonestream" NRD feed the paper releases. [`rzu_ablation`] sweeps
//! snapshot/push cadences to quantify the value of rapid zone updates —
//! the §5 argument, turned into an experiment. [`broker_view`] is the
//! RZU deployment shape of the membership check: a live zone view fed by
//! the `darkdns_broker` distribution broker instead of daily snapshots.

pub mod broker_view;
pub mod config;
pub mod detector;
pub mod experiment;
pub mod feed;
pub mod monitor;
pub mod report;
pub mod rzu_ablation;
pub mod streaming;
pub mod transient;
pub mod validate;

pub use config::ExperimentConfig;
pub use detector::{Detector, NrdCandidate};
pub use experiment::Experiment;
pub use report::Report;
