//! The DarkDNS pipeline — the paper's primary contribution.
//!
//! Five steps (§3), each a module here:
//!
//! 1. [`detector`] — infer newly registered domains from the certificate
//!    stream by discarding names already present in the pipeline's zone
//!    view;
//! 2. [`validate`] — collect RDAP registration data (worker pool, no
//!    retries) for every candidate;
//! 3. [`monitor`] — reactive A/AAAA/NS measurements every 10 minutes for
//!    the first 48 hours of each candidate's life;
//! 4. `validate` again — cross-check the CT detection timestamp against
//!    the RDAP creation time (detection latency; misclassification
//!    filter);
//! 5. [`transient`] — classify candidates that never appear in any zone
//!    snapshot over the window (±3 days slack) as *transient domains*.
//!
//! # The consumer contract: [`membership::ZoneMembership`]
//!
//! Every stage that asks "is this name already delegated?" does so
//! through one trait, [`membership::ZoneMembership`] — the pipeline is
//! generic over *where its zone view comes from*, and a deployment
//! picks a backend:
//!
//! | backend | freshness | address space | pick it when |
//! |---------|-----------|---------------|--------------|
//! | [`membership::OracleMembership`] | daily CZDS snapshots | in-process | reproducing the paper's batch evaluation |
//! | `darkdns_registry::live::UniverseZoneView` | RZU push cadence | in-process | ground-truth reference runs and equivalence baselines |
//! | [`broker_view::BrokerZoneView`] | RZU push cadence | broker's process | single-host streaming: zero-serialization snapshots, shared delta frames |
//! | [`broker_view::RemoteZoneView`] | RZU push + socket | anywhere TCP reaches | fleet consumers: reconnect-with-claims recovery, `RZUQ` stats scraping |
//! | [`broker_view::RoutedZoneView`] | RZU push + socket | anywhere TCP reaches, one conn per [`broker_view::EndpointMap`] route | universes partitioned across several root brokers or served through relay trees: per-route replica lists with health-scored failover (`RZUQ` head-freshness probes pick the freshest live replica, dead endpoints back off), live endpoint-map updates (generation-gated add/drain without restarting the consumer), and claims carried across replica switches |
//! | relay tier (`BrokerServer::attach_upstream`) | RZU push + one relay hop | relay's process re-serves downstream | regional fan-out: a relay subscribes **shard-filtered** (scoped `RZUH`: only its TLD subset crosses the upstream link) and re-serves the subset byte-identical; delta-only taps skip the bootstrap entirely |
//! | `darkdns_edge::EdgeClient` → `EdgeServer` | RZU push, one feed hop behind the broker head | anywhere TCP reaches, O(1) memory per client | thin clients: batched `RZUL`/`RZUR` point lookups against a shared read-optimized index instead of a per-consumer replica; replica-list failover with bounded backoff |
//!
//! The push-cadence backends are interchangeable by construction:
//! `tests/membership_equivalence.rs` drives identical universe feeds
//! and certstream entries through the direct, in-process-broker and TCP
//! backends and asserts byte-identical candidate sets and detector
//! stats. [`experiment::run_certstream_detection`] is the harness that
//! makes such time-faithful runs (publish up to an entry's timestamp,
//! then observe it) one function call.
//!
//! [`experiment`] wires the substrates together, runs the pipeline over a
//! calibrated universe and produces a [`report::Report`] containing every
//! table and figure of the paper's evaluation. [`feed`] implements the
//! in-memory topic bus (the simulation's Kafka) plus the public
//! "zonestream" NRD feed the paper releases. [`rzu_ablation`] sweeps
//! snapshot/push cadences to quantify the value of rapid zone updates —
//! the §5 argument, turned into an experiment — and scores what a
//! deployed backend *actually* captured
//! ([`rzu_ablation::observed_capture`]). [`broker_view`] holds the RZU
//! deployment shapes of the membership check: live zone views fed by the
//! `darkdns_broker` distribution broker, in-process or over the socket
//! transport.

pub mod broker_view;
pub mod config;
pub mod detector;
pub mod experiment;
pub mod feed;
pub mod membership;
pub mod monitor;
pub mod report;
pub mod rzu_ablation;
pub mod streaming;
pub mod transient;
pub mod validate;

pub use config::ExperimentConfig;
pub use detector::{Detector, NrdCandidate};
pub use experiment::{run_certstream_detection, Experiment, LiveDetection, LiveInputs};
pub use membership::{OracleMembership, SyncHealth, SyncState, ZoneMembership};
pub use report::Report;
