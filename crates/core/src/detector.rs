//! Step 1: infer newly registered domains from the certificate stream.
//!
//! For every precertificate entry, extract the registrable ("pay-level")
//! domain of each CN/SAN name via the Public Suffix List, and keep the
//! name iff it is *absent* from the zone view at that instant. Each
//! registrable domain is reported once, at its first CT appearance.
//!
//! The detector is generic over the zone view
//! ([`crate::membership::ZoneMembership`]): the paper's batch pipeline
//! runs it against the daily-snapshot oracle
//! ([`crate::membership::OracleMembership`]); streaming deployments run
//! the *same* detector against a push-fed view — in-process
//! ([`crate::broker_view::BrokerZoneView`]), over a socket
//! ([`crate::broker_view::RemoteZoneView`]), or the direct ground-truth
//! reference (`darkdns_registry::live::UniverseZoneView`). Identical
//! inputs through the push-cadence backends yield identical candidate
//! sets (`tests/membership_equivalence.rs`).

use crate::membership::ZoneMembership;
use darkdns_ct::stream::CertStreamEntry;
use darkdns_dns::hash::NameSet;
use darkdns_dns::{DomainName, PublicSuffixList};
use darkdns_registry::universe::{DomainId, Universe};
use darkdns_sim::time::SimTime;

/// A domain the pipeline believes to be newly registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NrdCandidate {
    pub domain: DomainName,
    /// Ground-truth backlink (resolution of the name against the
    /// registry; the pipeline itself only ever uses `domain` and
    /// `detected_at`).
    pub record: DomainId,
    /// Certstream-reported timestamp of the first sighting.
    pub detected_at: SimTime,
}

/// Statistics for the discard path (useful for sanity checks and the
/// pipeline-throughput bench).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DetectorStats {
    pub entries_seen: u64,
    pub names_seen: u64,
    pub discarded_in_zone: u64,
    pub discarded_duplicate: u64,
    pub discarded_unresolvable: u64,
    pub discarded_no_baseline: u64,
    pub candidates: u64,
}

/// The Step-1 detector, generic over where its zone view comes from.
pub struct Detector<'a, M: ZoneMembership> {
    psl: &'a PublicSuffixList,
    universe: &'a Universe,
    membership: M,
    seen: NameSet<DomainName>,
    stats: DetectorStats,
}

impl<'a, M: ZoneMembership> Detector<'a, M> {
    pub fn new(psl: &'a PublicSuffixList, universe: &'a Universe, membership: M) -> Self {
        Detector { psl, universe, membership, seen: NameSet::default(), stats: DetectorStats::default() }
    }

    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    /// The zone view the detector consults.
    pub fn membership(&self) -> &M {
        &self.membership
    }

    /// Mutable access to the zone view — harnesses use this to drive a
    /// push-fed backend (publish / pump / sync) between observations.
    pub fn membership_mut(&mut self) -> &mut M {
        &mut self.membership
    }

    /// Hand the zone view back (e.g. to the monitor stage).
    pub fn into_membership(self) -> M {
        self.membership
    }

    /// Process one certstream entry, returning any new NRD candidates.
    /// The zone view is advanced to the entry's timestamp first, so
    /// membership answers are as fresh as the backend can be at that
    /// instant.
    pub fn observe(&mut self, entry: &CertStreamEntry) -> Vec<NrdCandidate> {
        self.stats.entries_seen += 1;
        self.membership.advance_to(entry.at);
        let mut out = Vec::new();
        for name in &entry.names {
            self.stats.names_seen += 1;
            let Some(registrable) = self.psl.registrable_domain(name) else {
                self.stats.discarded_unresolvable += 1;
                continue;
            };
            if self.seen.contains(&registrable) {
                self.stats.discarded_duplicate += 1;
                continue;
            }
            // Resolve the name against the registry's namespace. In the
            // real pipeline this resolution is implicit (the name *is* the
            // identity); here the universe is the namespace.
            let Some(record) = self.universe.lookup(&registrable) else {
                self.stats.discarded_unresolvable += 1;
                continue;
            };
            if !self.membership.baseline_ready(record.tld) {
                // No baseline for this TLD yet: "absent from the view"
                // is not assessable, so the name is not a candidate. (Do
                // not mark it seen — once the baseline lands a later
                // certificate can still qualify.)
                self.stats.discarded_no_baseline += 1;
                continue;
            }
            if self.membership.contains_record(record) {
                self.stats.discarded_in_zone += 1;
                // Cache the verdict: later certificates for this name
                // (renewals) would be discarded again anyway.
                self.seen.insert(registrable);
                continue;
            }
            self.seen.insert(registrable.clone());
            self.stats.candidates += 1;
            out.push(NrdCandidate { domain: registrable, record: record.id, detected_at: entry.at });
        }
        out
    }

    /// Run over a whole stream, collecting all candidates.
    pub fn run(&mut self, entries: &[CertStreamEntry]) -> Vec<NrdCandidate> {
        let mut out = Vec::new();
        for e in entries {
            out.extend(self.observe(e));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::OracleMembership;
    use darkdns_ct::ca::CaFleet;
    use darkdns_ct::stream::CertStream;
    use darkdns_registry::czds::{SnapshotOracle, SnapshotSchedule};
    use darkdns_registry::hosting::HostingLandscape;
    use darkdns_registry::registrar::RegistrarFleet;
    use darkdns_registry::tld::paper_gtlds;
    use darkdns_registry::universe::DomainKind;
    use darkdns_registry::workload::{UniverseBuilder, WorkloadConfig};
    use darkdns_sim::rng::RngPool;

    struct Fixture {
        universe: Universe,
        schedule: SnapshotSchedule,
        stream: CertStream,
        psl: PublicSuffixList,
    }

    fn fixture(seed: u64) -> Fixture {
        let tlds = paper_gtlds();
        let fleet = RegistrarFleet::paper_fleet();
        let hosting = HostingLandscape::paper_landscape();
        let config = WorkloadConfig {
            scale: 0.004,
            window_days: 10,
            base_population_frac: 0.05,
            ..WorkloadConfig::default()
        };
        let pool = RngPool::new(seed);
        let schedule = SnapshotSchedule::new(&pool, &tlds, config.window_start, config.window_days);
        let builder = UniverseBuilder { tlds: &tlds, fleet: &fleet, hosting: &hosting, schedule: &schedule, config };
        let universe = builder.build(&pool);
        let (stream, _) = CertStream::build(&universe, &schedule, &CaFleet::paper_fleet(), &pool);
        Fixture { universe, schedule, stream, psl: PublicSuffixList::builtin() }
    }

    #[test]
    fn detects_fresh_registrations_not_renewals() {
        let f = fixture(1);
        let oracle = SnapshotOracle::new(&f.schedule);
        let mut detector =
            Detector::new(&f.psl, &f.universe, OracleMembership::new(&oracle, &f.universe));
        let candidates = detector.run(f.stream.entries());
        assert!(!candidates.is_empty());
        let stats = detector.stats();
        assert!(stats.discarded_in_zone > 0, "no renewal was discarded: {stats:?}");
        // Base-population renewals must never appear as candidates.
        for c in &candidates {
            let r = f.universe.get(c.record);
            assert!(
                r.created >= f.schedule.window_start()
                    || !r.kind.has_registration()
                    || r.kind == DomainKind::ReRegistered,
                "pre-window live domain {} detected as NRD",
                r.name
            );
        }
    }

    #[test]
    fn dedupes_repeat_sightings() {
        let f = fixture(2);
        let oracle = SnapshotOracle::new(&f.schedule);
        let mut detector =
            Detector::new(&f.psl, &f.universe, OracleMembership::new(&oracle, &f.universe));
        let candidates = detector.run(f.stream.entries());
        let mut seen = std::collections::HashSet::new();
        for c in &candidates {
            assert!(seen.insert(c.domain.clone()), "{} reported twice", c.domain);
        }
        // www/mail SANs collapse onto the registrable domain.
        assert!(detector.stats().discarded_duplicate > 0);
    }

    #[test]
    fn transients_and_ghosts_become_candidates() {
        let f = fixture(3);
        let oracle = SnapshotOracle::new(&f.schedule);
        let mut detector =
            Detector::new(&f.psl, &f.universe, OracleMembership::new(&oracle, &f.universe));
        let candidates = detector.run(f.stream.entries());
        let kinds: Vec<DomainKind> =
            candidates.iter().map(|c| f.universe.get(c.record).kind).collect();
        assert!(kinds.iter().any(|k| *k == DomainKind::Transient), "no transient candidates");
        assert!(
            kinds.iter().any(|k| matches!(k, DomainKind::Ghost { .. })),
            "no ghost candidates"
        );
        assert!(kinds.iter().any(|k| *k == DomainKind::LongLived), "no ordinary NRD candidates");
    }

    #[test]
    fn detection_precedes_snapshot_membership() {
        // Every candidate was detected at a moment when the latest
        // available snapshot did not contain it (tautological from the
        // implementation, but this pins the invariant against refactors).
        let f = fixture(4);
        let oracle = SnapshotOracle::new(&f.schedule);
        let mut detector =
            Detector::new(&f.psl, &f.universe, OracleMembership::new(&oracle, &f.universe));
        for c in detector.run(f.stream.entries()) {
            let r = f.universe.get(c.record);
            assert!(!oracle.in_latest_available(r, c.detected_at));
        }
    }

    #[test]
    fn coverage_is_roughly_calibrated() {
        // The fraction of window NRDs detected should land near the
        // aggregate Table-1 coverage (42%), within a generous band.
        let f = fixture(5);
        let oracle = SnapshotOracle::new(&f.schedule);
        let mut detector =
            Detector::new(&f.psl, &f.universe, OracleMembership::new(&oracle, &f.universe));
        let candidates = detector.run(f.stream.entries());
        let start = f.schedule.window_start();
        let nrd_total = f.universe.count_where(|r| {
            matches!(r.kind, DomainKind::LongLived | DomainKind::EarlyRemoved) && r.created >= start
        });
        let nrd_detected = candidates
            .iter()
            .filter(|c| {
                let r = f.universe.get(c.record);
                matches!(r.kind, DomainKind::LongLived | DomainKind::EarlyRemoved)
            })
            .count();
        let coverage = nrd_detected as f64 / nrd_total as f64;
        assert!((0.30..0.55).contains(&coverage), "coverage {coverage}");
    }

    #[test]
    fn live_view_detector_runs_against_ground_truth() {
        // The same detector, compiled against the push-cadence direct
        // view: more NRDs are discarded as in-zone (push freshness beats
        // daily snapshots) and no candidate is ever view-resident at its
        // detection instant.
        use darkdns_registry::live::UniverseZoneView;
        use darkdns_registry::tld::TldId;
        use darkdns_sim::time::SimDuration;

        let f = fixture(6);
        let tld_ids: Vec<TldId> = (0..paper_gtlds().len() as u16).map(TldId).collect();
        let anchor = f.schedule.window_start();
        let view = UniverseZoneView::new(
            &f.universe,
            &tld_ids,
            anchor,
            SimDuration::from_minutes(5),
        );
        let mut detector = Detector::new(&f.psl, &f.universe, view);
        let entries: Vec<_> =
            f.stream.entries().iter().filter(|e| e.at >= anchor).cloned().collect();
        let candidates = detector.run(&entries);
        let stats = detector.stats();
        assert!(!candidates.is_empty());
        assert!(stats.discarded_in_zone > 0, "renewals must be view-resident: {stats:?}");
        assert_eq!(stats.candidates as usize, candidates.len());
        assert_eq!(
            stats.names_seen,
            stats.candidates
                + stats.discarded_in_zone
                + stats.discarded_duplicate
                + stats.discarded_unresolvable
                + stats.discarded_no_baseline
        );
        assert!(detector.membership().sync_state().is_ready());
        // The live view also surfaces the zone-NRD log.
        let mut nrds = Vec::new();
        detector.membership_mut().drain_new_domains(&mut nrds);
        assert!(!nrds.is_empty());
    }
}
