//! Step 1: infer newly registered domains from the certificate stream.
//!
//! For every precertificate entry, extract the registrable ("pay-level")
//! domain of each CN/SAN name via the Public Suffix List, and keep the
//! name iff it is *absent* from the latest available snapshot of its TLD
//! at that instant. Each registrable domain is reported once, at its first
//! CT appearance.

use darkdns_ct::stream::CertStreamEntry;
use darkdns_dns::hash::NameSet;
use darkdns_dns::{DomainName, PublicSuffixList};
use darkdns_registry::czds::SnapshotOracle;
use darkdns_registry::universe::{DomainId, Universe};
use darkdns_sim::time::SimTime;

/// A domain the pipeline believes to be newly registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NrdCandidate {
    pub domain: DomainName,
    /// Ground-truth backlink (resolution of the name against the
    /// registry; the pipeline itself only ever uses `domain` and
    /// `detected_at`).
    pub record: DomainId,
    /// Certstream-reported timestamp of the first sighting.
    pub detected_at: SimTime,
}

/// Statistics for the discard path (useful for sanity checks and the
/// pipeline-throughput bench).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DetectorStats {
    pub entries_seen: u64,
    pub names_seen: u64,
    pub discarded_in_zone: u64,
    pub discarded_duplicate: u64,
    pub discarded_unresolvable: u64,
    pub discarded_no_baseline: u64,
    pub candidates: u64,
}

/// The Step-1 detector.
pub struct Detector<'a> {
    psl: &'a PublicSuffixList,
    oracle: &'a SnapshotOracle<'a>,
    universe: &'a Universe,
    seen: NameSet<DomainName>,
    stats: DetectorStats,
}

impl<'a> Detector<'a> {
    pub fn new(
        psl: &'a PublicSuffixList,
        oracle: &'a SnapshotOracle<'a>,
        universe: &'a Universe,
    ) -> Self {
        Detector { psl, oracle, universe, seen: NameSet::default(), stats: DetectorStats::default() }
    }

    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    /// Process one certstream entry, returning any new NRD candidates.
    pub fn observe(&mut self, entry: &CertStreamEntry) -> Vec<NrdCandidate> {
        self.stats.entries_seen += 1;
        let mut out = Vec::new();
        for name in &entry.names {
            self.stats.names_seen += 1;
            let Some(registrable) = self.psl.registrable_domain(name) else {
                self.stats.discarded_unresolvable += 1;
                continue;
            };
            if self.seen.contains(&registrable) {
                self.stats.discarded_duplicate += 1;
                continue;
            }
            // Resolve the name against the registry's namespace. In the
            // real pipeline this resolution is implicit (the name *is* the
            // identity); here the universe is the namespace.
            let Some(record) = self.universe.lookup(&registrable) else {
                self.stats.discarded_unresolvable += 1;
                continue;
            };
            if !self.oracle.baseline_available(record.tld, entry.at) {
                // No snapshot of this TLD yet: "absent from the latest
                // snapshot" is not assessable, so the name is not a
                // candidate. (Do not mark it seen — once the baseline
                // lands a later certificate can still qualify.)
                self.stats.discarded_no_baseline += 1;
                continue;
            }
            if self.oracle.in_latest_available(record, entry.at) {
                self.stats.discarded_in_zone += 1;
                // Cache the verdict: later certificates for this name
                // (renewals) would be discarded again anyway.
                self.seen.insert(registrable);
                continue;
            }
            self.seen.insert(registrable.clone());
            self.stats.candidates += 1;
            out.push(NrdCandidate { domain: registrable, record: record.id, detected_at: entry.at });
        }
        out
    }

    /// Run over a whole stream, collecting all candidates.
    pub fn run(&mut self, entries: &[CertStreamEntry]) -> Vec<NrdCandidate> {
        let mut out = Vec::new();
        for e in entries {
            out.extend(self.observe(e));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkdns_ct::ca::CaFleet;
    use darkdns_ct::stream::CertStream;
    use darkdns_registry::czds::SnapshotSchedule;
    use darkdns_registry::hosting::HostingLandscape;
    use darkdns_registry::registrar::RegistrarFleet;
    use darkdns_registry::tld::paper_gtlds;
    use darkdns_registry::universe::DomainKind;
    use darkdns_registry::workload::{UniverseBuilder, WorkloadConfig};
    use darkdns_sim::rng::RngPool;

    struct Fixture {
        universe: Universe,
        schedule: SnapshotSchedule,
        stream: CertStream,
        psl: PublicSuffixList,
    }

    fn fixture(seed: u64) -> Fixture {
        let tlds = paper_gtlds();
        let fleet = RegistrarFleet::paper_fleet();
        let hosting = HostingLandscape::paper_landscape();
        let config = WorkloadConfig {
            scale: 0.004,
            window_days: 10,
            base_population_frac: 0.05,
            ..WorkloadConfig::default()
        };
        let pool = RngPool::new(seed);
        let schedule = SnapshotSchedule::new(&pool, &tlds, config.window_start, config.window_days);
        let builder = UniverseBuilder { tlds: &tlds, fleet: &fleet, hosting: &hosting, schedule: &schedule, config };
        let universe = builder.build(&pool);
        let (stream, _) = CertStream::build(&universe, &schedule, &CaFleet::paper_fleet(), &pool);
        Fixture { universe, schedule, stream, psl: PublicSuffixList::builtin() }
    }

    #[test]
    fn detects_fresh_registrations_not_renewals() {
        let f = fixture(1);
        let oracle = SnapshotOracle::new(&f.schedule);
        let mut detector = Detector::new(&f.psl, &oracle, &f.universe);
        let candidates = detector.run(f.stream.entries());
        assert!(!candidates.is_empty());
        let stats = detector.stats();
        assert!(stats.discarded_in_zone > 0, "no renewal was discarded: {stats:?}");
        // Base-population renewals must never appear as candidates.
        for c in &candidates {
            let r = f.universe.get(c.record);
            assert!(
                r.created >= f.schedule.window_start()
                    || !r.kind.has_registration()
                    || r.kind == DomainKind::ReRegistered,
                "pre-window live domain {} detected as NRD",
                r.name
            );
        }
    }

    #[test]
    fn dedupes_repeat_sightings() {
        let f = fixture(2);
        let oracle = SnapshotOracle::new(&f.schedule);
        let mut detector = Detector::new(&f.psl, &oracle, &f.universe);
        let candidates = detector.run(f.stream.entries());
        let mut seen = std::collections::HashSet::new();
        for c in &candidates {
            assert!(seen.insert(c.domain.clone()), "{} reported twice", c.domain);
        }
        // www/mail SANs collapse onto the registrable domain.
        assert!(detector.stats().discarded_duplicate > 0);
    }

    #[test]
    fn transients_and_ghosts_become_candidates() {
        let f = fixture(3);
        let oracle = SnapshotOracle::new(&f.schedule);
        let mut detector = Detector::new(&f.psl, &oracle, &f.universe);
        let candidates = detector.run(f.stream.entries());
        let kinds: Vec<DomainKind> =
            candidates.iter().map(|c| f.universe.get(c.record).kind).collect();
        assert!(kinds.iter().any(|k| *k == DomainKind::Transient), "no transient candidates");
        assert!(
            kinds.iter().any(|k| matches!(k, DomainKind::Ghost { .. })),
            "no ghost candidates"
        );
        assert!(kinds.iter().any(|k| *k == DomainKind::LongLived), "no ordinary NRD candidates");
    }

    #[test]
    fn detection_precedes_snapshot_membership() {
        // Every candidate was detected at a moment when the latest
        // available snapshot did not contain it (tautological from the
        // implementation, but this pins the invariant against refactors).
        let f = fixture(4);
        let oracle = SnapshotOracle::new(&f.schedule);
        let mut detector = Detector::new(&f.psl, &oracle, &f.universe);
        for c in detector.run(f.stream.entries()) {
            let r = f.universe.get(c.record);
            assert!(!oracle.in_latest_available(r, c.detected_at));
        }
    }

    #[test]
    fn coverage_is_roughly_calibrated() {
        // The fraction of window NRDs detected should land near the
        // aggregate Table-1 coverage (42%), within a generous band.
        let f = fixture(5);
        let oracle = SnapshotOracle::new(&f.schedule);
        let mut detector = Detector::new(&f.psl, &oracle, &f.universe);
        let candidates = detector.run(f.stream.entries());
        let start = f.schedule.window_start();
        let nrd_total = f.universe.count_where(|r| {
            matches!(r.kind, DomainKind::LongLived | DomainKind::EarlyRemoved) && r.created >= start
        });
        let nrd_detected = candidates
            .iter()
            .filter(|c| {
                let r = f.universe.get(c.record);
                matches!(r.kind, DomainKind::LongLived | DomainKind::EarlyRemoved)
            })
            .count();
        let coverage = nrd_detected as f64 / nrd_total as f64;
        assert!((0.30..0.55).contains(&coverage), "coverage {coverage}");
    }
}
