//! Report assembly: every table and figure of the paper's evaluation.
//!
//! The [`Report`] is a serialisable record of paper-vs-measured artifacts:
//! Tables 1-5, Figures 1-2, and the section statistics (§4.1 NS
//! stability, §4.2 RDAP failures, §4.3 blocklists, §4.4 visibility gap and
//! ccTLD ground truth). `render_text()` prints the same rows the paper
//! reports; the bench binaries tee that output into `EXPERIMENTS.md`.

use crate::config::ExperimentConfig;
use crate::transient::{ClassifiedCandidate, TransientStatus};
use darkdns_dns::PublicSuffixList;
use darkdns_intel::blocklist::{BlocklistSet, ListingPhase};
use darkdns_intel::dzdb::DzdbArchive;
use darkdns_intel::nod::NodFeed;
use darkdns_measure::worker::MonitorReport;
use darkdns_registry::czds::SnapshotOracle;
use darkdns_registry::hosting::HostingLandscape;
use darkdns_registry::tld::{month_of_day, TldId};
use darkdns_registry::universe::{DomainKind, Universe};
use darkdns_sim::cdf::{figure2_edges_secs, Cdf, FIGURE1_EDGES_SECS};
use darkdns_sim::metrics::LabelledCounter;
use darkdns_sim::time::{SimDuration, SimTime, SECS_PER_DAY};
use serde::Serialize;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One row of Table 1 (NRD counts and zone coverage per TLD).
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    pub tld: String,
    pub monthly: [u64; 3],
    pub total: u64,
    pub zone_nrd: u64,
    /// `total / zone_nrd`, the paper's "Coverage NRD (%)".
    pub coverage_pct: f64,
}

/// One row of Table 2 (transient candidates per TLD per month).
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    pub tld: String,
    pub monthly: [u64; 3],
    pub total: u64,
}

/// A labelled share row (Tables 3-5).
#[derive(Debug, Clone, Serialize)]
pub struct ShareRow {
    pub label: String,
    pub count: u64,
    pub pct: f64,
}

/// One CDF series of Figure 1.
#[derive(Debug, Clone, Serialize)]
pub struct Figure1Series {
    pub tld: String,
    /// (edge seconds, fraction ≤ edge).
    pub series: Vec<(f64, f64)>,
    pub samples: u64,
}

/// §4.1 statistics.
#[derive(Debug, Clone, Serialize)]
pub struct NsStability {
    pub monitored: u64,
    pub changed_within_24h: u64,
    pub kept_pct: f64,
}

/// §4.2 RDAP failure statistics.
#[derive(Debug, Clone, Serialize)]
pub struct RdapFailureReport {
    pub nrd_queries: u64,
    pub nrd_failures: u64,
    pub nrd_failure_pct: f64,
    pub transient_queries: u64,
    pub transient_failures: u64,
    pub transient_failure_pct: f64,
    /// Failure counts by cause label.
    pub causes: Vec<(String, u64)>,
    /// Among transient-candidate failures, fraction with a DZDB history.
    pub failed_with_history_pct: f64,
}

/// §4.3 blocklist statistics for one population.
#[derive(Debug, Clone, Serialize)]
pub struct BlocklistPopulation {
    pub population: u64,
    pub flagged: u64,
    pub flagged_pct: f64,
    pub before_registration: u64,
    pub while_active: u64,
    pub after_deletion: u64,
    /// For transients: first listing on the registration day.
    pub same_day: u64,
}

#[derive(Debug, Clone, Serialize)]
pub struct BlocklistReport {
    pub early_removed: BlocklistPopulation,
    pub transient: BlocklistPopulation,
    pub early_removed_total: u64,
}

/// §4.4 one-day NOD comparison.
#[derive(Debug, Clone, Serialize)]
pub struct VisibilityReport {
    pub comparison_day: u64,
    pub ours_nrd: u64,
    pub nod_nrd: u64,
    pub both_nrd: u64,
    pub overlap_pct: f64,
    pub ours_transient: u64,
    pub nod_transient: u64,
    pub both_transient: u64,
    pub transient_union: u64,
    pub transient_overlap_pct: f64,
    /// Whole-window transient comparison (the scaled single-day counts
    /// are statistically thin; the window-wide overlap carries the same
    /// conclusion with usable sample sizes).
    pub window_ours_transient: u64,
    pub window_nod_transient: u64,
    pub window_both_transient: u64,
    pub window_transient_overlap_pct: f64,
}

/// §4.4 ccTLD ground truth.
#[derive(Debug, Clone, Serialize)]
pub struct CctldReport {
    pub tld: String,
    pub deleted_under_24h: u64,
    pub never_in_snapshot: u64,
    pub detected_by_pipeline: u64,
    pub recall_pct: f64,
}

/// Transient bookkeeping (§4.2's 68,042 → 42,358 funnel).
#[derive(Debug, Clone, Serialize)]
pub struct TransientSummary {
    pub candidates: u64,
    pub rdap_failed: u64,
    pub misclassified: u64,
    pub confirmed: u64,
    /// Ground truth: transients that existed but had no certificate (the
    /// blind spot the paper cannot see; the simulation can).
    pub invisible_ground_truth: u64,
}

/// The complete experiment report.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    pub seed: u64,
    pub scale: f64,
    pub window_days: u64,
    pub universe_size: u64,
    /// CT-detected NRD candidates (paper: 6.8M).
    pub nrd_total: u64,
    /// Ground-truth zone NRDs (paper: 16.3M).
    pub zone_nrd_total: u64,
    pub coverage_pct: f64,
    pub table1: Vec<Table1Row>,
    pub table2: Vec<Table2Row>,
    pub figure1: Vec<Figure1Series>,
    pub figure1_half_detected_within_secs: u64,
    pub figure2: Vec<(f64, f64)>,
    pub figure2_median_lifetime_hours: f64,
    pub table3: Vec<ShareRow>,
    pub table4: Vec<ShareRow>,
    pub table5: Vec<ShareRow>,
    pub ns_stability: NsStability,
    pub rdap_failures: RdapFailureReport,
    pub blocklists: BlocklistReport,
    pub visibility: VisibilityReport,
    pub cctld: Option<CctldReport>,
    pub transients: TransientSummary,
}

/// Everything report assembly needs.
pub struct ReportInputs<'a> {
    pub config: &'a ExperimentConfig,
    pub universe: &'a Universe,
    pub oracle: &'a SnapshotOracle<'a>,
    pub landscape: &'a HostingLandscape,
    pub psl: &'a PublicSuffixList,
    pub classified: &'a [ClassifiedCandidate],
    pub monitor_reports: &'a [MonitorReport],
    pub blocklists: &'a BlocklistSet,
    pub nod: &'a NodFeed,
    pub dzdb: &'a DzdbArchive,
}

fn is_nrd_kind(kind: DomainKind) -> bool {
    matches!(kind, DomainKind::LongLived | DomainKind::EarlyRemoved)
}

/// Month (0..3) of an absolute instant, relative to the window start.
fn month_of(window_start: SimTime, t: SimTime) -> usize {
    month_of_day(t.saturating_since(window_start).as_secs() / SECS_PER_DAY)
}

pub fn build(inputs: &ReportInputs<'_>) -> Report {
    let cfg = inputs.config;
    let universe = inputs.universe;
    let window_start = cfg.workload.window_start;
    let window_end = cfg.workload.window_end();

    // Display label per TLD: its own name, "Others" for aggregates; `None`
    // excludes the TLD from gTLD tables (the ccTLD).
    let tld_label: Vec<Option<String>> = cfg
        .tlds
        .iter()
        .map(|t| {
            if !t.in_czds {
                None
            } else if t.aggregate_as_other {
                Some("Others".to_owned())
            } else {
                Some(t.name.clone())
            }
        })
        .collect();
    let label_of = |tld: TldId| tld_label[tld.0 as usize].clone();

    // ---- Table 1 --------------------------------------------------------
    let mut t1_detected: HashMap<String, [u64; 3]> = HashMap::new();
    let mut t1_zone: HashMap<String, u64> = HashMap::new();
    for r in universe.iter() {
        if !is_nrd_kind(r.kind) || r.created < window_start {
            continue;
        }
        if let Some(label) = label_of(r.tld) {
            *t1_zone.entry(label).or_insert(0) += 1;
        }
    }
    for c in inputs.classified {
        let r = universe.get(c.validated.candidate.record);
        if let Some(label) = label_of(r.tld) {
            let m = month_of(window_start, c.validated.candidate.detected_at);
            t1_detected.entry(label).or_insert([0; 3])[m] += 1;
        }
    }
    let mut table1: Vec<Table1Row> = t1_detected
        .iter()
        .map(|(label, monthly)| {
            let total: u64 = monthly.iter().sum();
            let zone = t1_zone.get(label).copied().unwrap_or(0);
            Table1Row {
                tld: label.clone(),
                monthly: *monthly,
                total,
                zone_nrd: zone,
                coverage_pct: if zone == 0 { 0.0 } else { 100.0 * total as f64 / zone as f64 },
            }
        })
        .collect();
    table1.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.tld.cmp(&b.tld)));
    // "Others" goes last, as in the paper.
    table1.sort_by_key(|row| row.tld == "Others");
    let nrd_total: u64 = table1.iter().map(|r| r.total).sum();
    let zone_nrd_total: u64 = table1.iter().map(|r| r.zone_nrd).sum();

    // ---- Table 2 + transient funnel -------------------------------------
    let mut t2: HashMap<String, [u64; 3]> = HashMap::new();
    let mut funnel = TransientSummary {
        candidates: 0,
        rdap_failed: 0,
        misclassified: 0,
        confirmed: 0,
        invisible_ground_truth: 0,
    };
    for c in inputs.classified {
        if c.status == TransientStatus::AppearedInZone {
            continue;
        }
        funnel.candidates += 1;
        match c.status {
            TransientStatus::CandidateRdapFailed => funnel.rdap_failed += 1,
            TransientStatus::CandidateMisclassified => funnel.misclassified += 1,
            TransientStatus::Confirmed => funnel.confirmed += 1,
            TransientStatus::AppearedInZone => unreachable!("filtered above"),
        }
        let r = universe.get(c.validated.candidate.record);
        if let Some(label) = label_of(r.tld) {
            let m = month_of(window_start, c.validated.candidate.detected_at);
            t2.entry(label).or_insert([0; 3])[m] += 1;
        }
    }
    funnel.invisible_ground_truth = universe.count_where(|r| {
        r.kind == DomainKind::Transient
            && r.cert_timing == darkdns_registry::universe::CertTiming::Never
    }) as u64;
    let mut table2: Vec<Table2Row> = t2
        .iter()
        .map(|(label, monthly)| Table2Row {
            tld: label.clone(),
            monthly: *monthly,
            total: monthly.iter().sum(),
        })
        .collect();
    table2.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.tld.cmp(&b.tld)));
    table2.sort_by_key(|row| row.tld == "Others");

    // ---- Figure 1 --------------------------------------------------------
    let mut fig1_samples: HashMap<String, Vec<f64>> = HashMap::new();
    let mut fig1_all: Vec<f64> = Vec::new();
    for c in inputs.classified {
        if let Some(latency) = c.validated.detection_latency_secs() {
            let r = universe.get(c.validated.candidate.record);
            if let Some(label) = label_of(r.tld) {
                fig1_samples.entry(label).or_default().push(latency as f64);
                fig1_all.push(latency as f64);
            }
        }
    }
    let all_cdf = Cdf::from_samples(fig1_all.clone());
    let figure1_half = if all_cdf.is_empty() { 0 } else { all_cdf.median() as u64 };
    let mut figure1: Vec<Figure1Series> = fig1_samples
        .into_iter()
        .map(|(tld, samples)| {
            let n = samples.len() as u64;
            let cdf = Cdf::from_samples(samples);
            Figure1Series { tld, series: cdf.series(&FIGURE1_EDGES_SECS), samples: n }
        })
        .collect();
    figure1.sort_by(|a, b| a.tld.cmp(&b.tld));
    figure1.push(Figure1Series {
        tld: "All".to_owned(),
        series: all_cdf.series(&FIGURE1_EDGES_SECS),
        samples: all_cdf.len() as u64,
    });

    // ---- Figure 2 --------------------------------------------------------
    let lifetimes: Vec<f64> = inputs
        .classified
        .iter()
        .filter_map(|c| c.estimated_lifetime.map(|d| d.as_secs() as f64))
        .collect();
    let fig2_cdf = Cdf::from_samples(lifetimes);
    let figure2 = fig2_cdf.series(&figure2_edges_secs());
    let figure2_median_lifetime_hours =
        if fig2_cdf.is_empty() { 0.0 } else { fig2_cdf.median() / 3_600.0 };

    // ---- Tables 3-5 ------------------------------------------------------
    let mut registrars = LabelledCounter::new();
    let mut dns_hosts = LabelledCounter::new();
    let mut web_hosts = LabelledCounter::new();
    for (c, m) in inputs.classified.iter().zip(inputs.monitor_reports) {
        if c.status != TransientStatus::Confirmed {
            continue;
        }
        if let Ok(resp) = &c.validated.rdap {
            registrars.incr(&resp.registrar);
        }
        if let Some(first_set) = m.ns_sets_seen.first() {
            if let Some(host) = first_set.first() {
                if let Some(sld) = inputs.psl.registrable_domain(host) {
                    dns_hosts.incr(sld.as_str());
                }
            }
        }
        if let Some(addr) = m.web_addr {
            if let Some(asn) = inputs.landscape.asn_of_addr(addr) {
                let name = inputs
                    .landscape
                    .web_host_by_asn(asn)
                    .map(|w| w.name.clone())
                    .unwrap_or_else(|| format!("AS{asn}"));
                web_hosts.incr(&format!("{name} (AS{asn})"));
            }
        }
    }
    let share_rows = |counter: &LabelledCounter, top: usize| -> Vec<ShareRow> {
        let total = counter.total().max(1);
        let mut rows: Vec<ShareRow> = counter
            .top(top)
            .into_iter()
            .map(|(label, count)| ShareRow {
                label,
                count,
                pct: 100.0 * count as f64 / total as f64,
            })
            .collect();
        let others = counter.others_beyond_top(top);
        if others > 0 {
            rows.push(ShareRow {
                label: "Others".to_owned(),
                count: others,
                pct: 100.0 * others as f64 / total as f64,
            });
        }
        rows
    };
    let table3 = share_rows(&registrars, 10);
    let table4 = share_rows(&dns_hosts, 5);
    let table5 = share_rows(&web_hosts, 5);

    // ---- §4.1 NS stability ----------------------------------------------
    let mut monitored = 0u64;
    let mut changed = 0u64;
    for (c, m) in inputs.classified.iter().zip(inputs.monitor_reports) {
        let r = universe.get(c.validated.candidate.record);
        if is_nrd_kind(r.kind) && m.observed_alive() {
            monitored += 1;
            if m.ns_changed_within_24h {
                changed += 1;
            }
        }
    }
    let ns_stability = NsStability {
        monitored,
        changed_within_24h: changed,
        kept_pct: if monitored == 0 {
            100.0
        } else {
            100.0 * (monitored - changed) as f64 / monitored as f64
        },
    };

    // ---- §4.2 RDAP failures ----------------------------------------------
    let mut nrd_q = 0u64;
    let mut nrd_f = 0u64;
    let mut tr_q = 0u64;
    let mut tr_f = 0u64;
    let mut causes: HashMap<&'static str, u64> = HashMap::new();
    let mut failed_transients = 0u64;
    let mut failed_with_history = 0u64;
    for c in inputs.classified {
        // §4.2's failure analysis covers the gTLD populations.
        if label_of(universe.get(c.validated.candidate.record).tld).is_none() {
            continue;
        }
        let is_transient_candidate = c.status != TransientStatus::AppearedInZone;
        if is_transient_candidate {
            tr_q += 1;
        } else {
            nrd_q += 1;
        }
        if let Err(e) = &c.validated.rdap {
            *causes.entry(e.label()).or_insert(0) += 1;
            if is_transient_candidate {
                tr_f += 1;
                failed_transients += 1;
                if inputs.dzdb.contains(&c.validated.candidate.domain) {
                    failed_with_history += 1;
                }
            } else {
                nrd_f += 1;
            }
        }
    }
    let mut cause_rows: Vec<(String, u64)> =
        causes.into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
    cause_rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let rdap_failures = RdapFailureReport {
        nrd_queries: nrd_q,
        nrd_failures: nrd_f,
        nrd_failure_pct: pct(nrd_f, nrd_q),
        transient_queries: tr_q,
        transient_failures: tr_f,
        transient_failure_pct: pct(tr_f, tr_q),
        causes: cause_rows,
        failed_with_history_pct: pct(failed_with_history, failed_transients),
    };

    // ---- §4.3 blocklists --------------------------------------------------
    let mut early = BlocklistPopulation {
        population: 0,
        flagged: 0,
        flagged_pct: 0.0,
        before_registration: 0,
        while_active: 0,
        after_deletion: 0,
        same_day: 0,
    };
    let mut transient_pop = early.clone();
    let mut early_removed_total = 0u64;
    // Early-removed population: detected NRDs whose registration ended
    // before the window end (the paper's 555k).
    for c in inputs.classified {
        let r = universe.get(c.validated.candidate.record);
        match c.status {
            TransientStatus::AppearedInZone => {
                let deleted_early = matches!(r.removed, Some(rm) if rm < window_end);
                if !deleted_early {
                    continue;
                }
                early_removed_total += 1;
                early.population += 1;
                if inputs.blocklists.is_flagged(r) {
                    early.flagged += 1;
                    match inputs.blocklists.phase_of(r) {
                        Some(ListingPhase::BeforeRegistration) => early.before_registration += 1,
                        Some(ListingPhase::WhileActive) => early.while_active += 1,
                        Some(ListingPhase::AfterDeletion) => early.after_deletion += 1,
                        None => {}
                    }
                    if inputs.blocklists.listed_same_day(r) {
                        early.same_day += 1;
                    }
                }
            }
            TransientStatus::Confirmed => {
                transient_pop.population += 1;
                if inputs.blocklists.is_flagged(r) {
                    transient_pop.flagged += 1;
                    match inputs.blocklists.phase_of(r) {
                        Some(ListingPhase::BeforeRegistration) => {
                            transient_pop.before_registration += 1
                        }
                        Some(ListingPhase::WhileActive) => transient_pop.while_active += 1,
                        Some(ListingPhase::AfterDeletion) => transient_pop.after_deletion += 1,
                        None => {}
                    }
                    if inputs.blocklists.listed_same_day(r) {
                        transient_pop.same_day += 1;
                    }
                }
            }
            _ => {}
        }
    }
    early.flagged_pct = pct(early.flagged, early.population);
    transient_pop.flagged_pct = pct(transient_pop.flagged, transient_pop.population);
    let blocklists = BlocklistReport {
        early_removed: early,
        transient: transient_pop,
        early_removed_total,
    };

    // ---- §4.4 visibility --------------------------------------------------
    let day = cfg.nod_comparison_day;
    let day_start = window_start + SimDuration::from_days(day);
    let day_end = day_start + SimDuration::from_days(1);
    let in_day = |t: SimTime| t >= day_start && t < day_end;
    let mut ours_nrd = 0u64;
    let mut both_nrd = 0u64;
    let mut ours_tr = 0u64;
    let mut both_tr = 0u64;
    let mut window_ours_tr = 0u64;
    let mut window_both_tr = 0u64;
    for c in inputs.classified {
        let r = universe.get(c.validated.candidate.record);
        if label_of(r.tld).is_none() {
            continue; // gTLDs only, as in the paper
        }
        let Ok(resp) = &c.validated.rdap else { continue };
        let nod_sees = inputs.nod.observed(r.id);
        if c.status == TransientStatus::Confirmed {
            window_ours_tr += 1;
            if nod_sees {
                window_both_tr += 1;
            }
        }
        if !in_day(resp.created) {
            continue;
        }
        ours_nrd += 1;
        if nod_sees {
            both_nrd += 1;
        }
        if c.status == TransientStatus::Confirmed {
            ours_tr += 1;
            if nod_sees {
                both_tr += 1;
            }
        }
    }
    let mut nod_nrd = 0u64;
    let mut nod_tr = 0u64;
    let mut window_nod_tr = 0u64;
    for (id, _) in inputs.nod.iter() {
        let r = universe.get(id);
        if label_of(r.tld).is_none() {
            continue;
        }
        if r.kind == DomainKind::Transient {
            window_nod_tr += 1;
        }
        if !in_day(r.created) {
            continue;
        }
        nod_nrd += 1;
        if r.kind == DomainKind::Transient {
            nod_tr += 1;
        }
    }
    let union_nrd = ours_nrd + nod_nrd - both_nrd;
    let union_tr = ours_tr + nod_tr - both_tr;
    let window_union_tr = window_ours_tr + window_nod_tr - window_both_tr;
    let visibility = VisibilityReport {
        comparison_day: day,
        ours_nrd,
        nod_nrd,
        both_nrd,
        overlap_pct: pct(both_nrd, union_nrd),
        ours_transient: ours_tr,
        nod_transient: nod_tr,
        both_transient: both_tr,
        transient_union: union_tr,
        transient_overlap_pct: pct(both_tr, union_tr),
        window_ours_transient: window_ours_tr,
        window_nod_transient: window_nod_tr,
        window_both_transient: window_both_tr,
        window_transient_overlap_pct: pct(window_both_tr, window_union_tr),
    };

    // ---- §4.4 ccTLD ground truth ------------------------------------------
    let cctld = cfg
        .tlds
        .iter()
        .position(|t| !t.in_czds)
        .map(|idx| {
            let tld = TldId(idx as u16);
            let mut deleted_under_24h = 0u64;
            let mut never_in_snapshot = 0u64;
            for r in universe.in_tld(tld) {
                if !r.kind.has_registration() || r.created < window_start {
                    continue;
                }
                let short = matches!(r.lifetime(), Some(l) if l <= SimDuration::from_hours(24));
                if short && r.deleted_within(window_start, window_end) {
                    deleted_under_24h += 1;
                    if !inputs.oracle.appeared_in_any(r) {
                        never_in_snapshot += 1;
                    }
                }
            }
            let detected = inputs
                .classified
                .iter()
                .filter(|c| {
                    c.status != TransientStatus::AppearedInZone
                        && universe.get(c.validated.candidate.record).tld == tld
                        && universe.get(c.validated.candidate.record).kind
                            == DomainKind::Transient
                })
                .count() as u64;
            CctldReport {
                tld: cfg.tlds[idx].name.clone(),
                deleted_under_24h,
                never_in_snapshot,
                detected_by_pipeline: detected,
                recall_pct: pct(detected, never_in_snapshot),
            }
        });

    Report {
        seed: cfg.seed,
        scale: cfg.workload.scale,
        window_days: cfg.workload.window_days,
        universe_size: universe.len() as u64,
        nrd_total,
        zone_nrd_total,
        coverage_pct: pct(nrd_total, zone_nrd_total),
        table1,
        table2,
        figure1,
        figure1_half_detected_within_secs: figure1_half,
        figure2,
        figure2_median_lifetime_hours,
        table3,
        table4,
        table5,
        ns_stability,
        rdap_failures,
        blocklists,
        visibility,
        cctld,
        transients: funnel,
    }
}

fn pct(num: u64, denom: u64) -> f64 {
    if denom == 0 {
        0.0
    } else {
        100.0 * num as f64 / denom as f64
    }
}

impl Report {
    /// Render all tables as aligned text, paper-style.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "DarkDNS reproduction — seed {} scale {} window {} days ({} records)",
            self.seed, self.scale, self.window_days, self.universe_size
        );
        let _ = writeln!(
            s,
            "\nCT-observed NRDs: {}   zone NRDs: {}   coverage: {:.1}%",
            self.nrd_total, self.zone_nrd_total, self.coverage_pct
        );

        let _ = writeln!(s, "\nTable 1: Top TLDs by newly registered domains (CT-observed)");
        let _ = writeln!(
            s,
            "{:<8} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9}",
            "TLD", "Nov", "Dec", "Jan", "Total", "Zone NRD", "Cov (%)"
        );
        for r in &self.table1 {
            let _ = writeln!(
                s,
                "{:<8} {:>9} {:>9} {:>9} {:>10} {:>10} {:>8.1}%",
                r.tld, r.monthly[0], r.monthly[1], r.monthly[2], r.total, r.zone_nrd, r.coverage_pct
            );
        }

        let _ = writeln!(s, "\nTable 2: Transient domain candidates");
        let _ = writeln!(s, "{:<8} {:>7} {:>7} {:>7} {:>8}", "TLD", "Nov", "Dec", "Jan", "Total");
        for r in &self.table2 {
            let _ = writeln!(
                s,
                "{:<8} {:>7} {:>7} {:>7} {:>8}",
                r.tld, r.monthly[0], r.monthly[1], r.monthly[2], r.total
            );
        }
        let t = &self.transients;
        let _ = writeln!(
            s,
            "funnel: {} candidates → {} RDAP-failed, {} misclassified → {} confirmed \
             ({} cert-less transients invisible in ground truth)",
            t.candidates, t.rdap_failed, t.misclassified, t.confirmed, t.invisible_ground_truth
        );

        let _ = writeln!(s, "\nFigure 1: detection latency CDF (CT time − RDAP creation)");
        let _ = writeln!(
            s,
            "50% of domains detected within {} (paper: 45 min)",
            SimDuration::from_secs(self.figure1_half_detected_within_secs)
        );
        for series in &self.figure1 {
            let row: Vec<String> =
                series.series.iter().map(|(e, f)| format!("{}:{:.2}", fmt_secs(*e), f)).collect();
            let _ = writeln!(s, "  {:<8} [{} samples] {}", series.tld, series.samples, row.join(" "));
        }

        let _ = writeln!(s, "\nFigure 2: transient lifetime CDF");
        let _ = writeln!(
            s,
            "median lifetime {:.1} h (paper: >50% dead within 6 h)",
            self.figure2_median_lifetime_hours
        );
        let row: Vec<String> =
            self.figure2.iter().map(|(e, f)| format!("{}h:{:.2}", (*e as u64) / 3_600, f)).collect();
        let _ = writeln!(s, "  {}", row.join(" "));

        for (title, rows) in [
            ("Table 3: Transient registrar distribution", &self.table3),
            ("Table 4: Transient DNS hosting (NS SLD)", &self.table4),
            ("Table 5: Transient web hosting (A-record ASN)", &self.table5),
        ] {
            let _ = writeln!(s, "\n{title}");
            for r in rows {
                let _ = writeln!(s, "  {:<28} {:>7}  {:>5.1}%", r.label, r.count, r.pct);
            }
        }

        let ns = &self.ns_stability;
        let _ = writeln!(
            s,
            "\n§4.1 NS stability: {}/{} changed NS within 24 h → {:.1}% kept (paper: 97.5%)",
            ns.changed_within_24h, ns.monitored, ns.kept_pct
        );

        let rf = &self.rdap_failures;
        let _ = writeln!(
            s,
            "\n§4.2 RDAP failures: NRD {:.1}% ({}/{})  transient {:.1}% ({}/{})",
            rf.nrd_failure_pct, rf.nrd_failures, rf.nrd_queries, rf.transient_failure_pct,
            rf.transient_failures, rf.transient_queries
        );
        for (cause, count) in &rf.causes {
            let _ = writeln!(s, "    {cause}: {count}");
        }
        let _ = writeln!(
            s,
            "  failed transients with DZDB history: {:.1}% (paper: 97%)",
            rf.failed_with_history_pct
        );

        let bl = &self.blocklists;
        let _ = writeln!(
            s,
            "\n§4.3 blocklists — early-removed NRDs ({} deleted before window end):",
            bl.early_removed_total
        );
        let _ = writeln!(
            s,
            "  flagged {:.1}% ({}); before-reg {}, active {}, post-deletion {}",
            bl.early_removed.flagged_pct,
            bl.early_removed.flagged,
            bl.early_removed.before_registration,
            bl.early_removed.while_active,
            bl.early_removed.after_deletion
        );
        let _ = writeln!(
            s,
            "  transients: flagged {:.1}% ({}); same-day {}, before-reg {}, post-deletion {} ({:.0}%)",
            bl.transient.flagged_pct,
            bl.transient.flagged,
            bl.transient.same_day,
            bl.transient.before_registration,
            bl.transient.after_deletion,
            pct(bl.transient.after_deletion, bl.transient.flagged.max(1))
        );

        let v = &self.visibility;
        let _ = writeln!(
            s,
            "\n§4.4 NOD comparison (day {}): ours {} vs NOD {} NRDs, overlap {:.1}%; \
             transients ours {} vs NOD {}, union {}, both {:.1}%",
            v.comparison_day, v.ours_nrd, v.nod_nrd, v.overlap_pct, v.ours_transient,
            v.nod_transient, v.transient_union, v.transient_overlap_pct
        );
        let _ = writeln!(
            s,
            "      whole-window transients: ours {} vs NOD {}, both {:.1}% (paper: 33%)",
            v.window_ours_transient, v.window_nod_transient, v.window_transient_overlap_pct
        );

        if let Some(c) = &self.cctld {
            let _ = writeln!(
                s,
                "§4.4 ccTLD .{}: {} deleted <24 h, {} never in snapshots, {} detected → recall {:.1}% (paper: 29.6%)",
                c.tld, c.deleted_under_24h, c.never_in_snapshot, c.detected_by_pipeline, c.recall_pct
            );
        }
        s
    }
}

fn fmt_secs(e: f64) -> String {
    let secs = e as u64;
    if secs < 60 {
        format!("{secs}s")
    } else if secs < 3_600 {
        format!("{}m", secs / 60)
    } else if secs < 86_400 {
        format!("{}h", secs / 3_600)
    } else {
        format!("{}d", secs / 86_400)
    }
}
