//! Step 5: transient-domain identification.
//!
//! A candidate is a *transient candidate* if it never appears in any zone
//! snapshot across the observation window (with the ±3-day slack for late
//! publication already baked into the snapshot schedule). Transient
//! candidates whose RDAP collection succeeded and whose creation date is
//! inside the window are *confirmed transients* — the 42,358 of §4.2.

use crate::validate::ValidatedCandidate;
use darkdns_measure::worker::MonitorReport;
use darkdns_registry::czds::SnapshotOracle;
use darkdns_registry::universe::Universe;
use darkdns_sim::time::{SimDuration, SimTime};

/// Classification of one candidate at the end of the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransientStatus {
    /// Appeared in at least one snapshot: an ordinary NRD.
    AppearedInZone,
    /// Never appeared; RDAP failed — cannot be confirmed (the paper
    /// filters these out of the confirmed set).
    CandidateRdapFailed,
    /// Never appeared; RDAP succeeded but the creation date predates the
    /// window — misclassified, filtered.
    CandidateMisclassified,
    /// Never appeared, RDAP-confirmed, created in-window: a confirmed
    /// transient domain.
    Confirmed,
}

/// A fully classified candidate.
#[derive(Debug, Clone)]
pub struct ClassifiedCandidate {
    pub validated: ValidatedCandidate,
    pub status: TransientStatus,
    /// Estimated lifetime (last good NS response − RDAP creation), per the
    /// paper's §4.2.1 method. Only for confirmed transients whose death
    /// was observed.
    pub estimated_lifetime: Option<SimDuration>,
}

/// Classify every validated candidate using the end-of-window snapshot
/// oracle and the monitoring reports (indexed by candidate order).
///
/// # Panics
/// Panics if `reports.len() != validated.len()` — the experiment driver
/// monitors every candidate exactly once, in order.
pub fn classify(
    universe: &Universe,
    oracle: &SnapshotOracle<'_>,
    window_start: SimTime,
    validated: Vec<ValidatedCandidate>,
    reports: &[MonitorReport],
) -> Vec<ClassifiedCandidate> {
    assert_eq!(validated.len(), reports.len(), "one monitor report per candidate");
    validated
        .into_iter()
        .zip(reports)
        .map(|(v, report)| {
            let record = universe.get(v.candidate.record);
            let status = if oracle.appeared_in_any(record) {
                TransientStatus::AppearedInZone
            } else if v.rdap.is_err() {
                TransientStatus::CandidateRdapFailed
            } else if v.is_misclassified(window_start) {
                TransientStatus::CandidateMisclassified
            } else {
                TransientStatus::Confirmed
            };
            let estimated_lifetime = match (status, &v.rdap, report.last_ns_ok) {
                (TransientStatus::Confirmed, Ok(resp), Some(last_ok)) => {
                    Some(last_ok.saturating_since(resp.created))
                }
                _ => None,
            };
            ClassifiedCandidate { validated: v, status, estimated_lifetime }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::NrdCandidate;
    use darkdns_dns::DomainName;
    use darkdns_rdap::model::{RdapError, RdapResponse};
    use darkdns_registry::czds::SnapshotSchedule;
    use darkdns_registry::hosting::ProviderId;
    use darkdns_registry::registrar::RegistrarId;
    use darkdns_registry::tld::{paper_gtlds, TldId};
    use darkdns_registry::universe::{CertTiming, DomainId, DomainKind, DomainRecord};
    use darkdns_sim::rng::RngPool;

    const START: u64 = 400;

    fn wt(d: u64, h: u64) -> SimTime {
        SimTime::from_days(START + d) + SimDuration::from_hours(h)
    }

    fn record(name: &str, kind: DomainKind, created: SimTime, removed: Option<SimTime>) -> DomainRecord {
        DomainRecord {
            id: DomainId(0),
            name: DomainName::parse(name).unwrap(),
            tld: TldId(0),
            kind,
            created,
            zone_insert: created,
            removed,
            registrar: RegistrarId(0),
            dns_provider: ProviderId(0),
            web_asn: 13_335,
            cert_timing: CertTiming::Prompt,
            cert_hint: None,
            ns_change_at: None,
            malicious: true,
        }
    }

    fn report_for(c: &NrdCandidate, last_ok: Option<SimTime>) -> MonitorReport {
        MonitorReport {
            domain: c.record,
            name: c.domain.clone(),
            worker: 0,
            detected_at: c.detected_at,
            last_ns_ok: last_ok,
            first_nxdomain: last_ok.map(|t| t + SimDuration::from_minutes(10)),
            ns_sets_seen: vec![],
            ns_changed_within_24h: false,
            web_addr: None,
        }
    }

    fn validated(
        c: NrdCandidate,
        rdap: Result<RdapResponse, RdapError>,
    ) -> ValidatedCandidate {
        ValidatedCandidate { queried_at: c.detected_at, candidate: c, rdap }
    }

    #[test]
    fn full_classification_matrix() {
        let mut universe = Universe::new();
        // A transient (created 09:00, dead 15:00 on day 3).
        let t_id = universe.push(record("t.com", DomainKind::Transient, wt(3, 9), Some(wt(3, 15))));
        // An ordinary NRD.
        let n_id = universe.push(record("n.com", DomainKind::LongLived, wt(3, 9), None));
        // A ghost (RDAP will fail).
        let g_id = universe.push(record(
            "g.com",
            DomainKind::Ghost { previously_registered: true },
            SimTime::from_days(100),
            Some(SimTime::from_days(110)),
        ));
        // A re-registered name (old creation date).
        let r_id = universe.push(record(
            "r.com",
            DomainKind::ReRegistered,
            SimTime::from_days(100),
            Some(SimTime::from_days(130)),
        ));

        let tlds = paper_gtlds();
        let schedule =
            SnapshotSchedule::new(&RngPool::new(1), &tlds, SimTime::from_days(START), 10);
        let oracle = SnapshotOracle::new(&schedule);
        let window_start = SimTime::from_days(START);

        let mk = |id, name: &str, detected: SimTime| NrdCandidate {
            domain: DomainName::parse(name).unwrap(),
            record: id,
            detected_at: detected,
        };
        let ok = |created: SimTime| {
            Ok(RdapResponse {
                domain: DomainName::parse("x.com").unwrap(),
                created,
                registrar: "GoDaddy".into(),
                registrar_iana: 146,
                statuses: vec![],
            })
        };

        let t = mk(t_id, "t.com", wt(3, 10));
        let n = mk(n_id, "n.com", wt(3, 10));
        let g = mk(g_id, "g.com", wt(3, 10));
        let r = mk(r_id, "r.com", wt(3, 10));
        let reports = vec![
            report_for(&t, Some(wt(3, 14))),
            report_for(&n, Some(wt(5, 10))),
            report_for(&g, None),
            report_for(&r, None),
        ];
        let classified = classify(
            &universe,
            &oracle,
            window_start,
            vec![
                validated(t, ok(wt(3, 9))),
                validated(n, ok(wt(3, 9))),
                validated(g, Err(RdapError::NotFound)),
                validated(r, ok(SimTime::from_days(100))),
            ],
            &reports,
        );
        assert_eq!(classified[0].status, TransientStatus::Confirmed);
        assert_eq!(classified[1].status, TransientStatus::AppearedInZone);
        assert_eq!(classified[2].status, TransientStatus::CandidateRdapFailed);
        assert_eq!(classified[3].status, TransientStatus::CandidateMisclassified);
        // Lifetime = last good probe (14:00) − creation (09:00) = 5 h.
        assert_eq!(classified[0].estimated_lifetime, Some(SimDuration::from_hours(5)));
        assert_eq!(classified[1].estimated_lifetime, None);
    }

    #[test]
    #[should_panic(expected = "one monitor report per candidate")]
    fn mismatched_reports_panic() {
        let universe = Universe::new();
        let tlds = paper_gtlds();
        let schedule =
            SnapshotSchedule::new(&RngPool::new(1), &tlds, SimTime::from_days(START), 10);
        let oracle = SnapshotOracle::new(&schedule);
        let c = NrdCandidate {
            domain: DomainName::parse("a.com").unwrap(),
            record: DomainId(0),
            detected_at: wt(1, 0),
        };
        classify(
            &universe,
            &oracle,
            SimTime::from_days(START),
            vec![validated(c, Err(RdapError::NotFound))],
            &[],
        );
    }
}
