//! The experiment driver: substrates → pipeline → report.
//!
//! `Experiment::run` executes the reproduction end to end:
//!
//! 1. build the calibrated registry universe (workload generator);
//! 2. build the CZDS snapshot schedule and the certificate stream;
//! 3. run the five-step pipeline (detect → RDAP → monitor → validate →
//!    transient classification), publishing every candidate onto the
//!    public NRD feed;
//! 4. simulate the comparison sources (blocklists, NOD, DZDB);
//! 5. assemble the [`Report`].
//!
//! Everything is deterministic in the config's seed.

use crate::config::ExperimentConfig;
use crate::detector::Detector;
use crate::feed::{NrdFeed, NrdFeedRecord};
use crate::monitor::Monitor;
use crate::report::{self, Report, ReportInputs};
use crate::transient::{classify, ClassifiedCandidate};
use crate::validate::Validator;
use darkdns_ct::ca::CaFleet;
use darkdns_ct::stream::CertStream;
use darkdns_dns::PublicSuffixList;
use darkdns_intel::blocklist::BlocklistSet;
use darkdns_intel::dzdb::DzdbArchive;
use darkdns_intel::nod::NodFeed;
use darkdns_measure::worker::MonitorReport;
use darkdns_rdap::client::RdapClient;
use darkdns_rdap::server::RdapDirectory;
use darkdns_registry::czds::{SnapshotOracle, SnapshotSchedule};
use darkdns_registry::hosting::HostingLandscape;
use darkdns_registry::registrar::RegistrarFleet;
use darkdns_registry::universe::Universe;
use darkdns_registry::workload::UniverseBuilder;
use darkdns_sim::rng::RngPool;

/// A configured, runnable experiment.
pub struct Experiment {
    config: ExperimentConfig,
    /// The public zonestream feed; subscribe before calling `run` to
    /// receive every published NRD record.
    pub nrd_feed: NrdFeed,
}

/// Everything a run produces (report plus the artifacts tests and benches
/// want to poke at).
pub struct RunArtifacts {
    pub report: Report,
    pub universe: Universe,
    pub schedule: SnapshotSchedule,
    pub classified: Vec<ClassifiedCandidate>,
    pub monitor_reports: Vec<MonitorReport>,
}

impl Experiment {
    pub fn new(config: ExperimentConfig) -> Self {
        // The zonestream feed is the released artifact: its subscribers
        // legitimately drain once at the end of a run, so it gets the
        // archive capacity, not the live-consumer default — a paper-scale
        // run must not silently truncate the artifact.
        let nrd_feed =
            NrdFeed::with_config(crate::feed::ARTIFACT_FEED_CAPACITY, crate::feed::OverflowPolicy::Lag);
        Experiment { config, nrd_feed }
    }

    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Run the full experiment and return just the report.
    pub fn run(self) -> Report {
        self.run_with_artifacts().report
    }

    /// Run the full experiment, keeping intermediate artifacts.
    pub fn run_with_artifacts(self) -> RunArtifacts {
        let cfg = &self.config;
        let pool = RngPool::new(cfg.seed);

        // --- substrates ---------------------------------------------------
        let fleet = RegistrarFleet::paper_fleet();
        let landscape = HostingLandscape::paper_landscape();
        let schedule = SnapshotSchedule::new(
            &pool,
            &cfg.tlds,
            cfg.workload.window_start,
            cfg.workload.window_days,
        );
        let builder = UniverseBuilder {
            tlds: &cfg.tlds,
            fleet: &fleet,
            hosting: &landscape,
            schedule: &schedule,
            config: cfg.workload.clone(),
        };
        let universe = builder.build(&pool);
        let cas = CaFleet::paper_fleet();
        let (stream, _ct_log) = CertStream::build(&universe, &schedule, &cas, &pool);
        let psl = PublicSuffixList::builtin();
        let oracle = SnapshotOracle::new(&schedule);

        // --- step 1: detection --------------------------------------------
        let mut detector = Detector::new(&psl, &oracle, &universe);
        let candidates = detector.run(stream.entries());

        // --- steps 2+4: RDAP ------------------------------------------------
        let mut directory = RdapDirectory::new(&universe, &fleet, cfg.rdap.clone(), &pool);
        let mut validator = Validator::new(
            &mut directory,
            RdapClient::paper_client(),
            cfg.rdap_queue_median_secs,
            pool.stream("core.validator"),
        );
        let validated = validator.validate_all(candidates);

        // Publish the zonestream feed (the paper's released artifact).
        for v in &validated {
            self.nrd_feed.publish(NrdFeedRecord {
                domain: v.candidate.domain.clone(),
                detected_at: v.candidate.detected_at,
                rdap_created: v.rdap.as_ref().ok().map(|r| r.created),
                registrar: v.rdap.as_ref().ok().map(|r| r.registrar.clone()),
            });
        }
        // Release builds are exactly where paper-scale runs happen, so
        // this must not be a debug-only check: a truncated released
        // artifact is a hard error, not a silent drop.
        assert_eq!(
            self.nrd_feed.dropped_total(),
            0,
            "zonestream artifact truncated; raise ARTIFACT_FEED_CAPACITY"
        );

        // --- step 3: monitoring ---------------------------------------------
        let mut monitor = Monitor::new(&universe, &landscape);
        let candidate_refs: Vec<_> = validated.iter().map(|v| v.candidate.clone()).collect();
        let monitor_reports = monitor.monitor_all(&candidate_refs);

        // --- step 5: transient classification --------------------------------
        let classified = classify(
            &universe,
            &oracle,
            cfg.workload.window_start,
            validated,
            &monitor_reports,
        );

        // --- comparison sources ----------------------------------------------
        let blocklists = BlocklistSet::simulate(
            &universe,
            &cfg.blocklists,
            cfg.workload.window_end(),
            &pool,
        );
        let nod = NodFeed::simulate(&universe, &cfg.nod, cfg.workload.window_start, &pool);
        let dzdb = DzdbArchive::build(&universe, cfg.workload.window_start);

        // --- report -----------------------------------------------------------
        let report = report::build(&ReportInputs {
            config: cfg,
            universe: &universe,
            oracle: &oracle,
            landscape: &landscape,
            psl: &psl,
            classified: &classified,
            monitor_reports: &monitor_reports,
            blocklists: &blocklists,
            nod: &nod,
            dzdb: &dzdb,
        });
        RunArtifacts { report, universe, schedule, classified, monitor_reports }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::TransientStatus;

    fn run_small(seed: u64) -> RunArtifacts {
        Experiment::new(ExperimentConfig::small(seed)).run_with_artifacts()
    }

    #[test]
    fn small_experiment_produces_sane_report() {
        let arts = run_small(7);
        let r = &arts.report;
        assert!(r.nrd_total > 100, "too few NRDs: {}", r.nrd_total);
        assert!(r.zone_nrd_total > r.nrd_total, "coverage cannot exceed 100%");
        assert!((20.0..70.0).contains(&r.coverage_pct), "coverage {}", r.coverage_pct);
        assert!(r.transients.candidates > 0);
        assert!(r.transients.confirmed <= r.transients.candidates);
        assert!(!r.table1.is_empty());
        assert!(!r.figure1.is_empty());
    }

    #[test]
    fn determinism() {
        let a = run_small(11).report;
        let b = run_small(11).report;
        assert_eq!(a.nrd_total, b.nrd_total);
        assert_eq!(a.transients.confirmed, b.transients.confirmed);
        assert_eq!(a.figure1_half_detected_within_secs, b.figure1_half_detected_within_secs);
        let c = run_small(12).report;
        assert_ne!(a.nrd_total, c.nrd_total);
    }

    #[test]
    fn transient_rdap_failure_rate_exceeds_nrd_rate() {
        let r = run_small(13).report;
        let rf = &r.rdap_failures;
        assert!(
            rf.transient_failure_pct > 3.0 * rf.nrd_failure_pct,
            "transient {} vs nrd {}",
            rf.transient_failure_pct,
            rf.nrd_failure_pct
        );
    }

    #[test]
    fn confirmed_transients_never_appear_in_snapshots() {
        let arts = run_small(17);
        let oracle = SnapshotOracle::new(&arts.schedule);
        for c in &arts.classified {
            if c.status == TransientStatus::Confirmed {
                let record = arts.universe.get(c.validated.candidate.record);
                assert!(!oracle.appeared_in_any(record));
            }
        }
    }

    #[test]
    fn feed_publishes_every_validated_candidate() {
        let exp = Experiment::new(ExperimentConfig::small(19));
        let sub = exp.nrd_feed.subscribe();
        let arts = exp.run_with_artifacts();
        let records = sub.drain();
        assert_eq!(records.len(), arts.classified.len());
    }

    #[test]
    fn render_text_contains_all_sections() {
        let r = run_small(23).report;
        let text = r.render_text();
        for needle in [
            "Table 1",
            "Table 2",
            "Figure 1",
            "Figure 2",
            "Table 3",
            "Table 4",
            "Table 5",
            "NS stability",
            "RDAP failures",
            "blocklists",
            "NOD comparison",
            "ccTLD",
        ] {
            assert!(text.contains(needle), "missing section {needle}");
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let r = run_small(29).report;
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("table1"));
        assert!(json.contains("coverage_pct"));
    }
}
