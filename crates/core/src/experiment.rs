//! The experiment driver: substrates → pipeline → report.
//!
//! `Experiment::run` executes the reproduction end to end:
//!
//! 1. build the calibrated registry universe (workload generator);
//! 2. build the CZDS snapshot schedule and the certificate stream;
//! 3. run the five-step pipeline (detect → RDAP → monitor → validate →
//!    transient classification), publishing every candidate onto the
//!    public NRD feed;
//! 4. simulate the comparison sources (blocklists, NOD, DZDB);
//! 5. assemble the [`Report`].
//!
//! Everything is deterministic in the config's seed.
//!
//! The pipeline stages consume zone membership through the
//! [`ZoneMembership`] contract. [`Experiment::run`] instantiates the
//! daily-snapshot [`OracleMembership`] backend (the paper's batch
//! shape); [`Experiment::run_with_membership`] lets a caller supply any
//! other backend. For *time-faithful* runs against the push-cadence
//! backends — where publishing must interleave with observation — use
//! [`LiveInputs`] + [`run_certstream_detection`], the harness the
//! cross-backend equivalence tests and the detection-latency bench are
//! built on.

use crate::config::ExperimentConfig;
use crate::detector::{Detector, DetectorStats, NrdCandidate};
use crate::feed::{NrdFeed, NrdFeedRecord};
use crate::membership::{OracleMembership, ZoneMembership};
use crate::monitor::{Monitor, MonitorZoneStats};
use crate::report::{self, Report, ReportInputs};
use crate::transient::{classify, ClassifiedCandidate};
use crate::validate::Validator;
use darkdns_broker::UniverseFeed;
use darkdns_ct::ca::CaFleet;
use darkdns_ct::stream::CertStream;
use darkdns_dns::{DomainName, PublicSuffixList};
use darkdns_intel::blocklist::BlocklistSet;
use darkdns_intel::dzdb::DzdbArchive;
use darkdns_intel::nod::NodFeed;
use darkdns_measure::worker::MonitorReport;
use darkdns_rdap::client::RdapClient;
use darkdns_rdap::server::RdapDirectory;
use darkdns_registry::czds::{SnapshotOracle, SnapshotSchedule};
use darkdns_registry::hosting::HostingLandscape;
use darkdns_registry::live::UniverseZoneView;
use darkdns_registry::registrar::RegistrarFleet;
use darkdns_registry::tld::TldId;
use darkdns_registry::universe::Universe;
use darkdns_registry::workload::UniverseBuilder;
use darkdns_sim::rng::RngPool;
use darkdns_sim::time::{SimDuration, SimTime};

/// A configured, runnable experiment.
pub struct Experiment {
    config: ExperimentConfig,
    /// The public zonestream feed; subscribe before calling `run` to
    /// receive every published NRD record.
    pub nrd_feed: NrdFeed,
}

/// Everything a run produces (report plus the artifacts tests and benches
/// want to poke at).
pub struct RunArtifacts {
    pub report: Report,
    pub universe: Universe,
    pub schedule: SnapshotSchedule,
    pub classified: Vec<ClassifiedCandidate>,
    pub monitor_reports: Vec<MonitorReport>,
    /// The monitor's consumer-side zone-visibility accounting (how many
    /// candidates the membership backend confirmed within their
    /// monitoring window).
    pub monitor_zone: MonitorZoneStats,
}

/// What [`Experiment::run_with_membership`] hands its factory: the
/// borrowed substrates a backend may need.
pub struct MembershipCtx<'a> {
    pub oracle: &'a SnapshotOracle<'a>,
    pub schedule: &'a SnapshotSchedule,
    pub universe: &'a Universe,
    pub config: &'a ExperimentConfig,
}

/// The deterministic substrate set every run shape builds the same way.
/// One builder on purpose: the batch pipeline and the [`LiveInputs`]
/// harness draw from the seed's `RngPool` in exactly this order, which
/// is what makes "same config, same seed" mean "same universe and same
/// certstream" across run shapes — the property every cross-backend
/// comparison rests on.
struct Substrates {
    fleet: RegistrarFleet,
    landscape: HostingLandscape,
    schedule: SnapshotSchedule,
    universe: Universe,
    stream: CertStream,
    psl: PublicSuffixList,
}

fn build_substrates(cfg: &ExperimentConfig, pool: &RngPool) -> Substrates {
    let fleet = RegistrarFleet::paper_fleet();
    let landscape = HostingLandscape::paper_landscape();
    let schedule = SnapshotSchedule::new(
        pool,
        &cfg.tlds,
        cfg.workload.window_start,
        cfg.workload.window_days,
    );
    let universe = UniverseBuilder {
        tlds: &cfg.tlds,
        fleet: &fleet,
        hosting: &landscape,
        schedule: &schedule,
        config: cfg.workload.clone(),
    }
    .build(pool);
    let (stream, _ct_log) = CertStream::build(&universe, &schedule, &CaFleet::paper_fleet(), pool);
    Substrates { fleet, landscape, schedule, universe, stream, psl: PublicSuffixList::builtin() }
}

impl Experiment {
    pub fn new(config: ExperimentConfig) -> Self {
        // The zonestream feed is the released artifact: its subscribers
        // legitimately drain once at the end of a run, so it gets the
        // archive capacity, not the live-consumer default — a paper-scale
        // run must not silently truncate the artifact.
        let nrd_feed =
            NrdFeed::with_config(crate::feed::ARTIFACT_FEED_CAPACITY, crate::feed::OverflowPolicy::Lag);
        Experiment { config, nrd_feed }
    }

    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Run the full experiment and return just the report.
    pub fn run(self) -> Report {
        self.run_with_artifacts().report
    }

    /// Run the full experiment, keeping intermediate artifacts. Uses the
    /// paper's batch backend: daily-snapshot [`OracleMembership`].
    pub fn run_with_artifacts(self) -> RunArtifacts {
        self.run_with_membership(|ctx| Box::new(OracleMembership::new(ctx.oracle, ctx.universe)))
    }

    /// Run the full experiment with a caller-chosen [`ZoneMembership`]
    /// backend built from the run's substrates. The factory runs once
    /// the universe and schedule exist; the pipeline stages (detector
    /// discard test, monitor zone-visibility accounting) then consult
    /// whatever backend it returned.
    ///
    /// Push-fed backends (broker / socket views) run here too, but note
    /// the batch shape calls `advance_to` only as detection progresses —
    /// a backend whose *producer* must be driven in time order belongs
    /// in the [`run_certstream_detection`] harness instead.
    pub fn run_with_membership(
        self,
        make: impl for<'a> FnOnce(MembershipCtx<'a>) -> Box<dyn ZoneMembership + 'a>,
    ) -> RunArtifacts {
        let cfg = &self.config;
        let pool = RngPool::new(cfg.seed);

        // --- substrates ---------------------------------------------------
        let Substrates { fleet, landscape, schedule, universe, stream, psl } =
            build_substrates(cfg, &pool);
        let oracle = SnapshotOracle::new(&schedule);
        let mut membership = make(MembershipCtx {
            oracle: &oracle,
            schedule: &schedule,
            universe: &universe,
            config: cfg,
        });

        // --- step 1: detection --------------------------------------------
        let mut detector = Detector::new(&psl, &universe, &mut membership);
        let candidates = detector.run(stream.entries());
        drop(detector);

        // --- steps 2+4: RDAP ------------------------------------------------
        let mut directory = RdapDirectory::new(&universe, &fleet, cfg.rdap.clone(), &pool);
        let mut validator = Validator::new(
            &mut directory,
            RdapClient::paper_client(),
            cfg.rdap_queue_median_secs,
            pool.stream("core.validator"),
        );
        let validated = validator.validate_all(candidates);

        // Publish the zonestream feed (the paper's released artifact).
        for v in &validated {
            self.nrd_feed.publish(NrdFeedRecord {
                domain: v.candidate.domain.clone(),
                detected_at: v.candidate.detected_at,
                rdap_created: v.rdap.as_ref().ok().map(|r| r.created),
                registrar: v.rdap.as_ref().ok().map(|r| r.registrar.clone()),
            });
        }
        // Release builds are exactly where paper-scale runs happen, so
        // this must not be a debug-only check: a truncated released
        // artifact is a hard error, not a silent drop.
        assert_eq!(
            self.nrd_feed.dropped_total(),
            0,
            "zonestream artifact truncated; raise ARTIFACT_FEED_CAPACITY"
        );

        // --- step 3: monitoring ---------------------------------------------
        let mut monitor = Monitor::new(&universe, &landscape, &mut membership);
        let candidate_refs: Vec<_> = validated.iter().map(|v| v.candidate.clone()).collect();
        let monitor_reports = monitor.monitor_all(&candidate_refs);
        let monitor_zone = monitor.zone_stats();
        drop(monitor);
        drop(membership);

        // --- step 5: transient classification --------------------------------
        let classified = classify(
            &universe,
            &oracle,
            cfg.workload.window_start,
            validated,
            &monitor_reports,
        );

        // --- comparison sources ----------------------------------------------
        let blocklists = BlocklistSet::simulate(
            &universe,
            &cfg.blocklists,
            cfg.workload.window_end(),
            &pool,
        );
        let nod = NodFeed::simulate(&universe, &cfg.nod, cfg.workload.window_start, &pool);
        let dzdb = DzdbArchive::build(&universe, cfg.workload.window_start);

        // --- report -----------------------------------------------------------
        let report = report::build(&ReportInputs {
            config: cfg,
            universe: &universe,
            oracle: &oracle,
            landscape: &landscape,
            psl: &psl,
            classified: &classified,
            monitor_reports: &monitor_reports,
            blocklists: &blocklists,
            nod: &nod,
            dzdb: &dzdb,
        });
        RunArtifacts { report, universe, schedule, classified, monitor_reports, monitor_zone }
    }
}

// ---------------------------------------------------------------------------
// The live (push-cadence) harness: one set of inputs, any backend.
// ---------------------------------------------------------------------------

/// Substrates shared by every backend of a live detection run: one
/// deterministic universe + certstream, and the push grid every
/// backend's zone view is quantised to. Build once, run against the
/// direct view, an in-process broker view and a socket view — from
/// identical inputs.
pub struct LiveInputs {
    pub config: ExperimentConfig,
    pub universe: Universe,
    pub stream: CertStream,
    pub psl: PublicSuffixList,
    /// Every TLD of the config, in id order.
    pub tld_ids: Vec<TldId>,
    /// Push-grid anchor (the observation window start).
    pub anchor: SimTime,
    /// Push cadence (5 minutes = Verisign's historical RZU).
    pub cadence: SimDuration,
}

impl LiveInputs {
    /// Build the substrates for `config` at the given push cadence —
    /// via the same [`build_substrates`] sequence the batch pipeline
    /// uses, so an equal config + seed yields the identical universe
    /// and certstream in both run shapes.
    pub fn build(config: ExperimentConfig, cadence: SimDuration) -> Self {
        let pool = RngPool::new(config.seed);
        let Substrates { universe, stream, psl, .. } = build_substrates(&config, &pool);
        let tld_ids = (0..config.tlds.len() as u16).map(TldId).collect();
        let anchor = config.workload.window_start;
        LiveInputs { config, universe, stream, psl, tld_ids, anchor, cadence }
    }

    /// The direct-universe backend over these inputs.
    pub fn direct_view(&self) -> UniverseZoneView<'_> {
        UniverseZoneView::new(&self.universe, &self.tld_ids, self.anchor, self.cadence)
    }

    /// A publisher feed over these inputs (drive it into a broker with
    /// [`UniverseFeed::publish_until`] as detection progresses).
    pub fn feed(&self) -> UniverseFeed {
        UniverseFeed::build(&self.universe, &self.config.tlds, &self.tld_ids, self.anchor, self.cadence)
    }
}

/// What one live detection run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveDetection {
    pub candidates: Vec<NrdCandidate>,
    pub stats: DetectorStats,
    /// The backend's zone-NRD log (drained at the end of the run).
    pub zone_nrds: Vec<DomainName>,
}

/// Run certstream detection over `inputs` against any membership
/// backend. `sync` is the backend's producer driver, called with the
/// upcoming entry's timestamp *before* the entry is observed: the
/// direct view needs nothing (`|_, _| {}`); a broker backend publishes
/// the feed up to that instant; a socket backend additionally pumps
/// until the published heads crossed the wire. Entries before the push
/// anchor are skipped — no backend has a view to answer from yet.
pub fn run_certstream_detection<M: ZoneMembership>(
    inputs: &LiveInputs,
    membership: &mut M,
    mut sync: impl FnMut(&mut M, SimTime),
) -> LiveDetection {
    let mut detector = Detector::new(&inputs.psl, &inputs.universe, membership);
    let mut candidates = Vec::new();
    for entry in inputs.stream.entries() {
        if entry.at < inputs.anchor {
            continue;
        }
        sync(detector.membership_mut(), entry.at);
        candidates.extend(detector.observe(entry));
    }
    let stats = detector.stats();
    let mut zone_nrds = Vec::new();
    detector.membership_mut().drain_new_domains(&mut zone_nrds);
    LiveDetection { candidates, stats, zone_nrds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::TransientStatus;

    fn run_small(seed: u64) -> RunArtifacts {
        Experiment::new(ExperimentConfig::small(seed)).run_with_artifacts()
    }

    #[test]
    fn small_experiment_produces_sane_report() {
        let arts = run_small(7);
        let r = &arts.report;
        assert!(r.nrd_total > 100, "too few NRDs: {}", r.nrd_total);
        assert!(r.zone_nrd_total > r.nrd_total, "coverage cannot exceed 100%");
        assert!((20.0..70.0).contains(&r.coverage_pct), "coverage {}", r.coverage_pct);
        assert!(r.transients.candidates > 0);
        assert!(r.transients.confirmed <= r.transients.candidates);
        assert!(!r.table1.is_empty());
        assert!(!r.figure1.is_empty());
        // The monitor consulted the membership backend for every
        // monitored candidate.
        let zs = arts.monitor_zone;
        assert_eq!(zs.confirmed_in_view + zs.never_in_view, arts.monitor_reports.len() as u64);
        assert!(zs.confirmed_in_view > 0, "some candidates must become snapshot-visible");
        assert!(zs.never_in_view > 0, "transients must stay snapshot-invisible");
    }

    #[test]
    fn determinism() {
        let a = run_small(11).report;
        let b = run_small(11).report;
        assert_eq!(a.nrd_total, b.nrd_total);
        assert_eq!(a.transients.confirmed, b.transients.confirmed);
        assert_eq!(a.figure1_half_detected_within_secs, b.figure1_half_detected_within_secs);
        let c = run_small(12).report;
        assert_ne!(a.nrd_total, c.nrd_total);
    }

    #[test]
    fn transient_rdap_failure_rate_exceeds_nrd_rate() {
        let r = run_small(13).report;
        let rf = &r.rdap_failures;
        assert!(
            rf.transient_failure_pct > 3.0 * rf.nrd_failure_pct,
            "transient {} vs nrd {}",
            rf.transient_failure_pct,
            rf.nrd_failure_pct
        );
    }

    #[test]
    fn confirmed_transients_never_appear_in_snapshots() {
        let arts = run_small(17);
        let oracle = SnapshotOracle::new(&arts.schedule);
        for c in &arts.classified {
            if c.status == TransientStatus::Confirmed {
                let record = arts.universe.get(c.validated.candidate.record);
                assert!(!oracle.appeared_in_any(record));
            }
        }
    }

    #[test]
    fn feed_publishes_every_validated_candidate() {
        let exp = Experiment::new(ExperimentConfig::small(19));
        let sub = exp.nrd_feed.subscribe();
        let arts = exp.run_with_artifacts();
        let records = sub.drain();
        assert_eq!(records.len(), arts.classified.len());
    }

    #[test]
    fn render_text_contains_all_sections() {
        let r = run_small(23).report;
        let text = r.render_text();
        for needle in [
            "Table 1",
            "Table 2",
            "Figure 1",
            "Figure 2",
            "Table 3",
            "Table 4",
            "Table 5",
            "NS stability",
            "RDAP failures",
            "blocklists",
            "NOD comparison",
            "ccTLD",
        ] {
            assert!(text.contains(needle), "missing section {needle}");
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let r = run_small(29).report;
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("table1"));
        assert!(json.contains("coverage_pct"));
    }

    #[test]
    fn experiment_runs_generically_over_a_live_backend() {
        // The whole batch pipeline — detector discard test and monitor
        // zone accounting included — driven by the push-cadence direct
        // view instead of the snapshot oracle. Fresher membership
        // discards more renewals, so coverage drops relative to the
        // snapshot run but the pipeline itself is backend-agnostic.
        let cfg = ExperimentConfig::small(7);
        let tld_count = cfg.tlds.len() as u16;
        let arts = Experiment::new(cfg).run_with_membership(|ctx| {
            let tlds: Vec<TldId> = (0..tld_count).map(TldId).collect();
            Box::new(UniverseZoneView::new(
                ctx.universe,
                &tlds,
                ctx.config.workload.window_start,
                SimDuration::from_minutes(5),
            ))
        });
        assert!(arts.report.nrd_total > 0);
        let snapshot_run = run_small(7);
        assert!(
            arts.report.coverage_pct < snapshot_run.report.coverage_pct,
            "push-fresh membership must discard more than daily snapshots: {} vs {}",
            arts.report.coverage_pct,
            snapshot_run.report.coverage_pct
        );
    }

    #[test]
    fn live_inputs_direct_run_is_deterministic() {
        let inputs = LiveInputs::build(ExperimentConfig::small(31), SimDuration::from_minutes(5));
        let mut view_a = inputs.direct_view();
        let a = run_certstream_detection(&inputs, &mut view_a, |_, _| {});
        let mut view_b = inputs.direct_view();
        let b = run_certstream_detection(&inputs, &mut view_b, |_, _| {});
        assert!(!a.candidates.is_empty());
        assert!(!a.zone_nrds.is_empty());
        assert_eq!(a, b);
    }
}
