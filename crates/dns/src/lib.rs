//! DNS substrate for the DarkDNS reproduction.
//!
//! Everything the pipeline and the ecosystem simulator need from the DNS
//! itself lives here, implemented from scratch:
//!
//! * [`name`] — domain names (LDH validation, label manipulation,
//!   ordering), stored as 23-byte `Copy` values: inline for names ≤ 22
//!   bytes, interned in the global [`name::NameTable`] beyond that;
//! * [`hash`] — fast Fx hashing for name-keyed containers on hot paths;
//! * [`psl`] — a Public Suffix List with wildcard/exception rules and
//!   registrable-domain ("pay-level domain") extraction, the operation
//!   whose corner cases the paper blames for part of Figure 1's long tail;
//! * [`record`] — record types, RDATA, resource records and RRsets;
//! * [`serial`] — RFC 1982 serial-number arithmetic for SOA serials (the
//!   paper validates zone-update cadence by probing SOA serial changes);
//! * [`wire`] — an RFC 1035 message codec with name compression, used by
//!   the active-measurement substrate;
//! * [`zone`] — a TLD zone: delegations, SOA, point mutations;
//! * [`snapshot`] — immutable zone snapshots plus a zone-file-like text
//!   round-trip (the CZDS artifact);
//! * [`diff`] — three zone-diff engines (sorted-merge, hash-partitioned,
//!   incremental journal) that the bench harness races against each other.

pub mod diff;
pub mod hash;
pub mod name;
pub mod par;
pub mod psl;
pub mod record;
pub mod serial;
pub mod snapshot;
pub mod wire;
pub mod zone;

pub use diff::{ZoneDelta, ZoneDiffEngine};
pub use name::{DomainName, NameError, NameTable};
pub use psl::PublicSuffixList;
pub use record::{RData, RecordClass, RecordType, ResourceRecord};
pub use serial::Serial;
pub use snapshot::ZoneSnapshot;
pub use wire::{decode_delta_push, encode_delta_push, DeltaPush};
pub use zone::{Delegation, NsSet, Zone};
