//! Public Suffix List and registrable-domain extraction.
//!
//! The pipeline's first step reduces every CN/SAN name in a certificate to
//! its *registrable domain* (the paper says "pay-level domain" / SLD): the
//! public suffix plus one label. The paper notes (§4.1) that incorrect SLD
//! extraction is one source of misclassified "newly registered" domains,
//! so this module implements the full PSL algorithm — longest matching
//! rule, `*` wildcard rules, and `!` exception rules — over a rule set
//! loaded from the same text format as the real list.

use crate::hash::FxBuildHasher;
use crate::name::DomainName;
use std::collections::HashSet;

/// A parsed Public Suffix List.
#[derive(Debug, Clone, Default)]
pub struct PublicSuffixList {
    /// Exact suffix rules, e.g. `com`, `co.uk`.
    exact: HashSet<String, FxBuildHasher>,
    /// Wildcard rules stored by their parent, e.g. `ck` for `*.ck`.
    wildcard_parents: HashSet<String, FxBuildHasher>,
    /// Exception rules stored without the `!`, e.g. `www.ck`.
    exceptions: HashSet<String, FxBuildHasher>,
}

impl PublicSuffixList {
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse rules from PSL text format: one rule per line, `//` comments
    /// and blank lines ignored, `*.` prefix for wildcards, `!` prefix for
    /// exceptions. Rules are lowercased.
    pub fn parse(text: &str) -> Self {
        let mut psl = PublicSuffixList::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            psl.add_rule(line);
        }
        psl
    }

    /// Add a single rule in PSL syntax.
    pub fn add_rule(&mut self, rule: &str) {
        let rule = rule.trim().to_ascii_lowercase();
        if let Some(exception) = rule.strip_prefix('!') {
            self.exceptions.insert(exception.to_owned());
        } else if let Some(parent) = rule.strip_prefix("*.") {
            self.wildcard_parents.insert(parent.to_owned());
        } else {
            self.exact.insert(rule);
        }
    }

    /// A compact default list sufficient for the reproduction's universe:
    /// the gTLDs of Tables 1-2, a handful of ccTLDs including multi-label
    /// suffixes, and a wildcard + exception pair to keep those code paths
    /// exercised end to end.
    pub fn builtin() -> Self {
        Self::parse(
            "\
// gTLDs in the paper's tables
com\nnet\norg\nxyz\nshop\nonline\nbond\ntop\nsite\nstore\nfun\ninfo\nbiz\nicu\nclub\nlive\napp\ndev\n\
// ccTLDs
nl\nde\nuk\nco.uk\norg.uk\nac.uk\nus\nio\nco\nau\ncom.au\nnet.au\n\
// wildcard + exception (as in the real PSL for .ck)
*.ck\n!www.ck\n",
        )
    }

    pub fn rule_count(&self) -> usize {
        self.exact.len() + self.wildcard_parents.len() + self.exceptions.len()
    }

    /// True if `name` itself is a public suffix.
    pub fn is_public_suffix(&self, name: &DomainName) -> bool {
        if name.is_root() {
            return false;
        }
        let s = name.as_str();
        if self.exceptions.contains(s) {
            return false;
        }
        if self.exact.contains(s) {
            return true;
        }
        // `*.parent` matches exactly one label under parent.
        if let Some(dot) = s.find('.') {
            if self.wildcard_parents.contains(&s[dot + 1..]) {
                return true;
            }
        }
        false
    }

    /// Length in labels of the longest public suffix of `name`, or `None`
    /// if no rule matches. Per the PSL algorithm, when no rule matches the
    /// prevailing rule is `*` (the unknown TLD itself is the suffix) — the
    /// caller decides whether to apply that fallback.
    ///
    /// Walks candidate suffixes as string slices of `name` — the hot path
    /// of the Step-1 detector constructs no intermediate names and never
    /// touches the interner.
    fn matching_suffix_labels(&self, name: &DomainName) -> Option<usize> {
        let s = name.as_str();
        let mut best: Option<usize> = None;
        let mut take = 0usize;
        // A previous candidate's start doubles as the `*.parent` parent
        // check for the next (longer) candidate.
        let mut prev_start: Option<usize> = None;
        // Suffix start offsets, rightmost label (TLD) first: the position
        // after each '.', walked right-to-left, then the whole name.
        let starts_rev =
            s.match_indices('.').map(|(i, _)| i + 1).rev().chain(std::iter::once(0));
        for start in starts_rev {
            let suf = &s[start..];
            take += 1;
            if self.exceptions.contains(suf) {
                // An exception rule prevails over all other matching rules:
                // the *parent* of the exception is the public suffix, i.e.
                // the exception label itself is registrable.
                return Some(take - 1);
            }
            if self.exact.contains(suf) {
                best = Some(take);
            }
            if let Some(parent_start) = prev_start {
                if self.wildcard_parents.contains(&s[parent_start..]) {
                    best = Some(take);
                }
            }
            prev_start = Some(start);
        }
        best
    }

    /// The registrable ("pay-level") domain of `name`: the public suffix
    /// plus one label. Returns `None` when `name` is itself a public suffix
    /// (or the root), i.e. nothing is registrable.
    ///
    /// Unknown TLDs fall back to the PSL's implicit `*` rule: the TLD is
    /// treated as the suffix and `foo.unknowntld` is registrable.
    pub fn registrable_domain(&self, name: &DomainName) -> Option<DomainName> {
        if name.is_root() {
            return None;
        }
        let suffix_labels = self.matching_suffix_labels(name).unwrap_or(1);
        let total = name.label_count();
        if total <= suffix_labels {
            return None;
        }
        Some(name.suffix(suffix_labels + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psl() -> PublicSuffixList {
        PublicSuffixList::builtin()
    }

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn simple_gtld_extraction() {
        assert_eq!(psl().registrable_domain(&name("www.example.com")), Some(name("example.com")));
        assert_eq!(psl().registrable_domain(&name("example.com")), Some(name("example.com")));
        assert_eq!(psl().registrable_domain(&name("a.b.c.d.example.xyz")), Some(name("example.xyz")));
    }

    #[test]
    fn multi_label_suffix() {
        assert_eq!(psl().registrable_domain(&name("shop.example.co.uk")), Some(name("example.co.uk")));
        assert_eq!(psl().registrable_domain(&name("example.co.uk")), Some(name("example.co.uk")));
        // `co.uk` itself is a suffix, not registrable.
        assert_eq!(psl().registrable_domain(&name("co.uk")), None);
        // but `uk` alone matches only the `uk` rule, so `co.uk`... wait, both
        // rules exist; longest match (`co.uk`) wins for names under it while
        // `direct.uk` is registrable under the `uk` rule.
        assert_eq!(psl().registrable_domain(&name("direct.uk")), Some(name("direct.uk")));
    }

    #[test]
    fn tld_itself_is_not_registrable() {
        assert_eq!(psl().registrable_domain(&name("com")), None);
        assert_eq!(psl().registrable_domain(&DomainName::root()), None);
    }

    #[test]
    fn wildcard_rule() {
        // *.ck: `anything.ck` is a public suffix, so `foo.anything.ck` is
        // the registrable domain.
        assert!(psl().is_public_suffix(&name("weird.ck")));
        assert_eq!(psl().registrable_domain(&name("foo.weird.ck")), Some(name("foo.weird.ck")));
        assert_eq!(psl().registrable_domain(&name("weird.ck")), None);
    }

    #[test]
    fn exception_rule_overrides_wildcard() {
        // !www.ck: `www.ck` is registrable even though *.ck is a wildcard.
        assert!(!psl().is_public_suffix(&name("www.ck")));
        assert_eq!(psl().registrable_domain(&name("www.ck")), Some(name("www.ck")));
        assert_eq!(psl().registrable_domain(&name("a.www.ck")), Some(name("www.ck")));
    }

    #[test]
    fn unknown_tld_fallback_star_rule() {
        assert_eq!(psl().registrable_domain(&name("foo.unknowntld")), Some(name("foo.unknowntld")));
        assert_eq!(psl().registrable_domain(&name("a.b.foo.unknowntld")), Some(name("foo.unknowntld")));
        assert_eq!(psl().registrable_domain(&name("unknowntld")), None);
    }

    #[test]
    fn is_public_suffix_basics() {
        assert!(psl().is_public_suffix(&name("com")));
        assert!(psl().is_public_suffix(&name("co.uk")));
        assert!(!psl().is_public_suffix(&name("example.com")));
        assert!(!psl().is_public_suffix(&DomainName::root()));
    }

    #[test]
    fn parse_ignores_comments_and_blanks() {
        let psl = PublicSuffixList::parse("// a comment\n\ncom\n  net  \n");
        assert_eq!(psl.rule_count(), 2);
        assert!(psl.is_public_suffix(&name("net")));
    }

    #[test]
    fn longest_match_wins() {
        let mut psl = PublicSuffixList::new();
        psl.add_rule("jp");
        psl.add_rule("ne.jp");
        assert_eq!(psl.registrable_domain(&name("x.example.ne.jp")), Some(name("example.ne.jp")));
        assert_eq!(psl.registrable_domain(&name("example.jp")), Some(name("example.jp")));
    }
}
