//! Resource records.
//!
//! The reproduction needs the record types the paper's measurements touch:
//! `A`/`AAAA` (web hosting, Table 5), `NS` (DNS hosting, Table 4; removal
//! detection, Figure 2), `SOA` (serial probing, §4.1), plus `CNAME`, `MX`
//! and `TXT` which appear in the future-work measurements and keep the wire
//! codec honest about variable-length RDATA.

use crate::name::DomainName;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// DNS record types (the subset used in the reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RecordType {
    A,
    Ns,
    Cname,
    Soa,
    Mx,
    Txt,
    Aaaa,
}

impl RecordType {
    /// RFC 1035 / 3596 TYPE value.
    pub const fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
        }
    }

    pub fn from_code(code: u16) -> Option<RecordType> {
        Some(match code {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            _ => return None,
        })
    }

    pub const fn mnemonic(self) -> &'static str {
        match self {
            RecordType::A => "A",
            RecordType::Ns => "NS",
            RecordType::Cname => "CNAME",
            RecordType::Soa => "SOA",
            RecordType::Mx => "MX",
            RecordType::Txt => "TXT",
            RecordType::Aaaa => "AAAA",
        }
    }

    pub fn from_mnemonic(s: &str) -> Option<RecordType> {
        Some(match s.to_ascii_uppercase().as_str() {
            "A" => RecordType::A,
            "NS" => RecordType::Ns,
            "CNAME" => RecordType::Cname,
            "SOA" => RecordType::Soa,
            "MX" => RecordType::Mx,
            "TXT" => RecordType::Txt,
            "AAAA" => RecordType::Aaaa,
            _ => return None,
        })
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// DNS classes. Only `IN` is used; the variant exists so the wire codec can
/// represent (and reject) others faithfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordClass {
    In,
    Other(u16),
}

impl RecordClass {
    pub const fn code(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Other(c) => c,
        }
    }

    pub fn from_code(code: u16) -> RecordClass {
        if code == 1 {
            RecordClass::In
        } else {
            RecordClass::Other(code)
        }
    }
}

/// SOA RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SoaData {
    pub mname: DomainName,
    pub rname: DomainName,
    pub serial: u32,
    pub refresh: u32,
    pub retry: u32,
    pub expire: u32,
    pub minimum: u32,
}

/// Typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RData {
    A(Ipv4Addr),
    Aaaa(Ipv6Addr),
    Ns(DomainName),
    Cname(DomainName),
    Mx { preference: u16, exchange: DomainName },
    Txt(Vec<u8>),
    Soa(SoaData),
}

impl RData {
    pub fn record_type(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Mx { .. } => RecordType::Mx,
            RData::Txt(_) => RecordType::Txt,
            RData::Soa(_) => RecordType::Soa,
        }
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(ip) => write!(f, "{ip}"),
            RData::Aaaa(ip) => write!(f, "{ip}"),
            RData::Ns(n) => write!(f, "{n}."),
            RData::Cname(n) => write!(f, "{n}."),
            RData::Mx { preference, exchange } => write!(f, "{preference} {exchange}."),
            RData::Txt(bytes) => write!(f, "\"{}\"", String::from_utf8_lossy(bytes)),
            RData::Soa(s) => write!(
                f,
                "{}. {}. {} {} {} {} {}",
                s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
            ),
        }
    }
}

/// A resource record: owner name, TTL, class and typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceRecord {
    pub name: DomainName,
    pub ttl: u32,
    pub class: RecordClass,
    pub rdata: RData,
}

impl ResourceRecord {
    pub fn new(name: DomainName, ttl: u32, rdata: RData) -> Self {
        ResourceRecord { name, ttl, class: RecordClass::In, rdata }
    }

    pub fn record_type(&self) -> RecordType {
        self.rdata.record_type()
    }
}

impl fmt::Display for ResourceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.\t{}\tIN\t{}\t{}",
            self.name,
            self.ttl,
            self.record_type(),
            self.rdata
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn type_codes_round_trip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Mx,
            RecordType::Txt,
            RecordType::Aaaa,
        ] {
            assert_eq!(RecordType::from_code(t.code()), Some(t));
            assert_eq!(RecordType::from_mnemonic(t.mnemonic()), Some(t));
        }
        assert_eq!(RecordType::from_code(999), None);
        assert_eq!(RecordType::from_mnemonic("PTR"), None);
    }

    #[test]
    fn mnemonics_are_case_insensitive() {
        assert_eq!(RecordType::from_mnemonic("aaaa"), Some(RecordType::Aaaa));
    }

    #[test]
    fn class_codes() {
        assert_eq!(RecordClass::In.code(), 1);
        assert_eq!(RecordClass::from_code(1), RecordClass::In);
        assert_eq!(RecordClass::from_code(3), RecordClass::Other(3));
        assert_eq!(RecordClass::Other(3).code(), 3);
    }

    #[test]
    fn rdata_reports_its_type() {
        assert_eq!(RData::A("1.2.3.4".parse().unwrap()).record_type(), RecordType::A);
        assert_eq!(RData::Ns(name("ns1.example.com")).record_type(), RecordType::Ns);
        assert_eq!(
            RData::Mx { preference: 10, exchange: name("mx.example.com") }.record_type(),
            RecordType::Mx
        );
    }

    #[test]
    fn display_zone_file_style() {
        let rr = ResourceRecord::new(name("example.com"), 3600, RData::A("192.0.2.1".parse().unwrap()));
        assert_eq!(rr.to_string(), "example.com.\t3600\tIN\tA\t192.0.2.1");
        let ns = ResourceRecord::new(name("example.com"), 86400, RData::Ns(name("ns1.cloudflare.com")));
        assert_eq!(ns.to_string(), "example.com.\t86400\tIN\tNS\tns1.cloudflare.com.");
    }

    #[test]
    fn soa_display() {
        let soa = RData::Soa(SoaData {
            mname: name("a.gtld-servers.net"),
            rname: name("nstld.verisign-grs.com"),
            serial: 1700000000,
            refresh: 1800,
            retry: 900,
            expire: 604800,
            minimum: 86400,
        });
        assert_eq!(
            soa.to_string(),
            "a.gtld-servers.net. nstld.verisign-grs.com. 1700000000 1800 900 604800 86400"
        );
    }
}
