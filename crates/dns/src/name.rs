//! Domain names, interned and `Copy`-cheap.
//!
//! A [`DomainName`] is a validated, lowercase, dot-separated sequence of
//! LDH (letters-digits-hyphen) labels in presentation format without the
//! trailing root dot. The root zone itself is represented by
//! [`DomainName::root`], displayed as `"."`.
//!
//! # Representation
//!
//! `DomainName` is a fixed 23-byte `Copy` value with two layouts:
//!
//! * **inline** — names of at most [`INLINE_LEN`] (22) bytes are stored
//!   directly in the value (the tag byte is the length; length 0 is the
//!   root). At `.com` scale the overwhelming majority of delegated names
//!   fit inline, so cloning a snapshot entry or a diff record is a 23-byte
//!   copy with no allocator traffic.
//! * **interned** — longer names hold a `u32` id into the process-global
//!   [`NameTable`], an append-only interner. Interning happens once per
//!   unique spelling; every subsequent parse of the same name returns the
//!   same id.
//!
//! Equality and hashing are O(1) byte/id comparisons in both layouts
//! (equal interned strings always share one id, and an inline name can
//! never equal an interned one because their lengths differ). Ordering is
//! lexicographic on the presentation bytes, identical to the previous
//! `String`-backed ordering; the fast path short-circuits on equality.
//!
//! Validation follows RFC 1035 §2.3.4 sizes (labels 1..=63 octets, name
//! ≤ 253 octets in presentation form) with the LDH rule of RFC 3696:
//! labels may not begin or end with a hyphen. Internationalised names are
//! expected in their punycode (`xn--`) form, as they appear in zone files
//! and CT log entries.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// Maximum name length stored inline (without interning).
pub const INLINE_LEN: usize = 22;

/// Tag value marking the interned layout.
const TAG_INTERNED: u8 = 0xFF;

/// Reasons a string is not a valid domain name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// The name (in presentation format) exceeds 253 octets.
    TooLong(usize),
    /// A label is empty (consecutive dots, or leading dot in a non-root name).
    EmptyLabel,
    /// A label exceeds 63 octets.
    LabelTooLong(String),
    /// A label contains a character outside `[a-z0-9-]` (after lowercasing)
    /// or an underscore outside the permitted service-label position.
    BadCharacter(char),
    /// A label begins or ends with a hyphen.
    HyphenEdge(String),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::TooLong(n) => write!(f, "name is {n} octets; max is 253"),
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong(l) => write!(f, "label `{l}` exceeds 63 octets"),
            NameError::BadCharacter(c) => write!(f, "character `{c}` not allowed"),
            NameError::HyphenEdge(l) => write!(f, "label `{l}` begins or ends with a hyphen"),
        }
    }
}

impl std::error::Error for NameError {}

// Interner geometry: ids index a two-level table of string slots so that
// resolution is lock-free and existing slots are never moved. 4096 chunks
// of 32768 slots bound the table at ~134M unique long names — comfortably
// above .com scale.
const CHUNK_BITS: u32 = 15;
const CHUNK_SLOTS: usize = 1 << CHUNK_BITS;
const MAX_CHUNKS: usize = 4096;

/// The process-global domain-name interner.
///
/// Append-only: names are interned once and live for the process lifetime
/// (their storage is intentionally leaked). Insertion takes a mutex;
/// id-to-string resolution is a pair of atomic loads, so the diff engines'
/// comparison hot paths never contend.
pub struct NameTable {
    /// Spelling → id. Re-parsing an already-interned spelling (the common
    /// case once a universe is built) takes only the read lock. A leaf in
    /// the workspace hierarchy; `dns` sits below the broker in the crate
    /// graph, so the lock is annotated rather than runtime-tracked.
    // lock-level: 90
    map: RwLock<std::collections::HashMap<&'static str, u32, crate::hash::FxBuildHasher>>,
    /// Two-level id → string table. Chunks are allocated on demand and
    /// published with release stores; slots likewise.
    chunks: [AtomicPtr<AtomicPtr<&'static str>>; MAX_CHUNKS],
    /// Number of interned names (ids are `0..len`).
    len: AtomicU32,
    /// Total bytes of interned string payload (stats only).
    bytes: AtomicU64,
}

impl NameTable {
    /// The global interner instance.
    pub fn global() -> &'static NameTable {
        static TABLE: OnceLock<NameTable> = OnceLock::new();
        TABLE.get_or_init(|| NameTable {
            map: RwLock::new(std::collections::HashMap::default()),
            chunks: [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_CHUNKS],
            len: AtomicU32::new(0),
            bytes: AtomicU64::new(0),
        })
    }

    /// Number of unique names interned so far.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes held by the interner.
    pub fn interned_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed) as usize
    }

    /// Intern `s` (already validated, canonical lowercase), returning its id.
    fn intern(&self, s: &str) -> u32 {
        if let Some(&id) =
            self.map.read().unwrap_or_else(|poison| poison.into_inner()).get(s)
        {
            return id;
        }
        let mut map = self.map.write().unwrap_or_else(|poison| poison.into_inner());
        // Re-check: another thread may have interned between the locks.
        if let Some(&id) = map.get(s) {
            return id;
        }
        let id = self.len.load(Ordering::Relaxed);
        assert!(
            (id as usize) < MAX_CHUNKS * CHUNK_SLOTS,
            "NameTable capacity exhausted ({} names)",
            id
        );
        // The string and its slot cell live for the process lifetime.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let cell: &'static mut &'static str = Box::leak(Box::new(leaked));
        let chunk_idx = (id >> CHUNK_BITS) as usize;
        let slot_idx = (id as usize) & (CHUNK_SLOTS - 1);
        let mut chunk = self.chunks[chunk_idx].load(Ordering::Acquire);
        if chunk.is_null() {
            let fresh: Box<[AtomicPtr<&'static str>]> =
                (0..CHUNK_SLOTS).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect();
            chunk = Box::leak(fresh).as_mut_ptr();
            self.chunks[chunk_idx].store(chunk, Ordering::Release);
        }
        // Safety: `chunk` points at CHUNK_SLOTS live slots and slot_idx is
        // in range; all writers are serialized by the map mutex.
        unsafe { &*chunk.add(slot_idx) }.store(cell, Ordering::Release);
        map.insert(leaked, id);
        self.bytes.fetch_add(s.len() as u64, Ordering::Relaxed);
        self.len.store(id + 1, Ordering::Release);
        id
    }

    /// Resolve an id handed out by [`NameTable::intern`].
    fn resolve(&self, id: u32) -> &'static str {
        let chunk = self.chunks[(id >> CHUNK_BITS) as usize].load(Ordering::Acquire);
        debug_assert!(!chunk.is_null(), "resolve of unknown name id {id}");
        // Safety: a live id implies its chunk and slot were published with
        // release stores before the id escaped the interner.
        let slot = unsafe { &*chunk.add((id as usize) & (CHUNK_SLOTS - 1)) };
        let cell = slot.load(Ordering::Acquire);
        debug_assert!(!cell.is_null(), "resolve of unpublished name id {id}");
        unsafe { *cell }
    }
}

/// A validated, fully-qualified domain name in lowercase presentation form.
///
/// A fixed-size `Copy` value: see the module docs for the inline/interned
/// layout. Cloning never allocates; equality and hashing are O(1).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DomainName {
    /// Length of the inline name (0..=22; 0 is the root), or
    /// [`TAG_INTERNED`] when `data[..4]` holds the interner id.
    tag: u8,
    /// Inline name bytes (zero-padded), or the little-endian id.
    data: [u8; INLINE_LEN],
}

impl DomainName {
    /// The DNS root.
    pub fn root() -> Self {
        DomainName { tag: 0, data: [0; INLINE_LEN] }
    }

    /// Parse and validate a name. Accepts an optional trailing root dot and
    /// uppercase input (both normalised away).
    pub fn parse(input: &str) -> Result<Self, NameError> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        if trimmed.is_empty() {
            return Ok(DomainName::root());
        }
        if trimmed.len() > 253 {
            return Err(NameError::TooLong(trimmed.len()));
        }
        // Validate and lowercase in one pass over a stack buffer: no heap
        // allocation on the (dominant) inline path.
        let mut buf = [0u8; 253];
        let mut pos = 0usize;
        for label in trimmed.split('.') {
            validate_label(label)?;
            if pos > 0 {
                buf[pos] = b'.';
                pos += 1;
            }
            for b in label.bytes() {
                buf[pos] = b.to_ascii_lowercase();
                pos += 1;
            }
        }
        // Safety: validated labels are pure ASCII.
        let canonical = unsafe { std::str::from_utf8_unchecked(&buf[..pos]) };
        Ok(Self::from_canonical(canonical))
    }

    /// Build from an already-canonical (lowercase, validated, no trailing
    /// dot) spelling. The internal constructor for parse and the
    /// label-manipulation methods.
    fn from_canonical(name: &str) -> Self {
        debug_assert!(name.len() <= 253);
        if name.len() <= INLINE_LEN {
            let mut data = [0u8; INLINE_LEN];
            data[..name.len()].copy_from_slice(name.as_bytes());
            DomainName { tag: name.len() as u8, data }
        } else {
            let id = NameTable::global().intern(name);
            let mut data = [0u8; INLINE_LEN];
            data[..4].copy_from_slice(&id.to_le_bytes());
            DomainName { tag: TAG_INTERNED, data }
        }
    }

    /// Build a name from labels, most-specific first (`["www","example","com"]`).
    pub fn from_labels<I, S>(labels: I) -> Result<Self, NameError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let joined =
            labels.into_iter().map(|l| l.as_ref().to_owned()).collect::<Vec<_>>().join(".");
        DomainName::parse(&joined)
    }

    /// True when this name is stored inline (not via the interner).
    pub fn is_inline(&self) -> bool {
        self.tag != TAG_INTERNED
    }

    /// The canonical spelling: empty for the root, otherwise the lowercase
    /// dotted name. (Internal: the public form is [`DomainName::as_str`],
    /// which renders the root as `"."`.)
    #[inline]
    fn raw(&self) -> &str {
        if self.tag == TAG_INTERNED {
            let id = u32::from_le_bytes(self.data[..4].try_into().expect("4 id bytes"));
            NameTable::global().resolve(id)
        } else {
            // Safety: inline bytes are ASCII written by from_canonical.
            unsafe { std::str::from_utf8_unchecked(&self.data[..self.tag as usize]) }
        }
    }

    pub fn is_root(&self) -> bool {
        self.tag == 0
    }

    /// Presentation form without the trailing dot; `"."` for the root.
    ///
    /// For inline names the returned slice borrows from `self`; interned
    /// names resolve to the `'static` interner storage.
    pub fn as_str(&self) -> &str {
        if self.is_root() {
            "."
        } else {
            self.raw()
        }
    }

    /// Labels, most-specific first. Empty for the root.
    pub fn labels(&self) -> Vec<&str> {
        if self.is_root() {
            Vec::new()
        } else {
            self.raw().split('.').collect()
        }
    }

    pub fn label_count(&self) -> usize {
        if self.is_root() {
            0
        } else {
            self.raw().bytes().filter(|&b| b == b'.').count() + 1
        }
    }

    /// The name with its leftmost label removed; `None` for the root.
    pub fn parent(&self) -> Option<DomainName> {
        if self.is_root() {
            return None;
        }
        let raw = self.raw();
        match raw.find('.') {
            Some(i) => Some(DomainName::from_canonical(&raw[i + 1..])),
            None => Some(DomainName::root()),
        }
    }

    /// The last (rightmost) label — the TLD — or `None` for the root.
    pub fn tld(&self) -> Option<&str> {
        if self.is_root() {
            None
        } else {
            Some(self.raw().rsplit('.').next().expect("non-empty name has a label"))
        }
    }

    /// True if `self` is `other` or a descendant of `other`. Every name is
    /// a subdomain of the root.
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        if other.is_root() {
            return true;
        }
        if self == other {
            return true;
        }
        let (a, b) = (self.raw(), other.raw());
        a.len() > b.len()
            && a.ends_with(b)
            && a.as_bytes()[a.len() - b.len() - 1] == b'.'
    }

    /// Prepend a label, producing `label.self`.
    pub fn child(&self, label: &str) -> Result<DomainName, NameError> {
        validate_label(label)?;
        let child = if self.is_root() {
            label.to_ascii_lowercase()
        } else {
            format!("{}.{}", label.to_ascii_lowercase(), self.raw())
        };
        DomainName::parse(&child)
    }

    /// Keep only the rightmost `n` labels (e.g. `n = 2` on
    /// `a.b.example.com` gives `example.com`). Returns the whole name when
    /// it has at most `n` labels; the root when `n == 0`.
    pub fn suffix(&self, n: usize) -> DomainName {
        let count = self.label_count();
        if n == 0 {
            return DomainName::root();
        }
        if n >= count {
            return *self;
        }
        let raw = self.raw();
        let mut idx = raw.len();
        for _ in 0..n {
            idx = raw[..idx].rfind('.').expect("label count checked");
        }
        DomainName::from_canonical(&raw[idx + 1..])
    }

    /// Length in octets of the uncompressed wire encoding (length-prefixed
    /// labels plus the terminating zero octet).
    pub fn wire_len(&self) -> usize {
        if self.is_root() {
            1
        } else {
            self.raw().len() + 2
        }
    }
}

fn validate_label(label: &str) -> Result<(), NameError> {
    if label.is_empty() {
        return Err(NameError::EmptyLabel);
    }
    if label.len() > 63 {
        return Err(NameError::LabelTooLong(label.to_owned()));
    }
    for c in label.chars() {
        // `_` is tolerated as a leading character for service labels
        // (e.g. `_dmarc`), which occur in CT log SAN entries. Uppercase is
        // accepted here and lowercased by the caller.
        let ok = c.is_ascii_alphanumeric() || c == '-' || c == '_';
        if !ok {
            return Err(NameError::BadCharacter(c));
        }
    }
    if label.starts_with('-') || label.ends_with('-') {
        return Err(NameError::HyphenEdge(label.to_owned()));
    }
    Ok(())
}

impl PartialOrd for DomainName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DomainName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Equality (including interned-id equality) is a 23-byte compare;
        // only genuinely different names fall through to byte ordering.
        if self == other {
            return std::cmp::Ordering::Equal;
        }
        self.raw().as_bytes().cmp(other.raw().as_bytes())
    }
}

impl fmt::Debug for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("DomainName").field(&self.as_str()).finish()
    }
}

impl serde::Serialize for DomainName {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(if self.is_root() { String::new() } else { self.raw().to_owned() })
    }
}

impl serde::Deserialize for DomainName {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => DomainName::parse(s).map_err(serde::Error::custom),
            _ => Err(serde::Error::custom("expected domain-name string")),
        }
    }
}

impl serde::DeserializeKey for DomainName {
    fn from_key(key: &str) -> Result<Self, serde::Error> {
        DomainName::parse(key).map_err(serde::Error::custom)
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for DomainName {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_normalises_case_and_root_dot() {
        let n = DomainName::parse("WwW.Example.COM.").unwrap();
        assert_eq!(n.as_str(), "www.example.com");
    }

    #[test]
    fn root_parses_from_dot_and_empty() {
        assert!(DomainName::parse(".").unwrap().is_root());
        assert!(DomainName::parse("").unwrap().is_root());
        assert_eq!(DomainName::root().as_str(), ".");
        assert_eq!(DomainName::root().label_count(), 0);
    }

    #[test]
    fn rejects_bad_labels() {
        assert_eq!(DomainName::parse("a..b"), Err(NameError::EmptyLabel));
        assert!(matches!(DomainName::parse("exa mple.com"), Err(NameError::BadCharacter(' '))));
        assert!(matches!(DomainName::parse("-x.com"), Err(NameError::HyphenEdge(_))));
        assert!(matches!(DomainName::parse("x-.com"), Err(NameError::HyphenEdge(_))));
        let long_label = "a".repeat(64);
        assert!(matches!(
            DomainName::parse(&format!("{long_label}.com")),
            Err(NameError::LabelTooLong(_))
        ));
    }

    #[test]
    fn rejects_overlong_names() {
        let name = vec!["a".repeat(63); 4].join(".");
        assert_eq!(name.len(), 255);
        assert!(matches!(DomainName::parse(&name), Err(NameError::TooLong(255))));
    }

    #[test]
    fn accepts_punycode_and_service_labels() {
        assert!(DomainName::parse("xn--bcher-kva.example").is_ok());
        assert!(DomainName::parse("_dmarc.example.com").is_ok());
    }

    #[test]
    fn labels_and_parent() {
        let n = DomainName::parse("a.b.example.com").unwrap();
        assert_eq!(n.labels(), vec!["a", "b", "example", "com"]);
        assert_eq!(n.label_count(), 4);
        assert_eq!(n.parent().unwrap().as_str(), "b.example.com");
        assert_eq!(n.tld(), Some("com"));
        let tld = DomainName::parse("com").unwrap();
        assert_eq!(tld.parent(), Some(DomainName::root()));
        assert_eq!(DomainName::root().parent(), None);
    }

    #[test]
    fn subdomain_relation() {
        let com = DomainName::parse("com").unwrap();
        let example = DomainName::parse("example.com").unwrap();
        let www = DomainName::parse("www.example.com").unwrap();
        let examplenet = DomainName::parse("example.net").unwrap();
        let notexample = DomainName::parse("notexample.com").unwrap();
        assert!(www.is_subdomain_of(&example));
        assert!(example.is_subdomain_of(&com));
        assert!(example.is_subdomain_of(&example));
        assert!(!example.is_subdomain_of(&www));
        assert!(!examplenet.is_subdomain_of(&com));
        // `notexample.com` must not be treated as under `example.com`.
        assert!(!notexample.is_subdomain_of(&example));
        assert!(notexample.is_subdomain_of(&com));
        assert!(com.is_subdomain_of(&DomainName::root()));
    }

    #[test]
    fn child_builds_and_validates() {
        let com = DomainName::parse("com").unwrap();
        assert_eq!(com.child("Example").unwrap().as_str(), "example.com");
        assert!(com.child("bad label").is_err());
        assert_eq!(DomainName::root().child("org").unwrap().as_str(), "org");
    }

    #[test]
    fn suffix_extraction() {
        let n = DomainName::parse("a.b.example.co.uk").unwrap();
        assert_eq!(n.suffix(1).as_str(), "uk");
        assert_eq!(n.suffix(2).as_str(), "co.uk");
        assert_eq!(n.suffix(3).as_str(), "example.co.uk");
        assert_eq!(n.suffix(5), n);
        assert_eq!(n.suffix(9), n);
        assert!(n.suffix(0).is_root());
    }

    #[test]
    fn wire_len_matches_encoding_rule() {
        assert_eq!(DomainName::root().wire_len(), 1);
        assert_eq!(DomainName::parse("com").unwrap().wire_len(), 5); // 1+3+1
        assert_eq!(DomainName::parse("example.com").unwrap().wire_len(), 13);
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut names = vec![
            DomainName::parse("b.com").unwrap(),
            DomainName::parse("a.com").unwrap(),
            DomainName::parse("a.net").unwrap(),
        ];
        names.sort();
        let strs: Vec<_> = names.iter().map(|n| n.as_str()).collect();
        assert_eq!(strs, vec!["a.com", "a.net", "b.com"]);
    }

    #[test]
    fn from_labels_round_trip() {
        let n = DomainName::from_labels(["www", "example", "com"]).unwrap();
        assert_eq!(n.as_str(), "www.example.com");
        assert_eq!(DomainName::from_labels(Vec::<&str>::new()).unwrap(), DomainName::root());
    }

    // ---- interner-specific coverage ----

    #[test]
    fn inline_boundary_at_22_bytes() {
        // 18 + 4 = 22 bytes: the longest inline form.
        let at = DomainName::parse("a23456789012345678.com").unwrap();
        assert_eq!(at.as_str().len(), INLINE_LEN);
        assert!(at.is_inline());
        // 23 bytes: first interned form.
        let over = DomainName::parse("a2345678901234567890.cc").unwrap();
        assert_eq!(over.as_str().len(), INLINE_LEN + 1);
        assert!(!over.is_inline());
        assert_eq!(over.as_str(), "a2345678901234567890.cc");
    }

    #[test]
    fn interned_names_share_one_id() {
        let a = DomainName::parse("this-is-a-rather-long.example.com").unwrap();
        let before = NameTable::global().len();
        let b = DomainName::parse("THIS-IS-A-RATHER-LONG.Example.COM.").unwrap();
        assert_eq!(a, b);
        assert_eq!(NameTable::global().len(), before, "reparse must not re-intern");
    }

    #[test]
    fn root_is_inline_and_copy_semantics_hold() {
        let root = DomainName::root();
        assert!(root.is_inline());
        let copy = root;
        assert_eq!(copy, root);
        assert_eq!(copy.as_str(), ".");
    }

    #[test]
    fn sixtythree_octet_labels_intern_and_round_trip() {
        let label = "a".repeat(63);
        let name = DomainName::parse(&format!("{label}.com")).unwrap();
        assert!(!name.is_inline());
        assert_eq!(name.labels()[0], label);
        assert_eq!(name.parent().unwrap().as_str(), "com");
        // Reparse from display form is identity.
        assert_eq!(DomainName::parse(name.as_str()).unwrap(), name);
    }

    #[test]
    fn punycode_long_names_intern_cleanly() {
        let n = DomainName::parse("xn--bcher-kva.xn--vermgensberatung-pwb").unwrap();
        assert!(!n.is_inline());
        assert_eq!(n.tld(), Some("xn--vermgensberatung-pwb"));
        assert_eq!(n.suffix(1).as_str(), "xn--vermgensberatung-pwb");
    }

    #[test]
    fn ordering_is_consistent_across_layouts() {
        // Mixed inline/interned names sort exactly like their strings.
        let mut names = vec![
            DomainName::parse("zz.com").unwrap(),
            DomainName::parse("a-very-long-interned-name.com").unwrap(),
            DomainName::parse("a.com").unwrap(),
            DomainName::parse("a-very-long-interned-name.net").unwrap(),
        ];
        names.sort();
        let strs: Vec<_> = names.iter().map(|n| n.as_str().to_owned()).collect();
        let mut by_string = strs.clone();
        by_string.sort();
        assert_eq!(strs, by_string);
    }

    #[test]
    fn hash_is_consistent_with_eq_across_reparse() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(DomainName::parse("some-quite-long-name.example.org").unwrap());
        set.insert(DomainName::parse("short.org").unwrap());
        assert!(set.contains(&DomainName::parse("some-quite-long-name.example.org").unwrap()));
        assert!(set.contains(&DomainName::parse("SHORT.org.").unwrap()));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn interner_is_usable_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| {
                            DomainName::parse(&format!(
                                "shared-cross-thread-name-{}.example{t}.com",
                                i % 50
                            ))
                            .unwrap()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for n in h.join().unwrap() {
                assert!(n.as_str().starts_with("shared-cross-thread-name-"));
            }
        }
    }
}
