//! Domain names.
//!
//! A [`DomainName`] is a validated, lowercase, dot-separated sequence of
//! LDH (letters-digits-hyphen) labels, stored in presentation format
//! without the trailing root dot. The root zone itself is represented by
//! [`DomainName::root`], displayed as `"."`.
//!
//! Validation follows RFC 1035 §2.3.4 sizes (labels 1..=63 octets, name
//! ≤ 253 octets in presentation form) with the LDH rule of RFC 3696:
//! labels may not begin or end with a hyphen. Internationalised names are
//! expected in their punycode (`xn--`) form, as they appear in zone files
//! and CT log entries.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Reasons a string is not a valid domain name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// The name (in presentation format) exceeds 253 octets.
    TooLong(usize),
    /// A label is empty (consecutive dots, or leading dot in a non-root name).
    EmptyLabel,
    /// A label exceeds 63 octets.
    LabelTooLong(String),
    /// A label contains a character outside `[a-z0-9-]` (after lowercasing)
    /// or an underscore outside the permitted service-label position.
    BadCharacter(char),
    /// A label begins or ends with a hyphen.
    HyphenEdge(String),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::TooLong(n) => write!(f, "name is {n} octets; max is 253"),
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong(l) => write!(f, "label `{l}` exceeds 63 octets"),
            NameError::BadCharacter(c) => write!(f, "character `{c}` not allowed"),
            NameError::HyphenEdge(l) => write!(f, "label `{l}` begins or ends with a hyphen"),
        }
    }
}

impl std::error::Error for NameError {}

/// A validated, fully-qualified domain name in lowercase presentation form.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DomainName {
    // Invariant: lowercase, no trailing dot, every label valid LDH;
    // empty string means the root.
    name: String,
}

impl DomainName {
    /// The DNS root.
    pub fn root() -> Self {
        DomainName { name: String::new() }
    }

    /// Parse and validate a name. Accepts an optional trailing root dot and
    /// uppercase input (both normalised away).
    pub fn parse(input: &str) -> Result<Self, NameError> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        if trimmed.is_empty() {
            return Ok(DomainName::root());
        }
        if trimmed.len() > 253 {
            return Err(NameError::TooLong(trimmed.len()));
        }
        let lower = trimmed.to_ascii_lowercase();
        for label in lower.split('.') {
            validate_label(label)?;
        }
        Ok(DomainName { name: lower })
    }

    /// Build a name from labels, most-specific first (`["www","example","com"]`).
    pub fn from_labels<I, S>(labels: I) -> Result<Self, NameError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let joined = labels.into_iter().map(|l| l.as_ref().to_owned()).collect::<Vec<_>>().join(".");
        DomainName::parse(&joined)
    }

    pub fn is_root(&self) -> bool {
        self.name.is_empty()
    }

    /// Presentation form without the trailing dot; `"."` for the root.
    pub fn as_str(&self) -> &str {
        if self.name.is_empty() {
            "."
        } else {
            &self.name
        }
    }

    /// Labels, most-specific first. Empty for the root.
    pub fn labels(&self) -> Vec<&str> {
        if self.name.is_empty() {
            Vec::new()
        } else {
            self.name.split('.').collect()
        }
    }

    pub fn label_count(&self) -> usize {
        if self.name.is_empty() {
            0
        } else {
            self.name.bytes().filter(|&b| b == b'.').count() + 1
        }
    }

    /// The name with its leftmost label removed; `None` for the root.
    pub fn parent(&self) -> Option<DomainName> {
        if self.name.is_empty() {
            return None;
        }
        match self.name.find('.') {
            Some(i) => Some(DomainName { name: self.name[i + 1..].to_owned() }),
            None => Some(DomainName::root()),
        }
    }

    /// The last (rightmost) label — the TLD — or `None` for the root.
    pub fn tld(&self) -> Option<&str> {
        if self.name.is_empty() {
            None
        } else {
            Some(self.name.rsplit('.').next().expect("non-empty name has a label"))
        }
    }

    /// True if `self` is `other` or a descendant of `other`. Every name is
    /// a subdomain of the root.
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        if other.name.is_empty() {
            return true;
        }
        if self.name == other.name {
            return true;
        }
        self.name.len() > other.name.len()
            && self.name.ends_with(&other.name)
            && self.name.as_bytes()[self.name.len() - other.name.len() - 1] == b'.'
    }

    /// Prepend a label, producing `label.self`.
    pub fn child(&self, label: &str) -> Result<DomainName, NameError> {
        validate_label(&label.to_ascii_lowercase())?;
        let child = if self.name.is_empty() {
            label.to_ascii_lowercase()
        } else {
            format!("{}.{}", label.to_ascii_lowercase(), self.name)
        };
        DomainName::parse(&child)
    }

    /// Keep only the rightmost `n` labels (e.g. `n = 2` on
    /// `a.b.example.com` gives `example.com`). Returns the whole name when
    /// it has at most `n` labels; the root when `n == 0`.
    pub fn suffix(&self, n: usize) -> DomainName {
        let count = self.label_count();
        if n == 0 {
            return DomainName::root();
        }
        if n >= count {
            return self.clone();
        }
        let mut idx = self.name.len();
        for _ in 0..n {
            idx = self.name[..idx].rfind('.').expect("label count checked");
        }
        DomainName { name: self.name[idx + 1..].to_owned() }
    }

    /// Length in octets of the uncompressed wire encoding (length-prefixed
    /// labels plus the terminating zero octet).
    pub fn wire_len(&self) -> usize {
        if self.name.is_empty() {
            1
        } else {
            self.name.len() + 2
        }
    }
}

fn validate_label(label: &str) -> Result<(), NameError> {
    if label.is_empty() {
        return Err(NameError::EmptyLabel);
    }
    if label.len() > 63 {
        return Err(NameError::LabelTooLong(label.to_owned()));
    }
    for c in label.chars() {
        // `_` is tolerated as a leading character for service labels
        // (e.g. `_dmarc`), which occur in CT log SAN entries.
        let ok = c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_';
        if !ok {
            return Err(NameError::BadCharacter(c));
        }
    }
    if label.starts_with('-') || label.ends_with('-') {
        return Err(NameError::HyphenEdge(label.to_owned()));
    }
    Ok(())
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for DomainName {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_normalises_case_and_root_dot() {
        let n = DomainName::parse("WwW.Example.COM.").unwrap();
        assert_eq!(n.as_str(), "www.example.com");
    }

    #[test]
    fn root_parses_from_dot_and_empty() {
        assert!(DomainName::parse(".").unwrap().is_root());
        assert!(DomainName::parse("").unwrap().is_root());
        assert_eq!(DomainName::root().as_str(), ".");
        assert_eq!(DomainName::root().label_count(), 0);
    }

    #[test]
    fn rejects_bad_labels() {
        assert_eq!(DomainName::parse("a..b"), Err(NameError::EmptyLabel));
        assert!(matches!(DomainName::parse("exa mple.com"), Err(NameError::BadCharacter(' '))));
        assert!(matches!(DomainName::parse("-x.com"), Err(NameError::HyphenEdge(_))));
        assert!(matches!(DomainName::parse("x-.com"), Err(NameError::HyphenEdge(_))));
        let long_label = "a".repeat(64);
        assert!(matches!(
            DomainName::parse(&format!("{long_label}.com")),
            Err(NameError::LabelTooLong(_))
        ));
    }

    #[test]
    fn rejects_overlong_names() {
        let name = vec!["a".repeat(63); 4].join(".");
        assert_eq!(name.len(), 255);
        assert!(matches!(DomainName::parse(&name), Err(NameError::TooLong(255))));
    }

    #[test]
    fn accepts_punycode_and_service_labels() {
        assert!(DomainName::parse("xn--bcher-kva.example").is_ok());
        assert!(DomainName::parse("_dmarc.example.com").is_ok());
    }

    #[test]
    fn labels_and_parent() {
        let n = DomainName::parse("a.b.example.com").unwrap();
        assert_eq!(n.labels(), vec!["a", "b", "example", "com"]);
        assert_eq!(n.label_count(), 4);
        assert_eq!(n.parent().unwrap().as_str(), "b.example.com");
        assert_eq!(n.tld(), Some("com"));
        let tld = DomainName::parse("com").unwrap();
        assert_eq!(tld.parent(), Some(DomainName::root()));
        assert_eq!(DomainName::root().parent(), None);
    }

    #[test]
    fn subdomain_relation() {
        let com = DomainName::parse("com").unwrap();
        let example = DomainName::parse("example.com").unwrap();
        let www = DomainName::parse("www.example.com").unwrap();
        let examplenet = DomainName::parse("example.net").unwrap();
        let notexample = DomainName::parse("notexample.com").unwrap();
        assert!(www.is_subdomain_of(&example));
        assert!(example.is_subdomain_of(&com));
        assert!(example.is_subdomain_of(&example));
        assert!(!example.is_subdomain_of(&www));
        assert!(!examplenet.is_subdomain_of(&com));
        // `notexample.com` must not be treated as under `example.com`.
        assert!(!notexample.is_subdomain_of(&example));
        assert!(notexample.is_subdomain_of(&com));
        assert!(com.is_subdomain_of(&DomainName::root()));
    }

    #[test]
    fn child_builds_and_validates() {
        let com = DomainName::parse("com").unwrap();
        assert_eq!(com.child("Example").unwrap().as_str(), "example.com");
        assert!(com.child("bad label").is_err());
        assert_eq!(DomainName::root().child("org").unwrap().as_str(), "org");
    }

    #[test]
    fn suffix_extraction() {
        let n = DomainName::parse("a.b.example.co.uk").unwrap();
        assert_eq!(n.suffix(1).as_str(), "uk");
        assert_eq!(n.suffix(2).as_str(), "co.uk");
        assert_eq!(n.suffix(3).as_str(), "example.co.uk");
        assert_eq!(n.suffix(5), n);
        assert_eq!(n.suffix(9), n);
        assert!(n.suffix(0).is_root());
    }

    #[test]
    fn wire_len_matches_encoding_rule() {
        assert_eq!(DomainName::root().wire_len(), 1);
        assert_eq!(DomainName::parse("com").unwrap().wire_len(), 5); // 1+3+1
        assert_eq!(DomainName::parse("example.com").unwrap().wire_len(), 13);
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut names = vec![
            DomainName::parse("b.com").unwrap(),
            DomainName::parse("a.com").unwrap(),
            DomainName::parse("a.net").unwrap(),
        ];
        names.sort();
        let strs: Vec<_> = names.iter().map(|n| n.as_str()).collect();
        assert_eq!(strs, vec!["a.com", "a.net", "b.com"]);
    }

    #[test]
    fn from_labels_round_trip() {
        let n = DomainName::from_labels(["www", "example", "com"]).unwrap();
        assert_eq!(n.as_str(), "www.example.com");
        assert_eq!(DomainName::from_labels(Vec::<&str>::new()).unwrap(), DomainName::root());
    }
}
