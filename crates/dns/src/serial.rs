//! RFC 1982 serial-number arithmetic.
//!
//! TLD SOA serials wrap around a 32-bit space; the paper infers zone-update
//! cadence by watching serial *changes* (§4.1). Comparing serials naively
//! breaks at the wrap point, so this module implements RFC 1982 addition
//! and comparison exactly, including the undefined-comparison corner
//! (distance of exactly 2^31).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Half the 32-bit serial space; distances >= this are "greater than" in
/// the other direction, and a distance of exactly 2^31 is undefined.
const HALF: u32 = 1 << 31;

/// An RFC 1982 serial number with SERIAL_BITS = 32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Serial(pub u32);

impl Serial {
    pub const fn new(v: u32) -> Self {
        Serial(v)
    }

    pub const fn get(self) -> u32 {
        self.0
    }

    /// RFC 1982 addition: adding `n` wraps modulo 2^32. `n` must be at most
    /// 2^31 - 1 for the result to be "greater" than the operand.
    ///
    /// # Panics
    /// Panics if `n >= 2^31` (the RFC leaves such additions undefined).
    pub fn add(self, n: u32) -> Serial {
        assert!(n < HALF, "RFC 1982 addition of {n} is undefined (must be < 2^31)");
        Serial(self.0.wrapping_add(n))
    }

    /// The canonical successor (serial + 1).
    pub fn next(self) -> Serial {
        self.add(1)
    }

    /// RFC 1982 comparison. Returns:
    /// * `Some(Ordering::Less)` if `self` precedes `other`,
    /// * `Some(Ordering::Greater)` if `self` succeeds `other`,
    /// * `Some(Ordering::Equal)` if equal,
    /// * `None` when the distance is exactly 2^31 (undefined by the RFC).
    pub fn compare(self, other: Serial) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering::*;
        if self.0 == other.0 {
            return Some(Equal);
        }
        let diff = other.0.wrapping_sub(self.0);
        if diff == HALF {
            return None;
        }
        if diff < HALF {
            Some(Less)
        } else {
            Some(Greater)
        }
    }

    /// True if `self` is strictly newer than `other` under RFC 1982.
    /// The undefined case compares as *not newer*.
    pub fn is_newer_than(self, other: Serial) -> bool {
        matches!(self.compare(other), Some(std::cmp::Ordering::Greater))
    }

    /// Number of increments from `older` to `self`, assuming `self` was
    /// reached from `older` by forward increments only. Wraps correctly.
    pub fn distance_from(self, older: Serial) -> u32 {
        self.0.wrapping_sub(older.0)
    }
}

impl fmt::Display for Serial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Serial {
    fn from(v: u32) -> Self {
        Serial(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering::*;

    #[test]
    fn simple_ordering() {
        assert_eq!(Serial(1).compare(Serial(2)), Some(Less));
        assert_eq!(Serial(2).compare(Serial(1)), Some(Greater));
        assert_eq!(Serial(7).compare(Serial(7)), Some(Equal));
    }

    #[test]
    fn wraparound_ordering() {
        // Near the wrap point, u32::MAX < 0 < 1 in serial space.
        assert_eq!(Serial(u32::MAX).compare(Serial(0)), Some(Less));
        assert_eq!(Serial(0).compare(Serial(u32::MAX)), Some(Greater));
        assert!(Serial(5).is_newer_than(Serial(u32::MAX - 5)));
    }

    #[test]
    fn undefined_at_half_space() {
        assert_eq!(Serial(0).compare(Serial(HALF)), None);
        assert_eq!(Serial(HALF).compare(Serial(0)), None);
        assert!(!Serial(0).is_newer_than(Serial(HALF)));
        assert!(!Serial(HALF).is_newer_than(Serial(0)));
    }

    #[test]
    fn addition_wraps() {
        assert_eq!(Serial(u32::MAX).add(1), Serial(0));
        assert_eq!(Serial(u32::MAX).next(), Serial(0));
        assert!(Serial(u32::MAX).next().is_newer_than(Serial(u32::MAX)));
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn oversized_addition_panics() {
        Serial(0).add(HALF);
    }

    #[test]
    fn rfc_1982_examples() {
        // From RFC 1982 §5.2 with SERIAL_BITS=8 scaled up: the maximum
        // useful increment is 2^31 - 1.
        let s = Serial(0).add(HALF - 1);
        assert!(s.is_newer_than(Serial(0)));
        assert!(!Serial(0).is_newer_than(s));
    }

    #[test]
    fn distance_tracks_increments() {
        let start = Serial(u32::MAX - 2);
        let mut s = start;
        for _ in 0..10 {
            s = s.next();
        }
        assert_eq!(s.distance_from(start), 10);
    }

    #[test]
    fn monotone_increment_chain_stays_ordered() {
        let mut s = Serial(u32::MAX - 3);
        for _ in 0..8 {
            let n = s.next();
            assert!(n.is_newer_than(s));
            assert!(!s.is_newer_than(n));
            s = n;
        }
    }
}
