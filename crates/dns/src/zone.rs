//! A TLD zone: the registry's live, mutable view.
//!
//! A registry zone at the TLD level is essentially a map from registered
//! domain to its delegation (NS set plus optional glue). Registrations,
//! deletions and nameserver changes mutate the zone and bump the SOA serial
//! — exactly the churn the paper measures through daily CZDS snapshots and
//! proposes to expose through rapid zone updates.

use crate::name::DomainName;
use crate::record::{RData, ResourceRecord, SoaData};
use crate::serial::Serial;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::IpAddr;

/// The delegation data a TLD zone holds for one registered domain.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Delegation {
    /// Nameserver host names, kept sorted and deduplicated so that equality
    /// comparisons (and therefore diffs) are order-insensitive.
    ns: Vec<DomainName>,
    /// In-bailiwick glue addresses, keyed by nameserver host name.
    glue: BTreeMap<DomainName, Vec<IpAddr>>,
}

impl Delegation {
    /// # Panics
    /// Panics if `ns` is empty: a delegation without nameservers cannot
    /// exist in a zone.
    pub fn new(mut ns: Vec<DomainName>) -> Self {
        assert!(!ns.is_empty(), "delegation requires at least one NS");
        ns.sort();
        ns.dedup();
        Delegation { ns, glue: BTreeMap::new() }
    }

    pub fn with_glue(mut self, host: DomainName, addrs: Vec<IpAddr>) -> Self {
        self.glue.insert(host, addrs);
        self
    }

    pub fn ns(&self) -> &[DomainName] {
        &self.ns
    }

    pub fn glue(&self) -> &BTreeMap<DomainName, Vec<IpAddr>> {
        &self.glue
    }

    /// The registrable-domain ("SLD") of the first nameserver — the key the
    /// paper aggregates DNS-hosting providers by (Table 4).
    pub fn primary_ns(&self) -> &DomainName {
        &self.ns[0]
    }
}

/// Outcome of an authoritative lookup in a TLD zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupOutcome<'a> {
    /// The domain is delegated; referral NS set returned.
    Delegated(&'a Delegation),
    /// The name does not exist in the zone (NXDOMAIN) — the removal signal
    /// the paper's direct-to-TLD NS probes rely on.
    NxDomain,
}

/// A mutable TLD zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zone {
    origin: DomainName,
    serial: Serial,
    soa_template: SoaData,
    delegations: BTreeMap<DomainName, Delegation>,
}

impl Zone {
    /// Create an empty zone for `origin` with an initial serial.
    pub fn new(origin: DomainName, initial_serial: Serial) -> Self {
        let soa_template = SoaData {
            mname: origin.child("ns0").unwrap_or_else(|_| origin.clone()),
            rname: origin.child("hostmaster").unwrap_or_else(|_| origin.clone()),
            serial: initial_serial.get(),
            refresh: 1800,
            retry: 900,
            expire: 604_800,
            minimum: 86_400,
        };
        Zone { origin, serial: initial_serial, soa_template, delegations: BTreeMap::new() }
    }

    pub fn origin(&self) -> &DomainName {
        &self.origin
    }

    pub fn serial(&self) -> Serial {
        self.serial
    }

    /// Current SOA record (serial reflects all mutations so far).
    pub fn soa(&self) -> ResourceRecord {
        let mut soa = self.soa_template.clone();
        soa.serial = self.serial.get();
        ResourceRecord::new(self.origin.clone(), 900, RData::Soa(soa))
    }

    pub fn len(&self) -> usize {
        self.delegations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.delegations.is_empty()
    }

    pub fn contains(&self, domain: &DomainName) -> bool {
        self.delegations.contains_key(domain)
    }

    fn assert_in_bailiwick(&self, domain: &DomainName) {
        assert!(
            domain.is_subdomain_of(&self.origin) && domain != &self.origin,
            "{domain} is not a proper subdomain of zone {origin}",
            origin = self.origin
        );
    }

    /// Insert or replace a delegation, bumping the serial. Returns the
    /// previous delegation if one existed.
    ///
    /// # Panics
    /// Panics if `domain` is not a proper subdomain of the zone origin.
    pub fn upsert(&mut self, domain: DomainName, delegation: Delegation) -> Option<Delegation> {
        self.assert_in_bailiwick(&domain);
        let prev = self.delegations.insert(domain, delegation);
        self.serial = self.serial.next();
        prev
    }

    /// Remove a delegation, bumping the serial if it existed.
    pub fn remove(&mut self, domain: &DomainName) -> Option<Delegation> {
        let prev = self.delegations.remove(domain);
        if prev.is_some() {
            self.serial = self.serial.next();
        }
        prev
    }

    /// Authoritative lookup for `domain` (or any name under it).
    pub fn lookup(&self, name: &DomainName) -> LookupOutcome<'_> {
        // Find the delegation covering `name`: walk ancestor-wards from the
        // registrable candidate.
        let mut candidate = Some(name.clone());
        while let Some(c) = candidate {
            if c == self.origin || !c.is_subdomain_of(&self.origin) {
                break;
            }
            if let Some(d) = self.delegations.get(&c) {
                return LookupOutcome::Delegated(d);
            }
            candidate = c.parent();
        }
        LookupOutcome::NxDomain
    }

    pub fn iter(&self) -> impl Iterator<Item = (&DomainName, &Delegation)> {
        self.delegations.iter()
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn ns(host: &str) -> Vec<DomainName> {
        vec![name(host)]
    }

    fn com_zone() -> Zone {
        Zone::new(name("com"), Serial::new(1000))
    }

    #[test]
    fn upsert_and_lookup() {
        let mut z = com_zone();
        z.upsert(name("example.com"), Delegation::new(ns("ns1.cloudflare.com")));
        match z.lookup(&name("example.com")) {
            LookupOutcome::Delegated(d) => assert_eq!(d.ns()[0], name("ns1.cloudflare.com")),
            other => panic!("expected delegation, got {other:?}"),
        }
        assert!(z.contains(&name("example.com")));
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn lookup_covers_subdomains() {
        let mut z = com_zone();
        z.upsert(name("example.com"), Delegation::new(ns("ns1.x.net")));
        assert!(matches!(z.lookup(&name("www.deep.example.com")), LookupOutcome::Delegated(_)));
    }

    #[test]
    fn missing_name_is_nxdomain() {
        let z = com_zone();
        assert_eq!(z.lookup(&name("ghost.com")), LookupOutcome::NxDomain);
        // Out-of-bailiwick names are NXDOMAIN too (we are not a resolver).
        assert_eq!(z.lookup(&name("example.net")), LookupOutcome::NxDomain);
    }

    #[test]
    fn serial_bumps_on_mutation_only() {
        let mut z = com_zone();
        let s0 = z.serial();
        z.upsert(name("a.com"), Delegation::new(ns("ns1.x.net")));
        let s1 = z.serial();
        assert!(s1.is_newer_than(s0));
        // Removing a non-existent name must not bump.
        z.remove(&name("ghost.com"));
        assert_eq!(z.serial(), s1);
        z.remove(&name("a.com"));
        assert!(z.serial().is_newer_than(s1));
        assert!(z.is_empty());
    }

    #[test]
    fn soa_reflects_current_serial() {
        let mut z = com_zone();
        z.upsert(name("a.com"), Delegation::new(ns("ns1.x.net")));
        match &z.soa().rdata {
            RData::Soa(s) => assert_eq!(s.serial, z.serial().get()),
            other => panic!("expected SOA, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not a proper subdomain")]
    fn rejects_out_of_bailiwick_upsert() {
        com_zone().upsert(name("example.net"), Delegation::new(ns("ns1.x.net")));
    }

    #[test]
    #[should_panic(expected = "not a proper subdomain")]
    fn rejects_origin_upsert() {
        com_zone().upsert(name("com"), Delegation::new(ns("ns1.x.net")));
    }

    #[test]
    fn delegation_ns_sorted_dedup() {
        let d = Delegation::new(vec![name("b.net"), name("a.net"), name("b.net")]);
        assert_eq!(d.ns(), &[name("a.net"), name("b.net")]);
        assert_eq!(d.primary_ns(), &name("a.net"));
    }

    #[test]
    #[should_panic(expected = "at least one NS")]
    fn delegation_requires_ns() {
        Delegation::new(Vec::new());
    }

    #[test]
    fn glue_round_trip() {
        let d = Delegation::new(ns("ns1.example.com"))
            .with_glue(name("ns1.example.com"), vec!["192.0.2.53".parse().unwrap()]);
        assert_eq!(d.glue().len(), 1);
    }

    #[test]
    fn upsert_replaces_and_returns_previous() {
        let mut z = com_zone();
        z.upsert(name("a.com"), Delegation::new(ns("ns1.x.net")));
        let prev = z.upsert(name("a.com"), Delegation::new(ns("ns2.y.net")));
        assert_eq!(prev.unwrap().ns()[0], name("ns1.x.net"));
        assert_eq!(z.len(), 1);
    }
}
