//! A TLD zone: the registry's live, mutable view.
//!
//! A registry zone at the TLD level is essentially a map from registered
//! domain to its delegation (NS set plus optional glue). Registrations,
//! deletions and nameserver changes mutate the zone and bump the SOA serial
//! — exactly the churn the paper measures through daily CZDS snapshots and
//! proposes to expose through rapid zone updates.
//!
//! NS sets are held as [`NsSet`] — an immutable, shared `Arc<[DomainName]>`
//! — so that snapshot capture, diffing, journaling and delta application
//! pass them around by reference-count bump instead of deep-cloning
//! per-domain vectors.

use crate::name::DomainName;
use crate::record::{RData, ResourceRecord, SoaData};
use crate::serial::Serial;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::Arc;

/// An immutable, cheaply-clonable set of nameserver host names.
///
/// Cloning bumps a reference count; comparing starts with a pointer check
/// so snapshot entries that share storage (the common case along the
/// capture → diff → apply pipeline) compare in O(1). Equality is by host
/// sequence, matching the previous `Vec<DomainName>` semantics; the
/// canonical sorted/deduplicated form is established by [`NsSet::new`] (or
/// by the caller for [`NsSet::from_sorted`]).
#[derive(Clone)]
pub struct NsSet {
    hosts: Arc<[DomainName]>,
    /// True when `hosts` is known to be strictly sorted and deduplicated —
    /// lets zone reconstruction take the `Delegation::from_sorted` fast
    /// path without rescanning. Ignored by equality/hashing.
    canonical: bool,
}

impl NsSet {
    /// Canonicalise (sort + dedup) and freeze a host list.
    pub fn new(mut hosts: Vec<DomainName>) -> Self {
        hosts.sort_unstable();
        hosts.dedup();
        NsSet { hosts: hosts.into(), canonical: true }
    }

    /// Freeze an already-sorted, already-deduplicated host list without
    /// re-canonicalising — the fast path for snapshot-load and diff-apply,
    /// where the input is canonical by construction.
    pub fn from_sorted(hosts: Vec<DomainName>) -> Self {
        debug_assert!(
            hosts.windows(2).all(|w| w[0] < w[1]),
            "NsSet::from_sorted requires strictly sorted hosts"
        );
        NsSet { hosts: hosts.into(), canonical: true }
    }

    /// Freeze a host list as-is, preserving the given order. Used where
    /// the legacy text formats supply sets whose order is meaningful to
    /// equality (snapshot text round-trips).
    pub fn from_raw(hosts: Vec<DomainName>) -> Self {
        let canonical = hosts.windows(2).all(|w| w[0] < w[1]);
        NsSet { hosts: hosts.into(), canonical }
    }

    /// True when the set is known sorted + deduplicated.
    pub fn is_canonical(&self) -> bool {
        self.canonical
    }

    pub fn as_slice(&self) -> &[DomainName] {
        &self.hosts
    }

    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, DomainName> {
        self.hosts.iter()
    }

    /// True when both sets share the same storage (O(1) equality witness).
    pub fn ptr_eq(&self, other: &NsSet) -> bool {
        Arc::ptr_eq(&self.hosts, &other.hosts)
    }
}

impl std::ops::Deref for NsSet {
    type Target = [DomainName];

    fn deref(&self) -> &[DomainName] {
        &self.hosts
    }
}

impl PartialEq for NsSet {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || self.hosts == other.hosts
    }
}

impl Eq for NsSet {}

impl std::hash::Hash for NsSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.hosts.hash(state);
    }
}

impl PartialEq<Vec<DomainName>> for NsSet {
    fn eq(&self, other: &Vec<DomainName>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[DomainName]> for NsSet {
    fn eq(&self, other: &[DomainName]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[DomainName; N]> for NsSet {
    fn eq(&self, other: &[DomainName; N]) -> bool {
        self.as_slice() == other
    }
}

impl std::fmt::Debug for NsSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.hosts.iter()).finish()
    }
}

impl From<Vec<DomainName>> for NsSet {
    fn from(hosts: Vec<DomainName>) -> Self {
        NsSet::from_raw(hosts)
    }
}

impl FromIterator<DomainName> for NsSet {
    fn from_iter<I: IntoIterator<Item = DomainName>>(iter: I) -> Self {
        NsSet::from_raw(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a NsSet {
    type Item = &'a DomainName;
    type IntoIter = std::slice::Iter<'a, DomainName>;

    fn into_iter(self) -> Self::IntoIter {
        self.hosts.iter()
    }
}

impl serde::Serialize for NsSet {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(self.hosts.iter().map(serde::Serialize::to_value).collect())
    }
}

impl serde::Deserialize for NsSet {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Vec::<DomainName>::from_value(v).map(NsSet::from_raw)
    }
}

/// The delegation data a TLD zone holds for one registered domain.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Delegation {
    /// Nameserver host names, kept sorted and deduplicated so that equality
    /// comparisons (and therefore diffs) are order-insensitive.
    ns: NsSet,
    /// In-bailiwick glue addresses, keyed by nameserver host name.
    glue: BTreeMap<DomainName, Vec<IpAddr>>,
}

impl Delegation {
    /// # Panics
    /// Panics if `ns` is empty: a delegation without nameservers cannot
    /// exist in a zone.
    pub fn new(ns: Vec<DomainName>) -> Self {
        assert!(!ns.is_empty(), "delegation requires at least one NS");
        Delegation { ns: NsSet::new(ns), glue: BTreeMap::new() }
    }

    /// Unchecked-fast constructor for NS sets that are canonical (sorted,
    /// deduplicated, non-empty) by construction — the snapshot-load and
    /// diff-apply paths, which would otherwise pay a redundant sort+dedup
    /// per delegation.
    pub fn from_sorted(ns: NsSet) -> Self {
        debug_assert!(!ns.is_empty(), "delegation requires at least one NS");
        debug_assert!(
            ns.windows(2).all(|w| w[0] < w[1]),
            "Delegation::from_sorted requires canonical NS order"
        );
        Delegation { ns, glue: BTreeMap::new() }
    }

    pub fn with_glue(mut self, host: DomainName, addrs: Vec<IpAddr>) -> Self {
        self.glue.insert(host, addrs);
        self
    }

    pub fn ns(&self) -> &[DomainName] {
        &self.ns
    }

    /// The shared NS set — clone this (a refcount bump) to carry the set
    /// into snapshots, journals and deltas without copying.
    pub fn ns_set(&self) -> &NsSet {
        &self.ns
    }

    pub fn glue(&self) -> &BTreeMap<DomainName, Vec<IpAddr>> {
        &self.glue
    }

    /// The registrable-domain ("SLD") of the first nameserver — the key the
    /// paper aggregates DNS-hosting providers by (Table 4).
    pub fn primary_ns(&self) -> &DomainName {
        &self.ns[0]
    }
}

/// Outcome of an authoritative lookup in a TLD zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupOutcome<'a> {
    /// The domain is delegated; referral NS set returned.
    Delegated(&'a Delegation),
    /// The name does not exist in the zone (NXDOMAIN) — the removal signal
    /// the paper's direct-to-TLD NS probes rely on.
    NxDomain,
}

/// A mutable TLD zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zone {
    origin: DomainName,
    serial: Serial,
    soa_template: SoaData,
    delegations: BTreeMap<DomainName, Delegation>,
}

impl Zone {
    /// Create an empty zone for `origin` with an initial serial.
    pub fn new(origin: DomainName, initial_serial: Serial) -> Self {
        let soa_template = SoaData {
            mname: origin.child("ns0").unwrap_or(origin),
            rname: origin.child("hostmaster").unwrap_or(origin),
            serial: initial_serial.get(),
            refresh: 1800,
            retry: 900,
            expire: 604_800,
            minimum: 86_400,
        };
        Zone { origin, serial: initial_serial, soa_template, delegations: BTreeMap::new() }
    }

    pub fn origin(&self) -> &DomainName {
        &self.origin
    }

    pub fn serial(&self) -> Serial {
        self.serial
    }

    /// Current SOA record (serial reflects all mutations so far).
    pub fn soa(&self) -> ResourceRecord {
        let mut soa = self.soa_template.clone();
        soa.serial = self.serial.get();
        ResourceRecord::new(self.origin, 900, RData::Soa(soa))
    }

    pub fn len(&self) -> usize {
        self.delegations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.delegations.is_empty()
    }

    pub fn contains(&self, domain: &DomainName) -> bool {
        self.delegations.contains_key(domain)
    }

    fn assert_in_bailiwick(&self, domain: &DomainName) {
        assert!(
            domain.is_subdomain_of(&self.origin) && domain != &self.origin,
            "{domain} is not a proper subdomain of zone {origin}",
            origin = self.origin
        );
    }

    /// Rebuild a live zone from a snapshot — the RZU-subscriber bootstrap
    /// ("download the latest CZDS snapshot, then follow the feed"). NS
    /// sets are shared with the snapshot; canonical sets take the
    /// [`Delegation::from_sorted`] fast path and skip re-sorting.
    ///
    /// # Panics
    /// Panics if any snapshot entry violates the zone invariants that
    /// [`Zone::upsert`] / [`Delegation::new`] enforce: an owner that is
    /// not a proper subdomain of the origin, or an empty NS set.
    pub fn from_snapshot(snapshot: &crate::snapshot::ZoneSnapshot) -> Zone {
        let mut zone = Zone::new(*snapshot.origin(), snapshot.serial());
        for (domain, ns) in snapshot.iter() {
            zone.assert_in_bailiwick(&domain);
            assert!(!ns.is_empty(), "delegation for {domain} requires at least one NS");
            let delegation = if ns.is_canonical() {
                Delegation::from_sorted(ns.clone())
            } else {
                Delegation::new(ns.to_vec())
            };
            zone.delegations.insert(domain, delegation);
        }
        zone
    }

    /// Insert or replace a delegation, bumping the serial. Returns the
    /// previous delegation if one existed.
    ///
    /// # Panics
    /// Panics if `domain` is not a proper subdomain of the zone origin.
    pub fn upsert(&mut self, domain: DomainName, delegation: Delegation) -> Option<Delegation> {
        self.assert_in_bailiwick(&domain);
        let prev = self.delegations.insert(domain, delegation);
        self.serial = self.serial.next();
        prev
    }

    /// Remove a delegation, bumping the serial if it existed.
    pub fn remove(&mut self, domain: &DomainName) -> Option<Delegation> {
        let prev = self.delegations.remove(domain);
        if prev.is_some() {
            self.serial = self.serial.next();
        }
        prev
    }

    /// Authoritative lookup for `domain` (or any name under it).
    pub fn lookup(&self, name: &DomainName) -> LookupOutcome<'_> {
        // Find the delegation covering `name`: walk ancestor-wards from the
        // registrable candidate.
        let mut candidate = Some(*name);
        while let Some(c) = candidate {
            if c == self.origin || !c.is_subdomain_of(&self.origin) {
                break;
            }
            if let Some(d) = self.delegations.get(&c) {
                return LookupOutcome::Delegated(d);
            }
            candidate = c.parent();
        }
        LookupOutcome::NxDomain
    }

    pub fn iter(&self) -> impl Iterator<Item = (&DomainName, &Delegation)> {
        self.delegations.iter()
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn ns(host: &str) -> Vec<DomainName> {
        vec![name(host)]
    }

    fn com_zone() -> Zone {
        Zone::new(name("com"), Serial::new(1000))
    }

    #[test]
    fn upsert_and_lookup() {
        let mut z = com_zone();
        z.upsert(name("example.com"), Delegation::new(ns("ns1.cloudflare.com")));
        match z.lookup(&name("example.com")) {
            LookupOutcome::Delegated(d) => assert_eq!(d.ns()[0], name("ns1.cloudflare.com")),
            other => panic!("expected delegation, got {other:?}"),
        }
        assert!(z.contains(&name("example.com")));
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn lookup_covers_subdomains() {
        let mut z = com_zone();
        z.upsert(name("example.com"), Delegation::new(ns("ns1.x.net")));
        assert!(matches!(z.lookup(&name("www.deep.example.com")), LookupOutcome::Delegated(_)));
    }

    #[test]
    fn missing_name_is_nxdomain() {
        let z = com_zone();
        assert_eq!(z.lookup(&name("ghost.com")), LookupOutcome::NxDomain);
        // Out-of-bailiwick names are NXDOMAIN too (we are not a resolver).
        assert_eq!(z.lookup(&name("example.net")), LookupOutcome::NxDomain);
    }

    #[test]
    fn serial_bumps_on_mutation_only() {
        let mut z = com_zone();
        let s0 = z.serial();
        z.upsert(name("a.com"), Delegation::new(ns("ns1.x.net")));
        let s1 = z.serial();
        assert!(s1.is_newer_than(s0));
        // Removing a non-existent name must not bump.
        z.remove(&name("ghost.com"));
        assert_eq!(z.serial(), s1);
        z.remove(&name("a.com"));
        assert!(z.serial().is_newer_than(s1));
        assert!(z.is_empty());
    }

    #[test]
    fn soa_reflects_current_serial() {
        let mut z = com_zone();
        z.upsert(name("a.com"), Delegation::new(ns("ns1.x.net")));
        match &z.soa().rdata {
            RData::Soa(s) => assert_eq!(s.serial, z.serial().get()),
            other => panic!("expected SOA, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not a proper subdomain")]
    fn rejects_out_of_bailiwick_upsert() {
        com_zone().upsert(name("example.net"), Delegation::new(ns("ns1.x.net")));
    }

    #[test]
    #[should_panic(expected = "not a proper subdomain")]
    fn rejects_origin_upsert() {
        com_zone().upsert(name("com"), Delegation::new(ns("ns1.x.net")));
    }

    #[test]
    fn delegation_ns_sorted_dedup() {
        let d = Delegation::new(vec![name("b.net"), name("a.net"), name("b.net")]);
        assert_eq!(d.ns(), &[name("a.net"), name("b.net")]);
        assert_eq!(d.primary_ns(), &name("a.net"));
    }

    #[test]
    #[should_panic(expected = "at least one NS")]
    fn delegation_requires_ns() {
        Delegation::new(Vec::new());
    }

    #[test]
    fn delegation_from_sorted_skips_canonicalisation() {
        let canonical = NsSet::from_sorted(vec![name("a.net"), name("b.net")]);
        let d = Delegation::from_sorted(canonical.clone());
        assert_eq!(d.ns(), canonical.as_slice());
        // The set is shared, not copied.
        assert!(d.ns_set().ptr_eq(&canonical));
    }

    #[test]
    fn ns_set_sharing_and_equality() {
        let a = NsSet::new(vec![name("b.net"), name("a.net")]);
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        let c = NsSet::new(vec![name("a.net"), name("b.net")]);
        assert!(!a.ptr_eq(&c));
        assert_eq!(a, c);
    }

    #[test]
    fn glue_round_trip() {
        let d = Delegation::new(ns("ns1.example.com"))
            .with_glue(name("ns1.example.com"), vec!["192.0.2.53".parse().unwrap()]);
        assert_eq!(d.glue().len(), 1);
    }

    #[test]
    fn from_snapshot_round_trips_without_resorting() {
        use crate::snapshot::ZoneSnapshot;
        use darkdns_sim::SimTime;
        let mut z = com_zone();
        z.upsert(name("a.com"), Delegation::new(vec![name("ns2.x.net"), name("ns1.x.net")]));
        z.upsert(name("b.com"), Delegation::new(ns("ns9.y.net")));
        let snap = ZoneSnapshot::capture(&z, SimTime::ZERO);
        let rebuilt = Zone::from_snapshot(&snap);
        assert_eq!(rebuilt.serial(), z.serial());
        assert_eq!(rebuilt.len(), 2);
        match rebuilt.lookup(&name("a.com")) {
            LookupOutcome::Delegated(d) => {
                assert_eq!(d.ns(), &[name("ns1.x.net"), name("ns2.x.net")]);
                // The NS set is shared with the snapshot (and the source
                // zone), not copied or re-sorted.
                assert!(d.ns_set().ptr_eq(snap.ns_set_of(&name("a.com")).unwrap()));
            }
            other => panic!("expected delegation, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not a proper subdomain")]
    fn from_snapshot_rejects_out_of_bailiwick_entries() {
        use crate::snapshot::ZoneSnapshot;
        use darkdns_sim::SimTime;
        // from_entries takes entries as given, so a malformed snapshot can
        // exist; reconstructing a live zone from it must uphold the zone
        // invariants.
        let snap = ZoneSnapshot::from_entries(
            name("com"),
            Serial::new(1),
            SimTime::ZERO,
            vec![(name("x.net"), vec![name("ns1.x.net")])],
        );
        Zone::from_snapshot(&snap);
    }

    #[test]
    #[should_panic(expected = "at least one NS")]
    fn from_snapshot_rejects_empty_ns_sets() {
        use crate::snapshot::ZoneSnapshot;
        use darkdns_sim::SimTime;
        let snap = ZoneSnapshot::from_entries(
            name("com"),
            Serial::new(1),
            SimTime::ZERO,
            vec![(name("a.com"), Vec::new())],
        );
        Zone::from_snapshot(&snap);
    }

    #[test]
    fn upsert_replaces_and_returns_previous() {
        let mut z = com_zone();
        z.upsert(name("a.com"), Delegation::new(ns("ns1.x.net")));
        let prev = z.upsert(name("a.com"), Delegation::new(ns("ns2.y.net")));
        assert_eq!(prev.unwrap().ns()[0], name("ns1.x.net"));
        assert_eq!(z.len(), 1);
    }
}
