//! Fast non-cryptographic hashing for name-keyed containers.
//!
//! [`DomainName`](crate::DomainName) keys are fixed 23-byte values (or a
//! 4-byte interner id), so the default SipHash's DoS resistance buys
//! nothing on internal simulation state while costing most of the hash
//! time on the diff engines' hot paths. [`FxHasher`] is the
//! multiply-rotate hash used by rustc (firefox's "Fx" hash), which
//! measures several times faster on short fixed-size keys.
//!
//! Use [`NameMap`] / [`NameSet`] for containers keyed by `DomainName` (or
//! any other short key) on hot paths.

use std::hash::{BuildHasherDefault, Hasher};

/// The rustc/firefox Fx hash: one multiply-rotate step per 8-byte word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // The multiply-rotate core leaves its entropy in the high bits;
        // hashbrown (and the diff partitioner) index with the low bits, so
        // fold the halves together before handing the hash out.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A fast `HashMap` for short fixed-size keys (domain names, ids).
pub type NameMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A fast `HashSet` for short fixed-size keys.
pub type NameSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomainName;

    #[test]
    fn name_map_round_trips() {
        let mut map: NameMap<DomainName, u32> = NameMap::default();
        let a = DomainName::parse("example.com").unwrap();
        let b = DomainName::parse("a-much-longer-interned-name.example.com").unwrap();
        map.insert(a, 1);
        map.insert(b, 2);
        assert_eq!(map.get(&DomainName::parse("example.com").unwrap()), Some(&1));
        assert_eq!(
            map.get(&DomainName::parse("a-much-longer-interned-name.example.com").unwrap()),
            Some(&2)
        );
    }

    #[test]
    fn hasher_distinguishes_values() {
        use std::hash::{BuildHasher, Hash};
        let build = FxBuildHasher::default();
        let hash = |s: &str| {
            let mut h = build.build_hasher();
            DomainName::parse(s).unwrap().hash(&mut h);
            h.finish()
        };
        assert_ne!(hash("a.com"), hash("b.com"));
        assert_eq!(hash("a.com"), hash("A.com"));
    }
}
