//! Immutable zone snapshots — the CZDS artifact.
//!
//! A [`ZoneSnapshot`] is a point-in-time copy of a zone's delegations,
//! ordered by owner name, with the serial and capture time attached. The
//! CZDS publisher in `darkdns-registry` produces one per zone per day; the
//! diff engines in [`crate::diff`] consume pairs of them; and the pipeline
//! tests membership against the latest available snapshot set.
//!
//! # Layout
//!
//! Entries are stored columnar: one sorted column of `Copy`
//! [`DomainName`]s and one parallel column of shared [`NsSet`]s, both
//! behind a single `Arc`. Capturing a snapshot from a [`Zone`] copies 23
//! bytes per owner name and bumps one refcount per NS set — no per-entry
//! heap allocation — and the diff engines walk the columns without
//! touching the allocator at all.
//!
//! Snapshots also round-trip through a zone-file-like text format so the
//! repository can materialise CZDS-style files on disk for the examples.

use crate::name::DomainName;
use crate::serial::Serial;
use crate::zone::{NsSet, Zone};
use darkdns_sim::time::SimTime;
use std::fmt;
use std::sync::Arc;

/// Errors from parsing snapshot text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotParseError {
    /// Missing or malformed `; origin:` / `; serial:` / `; taken:` header.
    BadHeader(String),
    /// A record line did not have the expected 5 fields.
    BadLine(String),
    /// A name failed validation.
    BadName(String),
    /// Record type other than NS in the body.
    UnexpectedType(String),
}

impl fmt::Display for SnapshotParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotParseError::BadHeader(l) => write!(f, "bad header line: {l}"),
            SnapshotParseError::BadLine(l) => write!(f, "bad record line: {l}"),
            SnapshotParseError::BadName(e) => write!(f, "bad name: {e}"),
            SnapshotParseError::UnexpectedType(t) => write!(f, "unexpected record type: {t}"),
        }
    }
}

impl std::error::Error for SnapshotParseError {}

/// The shared columnar entry store: `domains[i]`'s NS set is `ns[i]`.
#[derive(Debug, PartialEq)]
struct Columns {
    /// Sorted by name.
    domains: Vec<DomainName>,
    ns: Vec<NsSet>,
}

/// A point-in-time, immutable view of a TLD zone's delegations.
///
/// Entries are stored sorted by owner name; membership queries are binary
/// searches and the sorted order is what the merge diff engine exploits.
/// The columns are behind an `Arc` so snapshots can be shared between the
/// publisher, the pipeline and the diff engines without copying
/// million-entry tables.
#[derive(Debug, Clone)]
pub struct ZoneSnapshot {
    origin: DomainName,
    serial: Serial,
    taken_at: SimTime,
    cols: Arc<Columns>,
}

impl ZoneSnapshot {
    /// Capture the current state of `zone` at time `taken_at`.
    pub fn capture(zone: &Zone, taken_at: SimTime) -> Self {
        let mut domains = Vec::with_capacity(zone.len());
        let mut ns = Vec::with_capacity(zone.len());
        // BTreeMap iteration is already sorted by owner name; NS sets are
        // shared with the live zone, not copied.
        for (d, delegation) in zone.iter() {
            domains.push(*d);
            ns.push(delegation.ns_set().clone());
        }
        debug_assert!(domains.windows(2).all(|w| w[0] < w[1]));
        ZoneSnapshot {
            origin: *zone.origin(),
            serial: zone.serial(),
            taken_at,
            cols: Arc::new(Columns { domains, ns }),
        }
    }

    /// Build from parts. Entries are sorted and deduplicated by domain
    /// (last occurrence wins); NS sets are taken as given.
    pub fn from_entries(
        origin: DomainName,
        serial: Serial,
        taken_at: SimTime,
        mut entries: Vec<(DomainName, Vec<DomainName>)>,
    ) -> Self {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                // `dedup_by` removes `later` when true; keep the later value
                // by moving it into the retained (earlier) slot.
                earlier.1 = std::mem::take(&mut later.1);
                true
            } else {
                false
            }
        });
        let mut domains = Vec::with_capacity(entries.len());
        let mut ns = Vec::with_capacity(entries.len());
        for (d, hosts) in entries {
            domains.push(d);
            ns.push(NsSet::from_raw(hosts));
        }
        ZoneSnapshot { origin, serial, taken_at, cols: Arc::new(Columns { domains, ns }) }
    }

    /// Assemble from already-sorted columns — the fast path for
    /// [`crate::diff::ZoneDelta::apply`], which produces entries in order.
    pub(crate) fn from_sorted_columns(
        origin: DomainName,
        serial: Serial,
        taken_at: SimTime,
        domains: Vec<DomainName>,
        ns: Vec<NsSet>,
    ) -> Self {
        debug_assert_eq!(domains.len(), ns.len());
        debug_assert!(domains.windows(2).all(|w| w[0] < w[1]));
        ZoneSnapshot { origin, serial, taken_at, cols: Arc::new(Columns { domains, ns }) }
    }

    pub fn origin(&self) -> &DomainName {
        &self.origin
    }

    pub fn serial(&self) -> Serial {
        self.serial
    }

    pub fn taken_at(&self) -> SimTime {
        self.taken_at
    }

    pub fn len(&self) -> usize {
        self.cols.domains.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cols.domains.is_empty()
    }

    pub fn contains(&self, domain: &DomainName) -> bool {
        self.cols.domains.binary_search(domain).is_ok()
    }

    /// NS set for `domain`, if present.
    pub fn ns_of(&self, domain: &DomainName) -> Option<&[DomainName]> {
        self.cols.domains.binary_search(domain).ok().map(|i| self.cols.ns[i].as_slice())
    }

    /// Shared NS set for `domain`, if present (clone to carry it onward
    /// without copying hosts).
    pub fn ns_set_of(&self, domain: &DomainName) -> Option<&NsSet> {
        self.cols.domains.binary_search(domain).ok().map(|i| &self.cols.ns[i])
    }

    /// The sorted owner-name column.
    pub fn domain_column(&self) -> &[DomainName] {
        &self.cols.domains
    }

    /// The NS column, parallel to [`ZoneSnapshot::domain_column`].
    pub fn ns_column(&self) -> &[NsSet] {
        &self.cols.ns
    }

    /// Iterate entries in owner-name order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (DomainName, &NsSet)> + '_ {
        self.cols.domains.iter().copied().zip(self.cols.ns.iter())
    }

    pub fn domains(&self) -> impl Iterator<Item = &DomainName> {
        self.cols.domains.iter()
    }

    /// Serialise to the CZDS-like text format:
    ///
    /// ```text
    /// ; origin: com
    /// ; serial: 12345
    /// ; taken: 86400
    /// example.com. 86400 IN NS ns1.cloudflare.com.
    /// ```
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 + self.len() * 48);
        let _ = writeln!(out, "; origin: {}", self.origin);
        let _ = writeln!(out, "; serial: {}", self.serial);
        let _ = writeln!(out, "; taken: {}", self.taken_at.as_secs());
        for (domain, ns_set) in self.iter() {
            for ns in ns_set {
                let _ = writeln!(out, "{domain}. 86400 IN NS {ns}.");
            }
        }
        out
    }

    /// Parse the text format produced by [`ZoneSnapshot::to_text`].
    pub fn parse_text(text: &str) -> Result<Self, SnapshotParseError> {
        let mut origin: Option<DomainName> = None;
        let mut serial: Option<Serial> = None;
        let mut taken: Option<SimTime> = None;
        let mut by_domain: Vec<(DomainName, Vec<DomainName>)> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix(';') {
                let rest = rest.trim();
                if let Some(v) = rest.strip_prefix("origin:") {
                    origin = Some(
                        DomainName::parse(v.trim())
                            .map_err(|e| SnapshotParseError::BadName(e.to_string()))?,
                    );
                } else if let Some(v) = rest.strip_prefix("serial:") {
                    let n: u32 = v
                        .trim()
                        .parse()
                        .map_err(|_| SnapshotParseError::BadHeader(line.to_owned()))?;
                    serial = Some(Serial::new(n));
                } else if let Some(v) = rest.strip_prefix("taken:") {
                    let n: u64 = v
                        .trim()
                        .parse()
                        .map_err(|_| SnapshotParseError::BadHeader(line.to_owned()))?;
                    taken = Some(SimTime::from_secs(n));
                }
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 5 {
                return Err(SnapshotParseError::BadLine(line.to_owned()));
            }
            if !fields[3].eq_ignore_ascii_case("NS") {
                return Err(SnapshotParseError::UnexpectedType(fields[3].to_owned()));
            }
            let domain = DomainName::parse(fields[0])
                .map_err(|e| SnapshotParseError::BadName(e.to_string()))?;
            let ns = DomainName::parse(fields[4])
                .map_err(|e| SnapshotParseError::BadName(e.to_string()))?;
            match by_domain.last_mut() {
                Some((d, set)) if *d == domain => set.push(ns),
                _ => by_domain.push((domain, vec![ns])),
            }
        }
        let origin = origin.ok_or_else(|| SnapshotParseError::BadHeader("missing origin".into()))?;
        let serial = serial.ok_or_else(|| SnapshotParseError::BadHeader("missing serial".into()))?;
        let taken = taken.ok_or_else(|| SnapshotParseError::BadHeader("missing taken".into()))?;
        // Sort NS sets for canonical equality.
        for (_, set) in by_domain.iter_mut() {
            set.sort_unstable();
            set.dedup();
        }
        Ok(ZoneSnapshot::from_entries(origin, serial, taken, by_domain))
    }
}

impl PartialEq for ZoneSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.origin == other.origin
            && self.serial == other.serial
            && self.taken_at == other.taken_at
            && (Arc::ptr_eq(&self.cols, &other.cols) || self.cols == other.cols)
    }
}
impl Eq for ZoneSnapshot {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Delegation;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn sample_zone() -> Zone {
        let mut z = Zone::new(name("com"), Serial::new(100));
        z.upsert(name("bravo.com"), Delegation::new(vec![name("ns1.x.net"), name("ns2.x.net")]));
        z.upsert(name("alpha.com"), Delegation::new(vec![name("ns1.cloudflare.com")]));
        z
    }

    #[test]
    fn capture_is_sorted_and_immutable() {
        let z = sample_zone();
        let snap = ZoneSnapshot::capture(&z, SimTime::from_days(1));
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.domain_column()[0], name("alpha.com"));
        assert!(snap.contains(&name("bravo.com")));
        assert!(!snap.contains(&name("charlie.com")));
        assert_eq!(snap.ns_of(&name("alpha.com")).unwrap(), &[name("ns1.cloudflare.com")]);
        assert_eq!(snap.ns_of(&name("missing.com")), None);
    }

    #[test]
    fn capture_shares_ns_sets_with_zone() {
        let z = sample_zone();
        let snap = ZoneSnapshot::capture(&z, SimTime::ZERO);
        let zone_set = match z.lookup(&name("bravo.com")) {
            crate::zone::LookupOutcome::Delegated(d) => d.ns_set().clone(),
            other => panic!("expected delegation, got {other:?}"),
        };
        assert!(snap.ns_set_of(&name("bravo.com")).unwrap().ptr_eq(&zone_set));
    }

    #[test]
    fn capture_reflects_zone_serial_and_time() {
        let z = sample_zone();
        let snap = ZoneSnapshot::capture(&z, SimTime::from_days(2));
        assert_eq!(snap.serial(), z.serial());
        assert_eq!(snap.taken_at(), SimTime::from_days(2));
        assert_eq!(snap.origin(), &name("com"));
    }

    #[test]
    fn text_round_trip() {
        let z = sample_zone();
        let snap = ZoneSnapshot::capture(&z, SimTime::from_days(1));
        let text = snap.to_text();
        let parsed = ZoneSnapshot::parse_text(&text).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn text_format_contents() {
        let z = sample_zone();
        let text = ZoneSnapshot::capture(&z, SimTime::from_days(1)).to_text();
        assert!(text.contains("; origin: com"));
        assert!(text.contains("alpha.com. 86400 IN NS ns1.cloudflare.com."));
        // Multi-NS domains produce one line per NS.
        assert_eq!(text.matches("bravo.com.").count(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            ZoneSnapshot::parse_text("; origin: com\n; serial: 1\n; taken: 0\nnot a record\n"),
            Err(SnapshotParseError::BadLine(_))
        ));
        assert!(matches!(
            ZoneSnapshot::parse_text("; serial: 1\n; taken: 0\n"),
            Err(SnapshotParseError::BadHeader(_))
        ));
        assert!(matches!(
            ZoneSnapshot::parse_text(
                "; origin: com\n; serial: 1\n; taken: 0\na.com. 86400 IN A 1.2.3.4\n"
            ),
            Err(SnapshotParseError::UnexpectedType(_))
        ));
    }

    #[test]
    fn from_entries_sorts_and_dedups_last_wins() {
        let snap = ZoneSnapshot::from_entries(
            name("com"),
            Serial::new(1),
            SimTime::ZERO,
            vec![
                (name("b.com"), vec![name("ns.old.net")]),
                (name("a.com"), vec![name("ns.a.net")]),
                (name("b.com"), vec![name("ns.new.net")]),
            ],
        );
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.ns_of(&name("b.com")).unwrap(), &[name("ns.new.net")]);
    }

    #[test]
    fn empty_snapshot() {
        let snap = ZoneSnapshot::from_entries(name("com"), Serial::new(1), SimTime::ZERO, vec![]);
        assert!(snap.is_empty());
        let rt = ZoneSnapshot::parse_text(&snap.to_text()).unwrap();
        assert_eq!(rt, snap);
    }

    #[test]
    fn domains_iterator() {
        let z = sample_zone();
        let snap = ZoneSnapshot::capture(&z, SimTime::ZERO);
        let names: Vec<_> = snap.domains().map(|d| d.as_str().to_owned()).collect();
        assert_eq!(names, vec!["alpha.com", "bravo.com"]);
    }

    #[test]
    fn snapshots_share_entries_cheaply() {
        let z = sample_zone();
        let snap = ZoneSnapshot::capture(&z, SimTime::ZERO);
        let clone = snap.clone();
        assert!(Arc::ptr_eq(&snap.cols, &clone.cols));
    }
}
