//! A minimal order-preserving scoped-thread map — the one parallel
//! primitive this workspace needs, shared by the hash-partitioned diff
//! engine and the broker's publish pool / fleet stream builder instead
//! of three hand-rolled scope/spawn/join copies.
//!
//! Semantics: `scoped_map(items, workers, f)` returns exactly
//! `items.map(f)` in input order. Items are distributed round-robin
//! over at most `workers` lanes (round-robin balances skewed item costs
//! better than contiguous chunking — zone shards and diff partitions
//! are both skewed), each lane runs on one scoped thread, and a
//! panicking worker propagates the panic to the caller. With one
//! worker (or one item) no thread is spawned.

/// Order-preserving parallel map over scoped threads.
///
/// # Panics
/// Propagates a panic from `f`.
pub fn scoped_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.min(items.len()).max(1);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let total = items.len();
    let mut lanes: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        lanes[i % workers].push((i, item));
    }
    let mut out: Vec<Option<R>> = (0..total).map(|_| None).collect();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = lanes
            .into_iter()
            .map(|lane| {
                scope.spawn(move || {
                    lane.into_iter().map(|(i, item)| (i, f(item))).collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("scoped_map worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter().map(|r| r.expect("every index mapped")).collect()
}

/// Worker count matching the machine: one per available core.
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_for_any_worker_count() {
        let items: Vec<u32> = (0..37).collect();
        for workers in [1, 2, 3, 8, 64] {
            let out = scoped_map(items.clone(), workers, |x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
        assert_eq!(scoped_map(Vec::<u32>::new(), 4, |x| x), Vec::<u32>::new());
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            scoped_map(vec![1, 2, 3], 2, |x| {
                assert_ne!(x, 2, "boom");
                x
            })
        });
        assert!(caught.is_err());
    }
}
