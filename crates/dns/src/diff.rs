//! Zone diff engines.
//!
//! The operational heart of both CZDS-based research (diff yesterday's
//! snapshot against today's) and the Rapid Zone Update service the paper
//! advocates (stream fine-grained deltas). Three engines with different
//! cost profiles are provided and raced in `darkdns-bench`:
//!
//! * [`SortedMergeDiff`] — two-pointer merge over the sorted snapshots;
//!   `O(n + m)` with no allocation proportional to the table size. The
//!   right default when diffing whole snapshots.
//! * [`HashPartitionedDiff`] — hashes entries into `p` partitions and diffs
//!   partition-local hash maps. Does more work in total but each partition
//!   is independent, modelling the sharded diff pipelines registry
//!   operators use; it also wins when inputs arrive unsorted.
//! * [`ZoneJournal`] — an incremental journal that observes zone mutations
//!   as they happen and answers `delta_between(serial_a, serial_b)` without
//!   touching the snapshots at all: `O(k)` in the number of mutations.
//!   This is the data structure behind the RZU feed.
//!
//! All engines produce the same canonical [`ZoneDelta`] (entries sorted by
//! owner name), a property pinned by unit tests here and by cross-engine
//! proptests in the crate's test suite.

use crate::name::DomainName;
use crate::serial::Serial;
use crate::snapshot::ZoneSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A change to a single delegation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NsChange {
    pub domain: DomainName,
    pub old_ns: Vec<DomainName>,
    pub new_ns: Vec<DomainName>,
}

/// The canonical difference between two zone states.
///
/// Invariants: `added`, `removed` and `changed` are each sorted by domain,
/// contain no duplicates, and are pairwise disjoint.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ZoneDelta {
    pub added: Vec<(DomainName, Vec<DomainName>)>,
    pub removed: Vec<(DomainName, Vec<DomainName>)>,
    pub changed: Vec<NsChange>,
}

impl ZoneDelta {
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }

    /// Total number of affected domains.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len() + self.changed.len()
    }

    /// Domains that are new in the target state — the "newly registered
    /// domains per zone diff" population of Table 1's `Zone NRD` column.
    pub fn added_domains(&self) -> impl Iterator<Item = &DomainName> {
        self.added.iter().map(|(d, _)| d)
    }

    pub fn removed_domains(&self) -> impl Iterator<Item = &DomainName> {
        self.removed.iter().map(|(d, _)| d)
    }

    /// Apply this delta to `base`, producing the target snapshot (with the
    /// given serial/time metadata). Used by the RZU subscriber to maintain
    /// a live zone copy, and by tests to verify `apply(diff(a,b), a) == b`.
    ///
    /// # Panics
    /// Panics if the delta does not match `base` (removing or changing a
    /// domain that is absent, adding one that is present) — applying a
    /// delta to the wrong base is always a caller bug.
    pub fn apply(&self, base: &ZoneSnapshot, new_serial: Serial, taken_at: darkdns_sim::SimTime) -> ZoneSnapshot {
        let mut entries: Vec<(DomainName, Vec<DomainName>)> = base.entries().to_vec();
        let mut by_domain: HashMap<DomainName, usize> =
            entries.iter().enumerate().map(|(i, (d, _))| (d.clone(), i)).collect();
        let mut tombstones: Vec<bool> = vec![false; entries.len()];
        for (d, _) in &self.removed {
            let idx = *by_domain.get(d).unwrap_or_else(|| panic!("removing absent domain {d}"));
            assert!(!tombstones[idx], "double removal of {d}");
            tombstones[idx] = true;
        }
        for c in &self.changed {
            let idx = *by_domain
                .get(&c.domain)
                .unwrap_or_else(|| panic!("changing absent domain {}", c.domain));
            assert!(!tombstones[idx], "changing removed domain {}", c.domain);
            assert_eq!(entries[idx].1, c.old_ns, "old NS mismatch for {}", c.domain);
            entries[idx].1 = c.new_ns.clone();
        }
        for (d, ns) in &self.added {
            assert!(
                !by_domain.contains_key(d) || tombstones[by_domain[d]],
                "adding already-present domain {d}"
            );
            by_domain.insert(d.clone(), entries.len());
            entries.push((d.clone(), ns.clone()));
            tombstones.push(false);
        }
        let final_entries: Vec<(DomainName, Vec<DomainName>)> = entries
            .into_iter()
            .zip(tombstones)
            .filter_map(|(e, dead)| (!dead).then_some(e))
            .collect();
        ZoneSnapshot::from_entries(base.origin().clone(), new_serial, taken_at, final_entries)
    }

    fn canonicalise(&mut self) {
        self.added.sort_by(|a, b| a.0.cmp(&b.0));
        self.removed.sort_by(|a, b| a.0.cmp(&b.0));
        self.changed.sort_by(|a, b| a.domain.cmp(&b.domain));
    }
}

/// A zone diff algorithm.
pub trait ZoneDiffEngine {
    /// Compute the canonical delta transforming `old` into `new`.
    fn diff(&self, old: &ZoneSnapshot, new: &ZoneSnapshot) -> ZoneDelta;

    /// Human-readable engine name for bench reports.
    fn name(&self) -> &'static str;
}

/// Two-pointer merge over the sorted snapshot entries.
#[derive(Debug, Clone, Copy, Default)]
pub struct SortedMergeDiff;

impl ZoneDiffEngine for SortedMergeDiff {
    fn diff(&self, old: &ZoneSnapshot, new: &ZoneSnapshot) -> ZoneDelta {
        let mut delta = ZoneDelta::default();
        let (a, b) = (old.entries(), new.entries());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    delta.removed.push(a[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    delta.added.push(b[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if a[i].1 != b[j].1 {
                        delta.changed.push(NsChange {
                            domain: a[i].0.clone(),
                            old_ns: a[i].1.clone(),
                            new_ns: b[j].1.clone(),
                        });
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        delta.removed.extend_from_slice(&a[i..]);
        delta.added.extend_from_slice(&b[j..]);
        // Already in sorted order by construction.
        delta
    }

    fn name(&self) -> &'static str {
        "sorted-merge"
    }
}

/// Hash-partitioned diff: entries are distributed into `partitions` buckets
/// by a stable hash of the owner name, and each bucket is diffed with a
/// local hash map.
#[derive(Debug, Clone, Copy)]
pub struct HashPartitionedDiff {
    partitions: usize,
}

impl HashPartitionedDiff {
    /// # Panics
    /// Panics if `partitions == 0`.
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        HashPartitionedDiff { partitions }
    }

    fn partition_of(&self, d: &DomainName) -> usize {
        // FNV-1a over the name bytes; stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in d.as_str().as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.partitions as u64) as usize
    }
}

impl Default for HashPartitionedDiff {
    fn default() -> Self {
        HashPartitionedDiff::new(16)
    }
}

impl ZoneDiffEngine for HashPartitionedDiff {
    fn diff(&self, old: &ZoneSnapshot, new: &ZoneSnapshot) -> ZoneDelta {
        let p = self.partitions;
        let mut old_parts: Vec<HashMap<&DomainName, &Vec<DomainName>>> = vec![HashMap::new(); p];
        for (d, ns) in old.entries() {
            old_parts[self.partition_of(d)].insert(d, ns);
        }
        let mut delta = ZoneDelta::default();
        let mut new_parts: Vec<Vec<(&DomainName, &Vec<DomainName>)>> = vec![Vec::new(); p];
        for (d, ns) in new.entries() {
            new_parts[self.partition_of(d)].push((d, ns));
        }
        for (part_idx, part) in new_parts.iter().enumerate() {
            for (d, ns) in part {
                match old_parts[part_idx].remove(*d) {
                    None => delta.added.push(((*d).clone(), (*ns).clone())),
                    Some(old_ns) if old_ns != *ns => delta.changed.push(NsChange {
                        domain: (*d).clone(),
                        old_ns: old_ns.clone(),
                        new_ns: (*ns).clone(),
                    }),
                    Some(_) => {}
                }
            }
        }
        for part in old_parts {
            for (d, ns) in part {
                delta.removed.push((d.clone(), ns.clone()));
            }
        }
        delta.canonicalise();
        delta
    }

    fn name(&self) -> &'static str {
        "hash-partitioned"
    }
}

/// A single journaled zone mutation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalEvent {
    /// Domain entered the zone with the given NS set.
    Added { domain: DomainName, ns: Vec<DomainName> },
    /// Domain left the zone; previous NS set retained for delta synthesis.
    Removed { domain: DomainName, prev_ns: Vec<DomainName> },
    /// NS set replaced.
    NsChanged { domain: DomainName, prev_ns: Vec<DomainName>, ns: Vec<DomainName> },
}

impl JournalEvent {
    pub fn domain(&self) -> &DomainName {
        match self {
            JournalEvent::Added { domain, .. }
            | JournalEvent::Removed { domain, .. }
            | JournalEvent::NsChanged { domain, .. } => domain,
        }
    }
}

/// Incremental diff journal: records every zone mutation tagged with the
/// serial it produced, and synthesises the net [`ZoneDelta`] between any
/// two recorded serials in time linear in the number of interposed events.
///
/// This is the engine behind the Rapid Zone Update feed: a subscriber at
/// serial `s` asks for `delta_between(s, head)` and receives exactly the
/// compacted changes — a domain added and removed within the window
/// cancels out, which is precisely the transient-domain blind spot of
/// coarse snapshots.
#[derive(Debug, Clone, Default)]
pub struct ZoneJournal {
    /// (serial after the event, event), in append order.
    events: Vec<(Serial, JournalEvent)>,
}

impl ZoneJournal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a mutation that advanced the zone to `serial`.
    ///
    /// # Panics
    /// Panics if `serial` is not newer than the last recorded serial.
    pub fn record(&mut self, serial: Serial, event: JournalEvent) {
        if let Some((last, _)) = self.events.last() {
            assert!(serial.is_newer_than(*last), "journal serials must increase");
        }
        self.events.push((serial, event));
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serial of the newest recorded event.
    pub fn head(&self) -> Option<Serial> {
        self.events.last().map(|(s, _)| *s)
    }

    /// Raw events with serials in `(after, upto]`, in order. This is the
    /// uncompacted RZU stream — transient domains are visible here.
    pub fn events_between(&self, after: Serial, upto: Serial) -> &[(Serial, JournalEvent)] {
        let start = self.events.partition_point(|(s, _)| !s.is_newer_than(after));
        let end = self.events.partition_point(|(s, _)| !s.is_newer_than(upto));
        &self.events[start..end]
    }

    /// The net, compacted delta over serials in `(after, upto]`.
    pub fn delta_between(&self, after: Serial, upto: Serial) -> ZoneDelta {
        // For each touched domain track (state before window, state after
        // window): None = absent.
        #[derive(Clone)]
        struct Track {
            before: Option<Vec<DomainName>>,
            after: Option<Vec<DomainName>>,
        }
        let mut tracks: HashMap<DomainName, Track> = HashMap::new();
        for (_, ev) in self.events_between(after, upto) {
            let (before_state, after_state): (Option<Vec<DomainName>>, Option<Vec<DomainName>>) =
                match ev {
                    JournalEvent::Added { ns, .. } => (None, Some(ns.clone())),
                    JournalEvent::Removed { prev_ns, .. } => (Some(prev_ns.clone()), None),
                    JournalEvent::NsChanged { prev_ns, ns, .. } => {
                        (Some(prev_ns.clone()), Some(ns.clone()))
                    }
                };
            tracks
                .entry(ev.domain().clone())
                .and_modify(|t| t.after = after_state.clone())
                .or_insert(Track { before: before_state, after: after_state });
        }
        let mut delta = ZoneDelta::default();
        for (domain, t) in tracks {
            match (t.before, t.after) {
                (None, Some(ns)) => delta.added.push((domain, ns)),
                (Some(ns), None) => delta.removed.push((domain, ns)),
                (Some(old), Some(new)) if old != new => {
                    delta.changed.push(NsChange { domain, old_ns: old, new_ns: new })
                }
                // Added-then-removed (transient!) or unchanged round trip.
                _ => {}
            }
        }
        delta.canonicalise();
        delta
    }

    /// Drop events at or before `upto` (e.g. after all subscribers passed
    /// that serial), bounding journal memory.
    pub fn truncate_through(&mut self, upto: Serial) {
        let keep_from = self.events.partition_point(|(s, _)| !s.is_newer_than(upto));
        self.events.drain(..keep_from);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkdns_sim::SimTime;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn snap(serial: u32, entries: &[(&str, &[&str])]) -> ZoneSnapshot {
        ZoneSnapshot::from_entries(
            name("com"),
            Serial::new(serial),
            SimTime::ZERO,
            entries
                .iter()
                .map(|(d, ns)| (name(d), ns.iter().map(|n| name(n)).collect()))
                .collect(),
        )
    }

    fn engines() -> Vec<Box<dyn ZoneDiffEngine>> {
        vec![
            Box::new(SortedMergeDiff),
            Box::new(HashPartitionedDiff::new(1)),
            Box::new(HashPartitionedDiff::new(7)),
        ]
    }

    #[test]
    fn all_engines_agree_on_mixed_delta() {
        let old = snap(1, &[("a.com", &["ns1.x.net"]), ("b.com", &["ns1.x.net"]), ("c.com", &["ns1.x.net"])]);
        let new = snap(2, &[("b.com", &["ns2.y.net"]), ("c.com", &["ns1.x.net"]), ("d.com", &["ns1.x.net"])]);
        let expected_added = vec![(name("d.com"), vec![name("ns1.x.net")])];
        let expected_removed = vec![(name("a.com"), vec![name("ns1.x.net")])];
        for engine in engines() {
            let delta = engine.diff(&old, &new);
            assert_eq!(delta.added, expected_added, "engine {}", engine.name());
            assert_eq!(delta.removed, expected_removed, "engine {}", engine.name());
            assert_eq!(delta.changed.len(), 1, "engine {}", engine.name());
            assert_eq!(delta.changed[0].domain, name("b.com"));
            assert_eq!(delta.len(), 3);
        }
    }

    #[test]
    fn identical_snapshots_give_empty_delta() {
        let s = snap(1, &[("a.com", &["ns1.x.net"])]);
        for engine in engines() {
            assert!(engine.diff(&s, &s).is_empty(), "engine {}", engine.name());
        }
    }

    #[test]
    fn empty_to_full_and_back() {
        let empty = snap(1, &[]);
        let full = snap(2, &[("a.com", &["ns1.x.net"]), ("b.com", &["ns2.x.net"])]);
        for engine in engines() {
            let grow = engine.diff(&empty, &full);
            assert_eq!(grow.added.len(), 2);
            assert!(grow.removed.is_empty());
            let shrink = engine.diff(&full, &empty);
            assert_eq!(shrink.removed.len(), 2);
            assert!(shrink.added.is_empty());
        }
    }

    #[test]
    fn apply_round_trips() {
        let old = snap(1, &[("a.com", &["ns1.x.net"]), ("b.com", &["ns1.x.net"])]);
        let new = snap(2, &[("b.com", &["ns9.z.net"]), ("c.com", &["ns1.x.net"])]);
        let delta = SortedMergeDiff.diff(&old, &new);
        let rebuilt = delta.apply(&old, Serial::new(2), SimTime::ZERO);
        assert_eq!(rebuilt, new);
    }

    #[test]
    #[should_panic(expected = "removing absent domain")]
    fn apply_to_wrong_base_panics() {
        let old = snap(1, &[("a.com", &["ns1.x.net"])]);
        let new = snap(2, &[]);
        let delta = SortedMergeDiff.diff(&old, &new);
        let unrelated = snap(5, &[("z.com", &["ns1.x.net"])]);
        delta.apply(&unrelated, Serial::new(6), SimTime::ZERO);
    }

    #[test]
    fn ns_set_order_does_not_create_phantom_changes() {
        // from_entries does not reorder NS sets, so build them sorted vs
        // unsorted deliberately through the snapshot text path.
        let a = snap(1, &[("a.com", &["ns1.x.net", "ns2.x.net"])]);
        let b = snap(2, &[("a.com", &["ns1.x.net", "ns2.x.net"])]);
        assert!(SortedMergeDiff.diff(&a, &b).is_empty());
    }

    #[test]
    fn journal_net_delta_compacts() {
        let mut j = ZoneJournal::new();
        j.record(Serial::new(1), JournalEvent::Added { domain: name("a.com"), ns: vec![name("ns1.x.net")] });
        j.record(Serial::new(2), JournalEvent::Added { domain: name("t.com"), ns: vec![name("ns1.x.net")] });
        j.record(
            Serial::new(3),
            JournalEvent::NsChanged {
                domain: name("a.com"),
                prev_ns: vec![name("ns1.x.net")],
                ns: vec![name("ns2.y.net")],
            },
        );
        j.record(
            Serial::new(4),
            JournalEvent::Removed { domain: name("t.com"), prev_ns: vec![name("ns1.x.net")] },
        );
        let delta = j.delta_between(Serial::new(0), Serial::new(4));
        // t.com was added and removed inside the window: invisible.
        assert_eq!(delta.added.len(), 1);
        assert_eq!(delta.added[0].0, name("a.com"));
        assert_eq!(delta.added[0].1, vec![name("ns2.y.net")]); // net NS state
        assert!(delta.removed.is_empty());
        assert!(delta.changed.is_empty());
    }

    #[test]
    fn journal_raw_events_expose_transients() {
        let mut j = ZoneJournal::new();
        j.record(Serial::new(1), JournalEvent::Added { domain: name("t.com"), ns: vec![name("ns1.x.net")] });
        j.record(
            Serial::new(2),
            JournalEvent::Removed { domain: name("t.com"), prev_ns: vec![name("ns1.x.net")] },
        );
        // Net delta hides the transient...
        assert!(j.delta_between(Serial::new(0), Serial::new(2)).is_empty());
        // ...but the raw stream (what an RZU subscriber sees) does not.
        assert_eq!(j.events_between(Serial::new(0), Serial::new(2)).len(), 2);
    }

    #[test]
    fn journal_window_boundaries_are_half_open() {
        let mut j = ZoneJournal::new();
        j.record(Serial::new(5), JournalEvent::Added { domain: name("a.com"), ns: vec![name("n.x.net")] });
        j.record(Serial::new(6), JournalEvent::Added { domain: name("b.com"), ns: vec![name("n.x.net")] });
        // (5, 6]: only the second event.
        let d = j.delta_between(Serial::new(5), Serial::new(6));
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].0, name("b.com"));
    }

    #[test]
    fn journal_change_then_revert_is_invisible() {
        let mut j = ZoneJournal::new();
        j.record(
            Serial::new(1),
            JournalEvent::NsChanged {
                domain: name("a.com"),
                prev_ns: vec![name("ns1.x.net")],
                ns: vec![name("evil.x.net")],
            },
        );
        j.record(
            Serial::new(2),
            JournalEvent::NsChanged {
                domain: name("a.com"),
                prev_ns: vec![name("evil.x.net")],
                ns: vec![name("ns1.x.net")],
            },
        );
        // The paper's §5/Appendix B scenario: a phisher flips NS and flips
        // it back between snapshots. Net delta: nothing happened.
        assert!(j.delta_between(Serial::new(0), Serial::new(2)).is_empty());
        assert_eq!(j.events_between(Serial::new(0), Serial::new(2)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "journal serials must increase")]
    fn journal_rejects_non_monotonic_serials() {
        let mut j = ZoneJournal::new();
        j.record(Serial::new(2), JournalEvent::Added { domain: name("a.com"), ns: vec![name("n.x.net")] });
        j.record(Serial::new(2), JournalEvent::Added { domain: name("b.com"), ns: vec![name("n.x.net")] });
    }

    #[test]
    fn journal_truncation() {
        let mut j = ZoneJournal::new();
        for i in 1..=10u32 {
            j.record(
                Serial::new(i),
                JournalEvent::Added { domain: name(&format!("d{i}.com")), ns: vec![name("n.x.net")] },
            );
        }
        j.truncate_through(Serial::new(7));
        assert_eq!(j.len(), 3);
        assert_eq!(j.head(), Some(Serial::new(10)));
        assert_eq!(j.delta_between(Serial::new(7), Serial::new(10)).added.len(), 3);
    }

    #[test]
    fn journal_agrees_with_snapshot_diff() {
        // Build a zone, mutate it while journaling, and check the journal
        // delta equals the snapshot diff.
        use crate::zone::{Delegation, Zone};
        let mut zone = Zone::new(name("com"), Serial::new(0));
        let mut journal = ZoneJournal::new();
        let before = ZoneSnapshot::capture(&zone, SimTime::ZERO);
        let s_before = zone.serial();

        zone.upsert(name("a.com"), Delegation::new(vec![name("ns1.x.net")]));
        journal.record(zone.serial(), JournalEvent::Added { domain: name("a.com"), ns: vec![name("ns1.x.net")] });
        zone.upsert(name("b.com"), Delegation::new(vec![name("ns1.x.net")]));
        journal.record(zone.serial(), JournalEvent::Added { domain: name("b.com"), ns: vec![name("ns1.x.net")] });
        zone.remove(&name("a.com"));
        journal.record(zone.serial(), JournalEvent::Removed { domain: name("a.com"), prev_ns: vec![name("ns1.x.net")] });

        let after = ZoneSnapshot::capture(&zone, SimTime::from_secs(60));
        let from_journal = journal.delta_between(s_before, zone.serial());
        let from_snapshots = SortedMergeDiff.diff(&before, &after);
        assert_eq!(from_journal, from_snapshots);
    }
}
