//! Zone diff engines.
//!
//! The operational heart of both CZDS-based research (diff yesterday's
//! snapshot against today's) and the Rapid Zone Update service the paper
//! advocates (stream fine-grained deltas). Three engines with different
//! cost profiles are provided and raced in `darkdns-bench`:
//!
//! * [`SortedMergeDiff`] — two-pointer merge over the sorted snapshot
//!   columns; `O(n + m)` comparisons and **zero** per-entry allocation:
//!   owner names are 23-byte `Copy` values and NS sets transfer into the
//!   delta as `Arc` refcount bumps. The right default when diffing whole
//!   snapshots.
//! * [`HashPartitionedDiff`] — hashes entries into `p` partitions and
//!   diffs partition-local hash maps **in parallel with scoped threads**,
//!   modelling the sharded diff pipelines registry operators use; it also
//!   wins when inputs arrive unsorted.
//! * [`ZoneJournal`] — an incremental journal that observes zone mutations
//!   as they happen and answers `delta_between(serial_a, serial_b)` without
//!   touching the snapshots at all: `O(k)` in the number of mutations.
//!   This is the data structure behind the RZU feed.
//!
//! All engines produce the same canonical [`ZoneDelta`] (entries sorted by
//! owner name), a property pinned by unit tests here and by cross-engine
//! proptests in the crate's test suite.
//!
//! # Cost profile (500k-delegation snapshots, ~3% churn, release build)
//!
//! Measured by `scripts/bench.sh` on the B1 workload, single-core
//! container; "seed" is the pre-interning `String`-name implementation
//! this module replaced (raw numbers in `BENCH_pr1.json`):
//!
//! | engine               | seed     | interned + zero-copy | speedup |
//! |----------------------|----------|----------------------|---------|
//! | sorted-merge         | 19.4 ms  | 6.9 ms               | 2.8×    |
//! | hash-partitioned     | 556 ms   | 105 ms               | 5.3×    |
//! | incremental-journal  | 7.2 ms   | 3.9 ms               | 1.9×    |
//!
//! The sorted-merge engine's remaining cost is the owner-name comparisons
//! themselves; the journal's is hash-map bookkeeping proportional to the
//! churn, independent of table size — which is the computational argument
//! for RZU-style feeds. The hash-partitioned engine additionally fans its
//! partitions out over scoped threads, so its gap to sorted-merge narrows
//! further on multi-core hosts (the container above has one core).

use crate::hash::{FxHasher, NameMap};
use crate::name::DomainName;
use crate::serial::Serial;
use crate::snapshot::ZoneSnapshot;
use crate::zone::NsSet;
use serde::{Deserialize, Serialize};

/// A change to a single delegation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NsChange {
    pub domain: DomainName,
    pub old_ns: NsSet,
    pub new_ns: NsSet,
}

/// The canonical difference between two zone states.
///
/// Invariants: `added`, `removed` and `changed` are each sorted by domain,
/// contain no duplicates, and are pairwise disjoint. NS sets are shared
/// (`Arc`) with the snapshots they came from — a delta holds refcounts,
/// not copies, of the per-domain host lists.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ZoneDelta {
    pub added: Vec<(DomainName, NsSet)>,
    pub removed: Vec<(DomainName, NsSet)>,
    pub changed: Vec<NsChange>,
}

impl ZoneDelta {
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }

    /// Total number of affected domains.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len() + self.changed.len()
    }

    /// Domains that are new in the target state — the "newly registered
    /// domains per zone diff" population of Table 1's `Zone NRD` column.
    pub fn added_domains(&self) -> impl Iterator<Item = &DomainName> {
        self.added.iter().map(|(d, _)| d)
    }

    pub fn removed_domains(&self) -> impl Iterator<Item = &DomainName> {
        self.removed.iter().map(|(d, _)| d)
    }

    /// Apply this delta to `base`, producing the target snapshot (with the
    /// given serial/time metadata). Used by the RZU subscriber to maintain
    /// a live zone copy, and by tests to verify `apply(diff(a,b), a) == b`.
    ///
    /// A sorted two-pointer merge over the base columns and the (sorted)
    /// delta sections: `O(n + k)` with no intermediate map and no NS-set
    /// copies — untouched entries transfer as `Copy` names plus `Arc`
    /// bumps.
    ///
    /// # Panics
    /// Panics if the delta does not match `base` (removing or changing a
    /// domain that is absent, adding one that is present) — applying a
    /// delta to the wrong base is always a caller bug — or if the delta
    /// violates its canonical sorted-by-domain invariant (possible for
    /// hand-built or deserialized deltas; every engine upholds it).
    pub fn apply(
        &self,
        base: &ZoneSnapshot,
        new_serial: Serial,
        taken_at: darkdns_sim::SimTime,
    ) -> ZoneSnapshot {
        // The merge below relies on the canonical invariant; verify it up
        // front (O(k), trivial next to the merge) so a non-canonical delta
        // fails loudly instead of silently producing an unsorted snapshot.
        assert!(
            self.added.windows(2).all(|w| w[0].0 < w[1].0)
                && self.removed.windows(2).all(|w| w[0].0 < w[1].0)
                && self.changed.windows(2).all(|w| w[0].domain < w[1].domain),
            "ZoneDelta::apply requires canonical (sorted, duplicate-free) delta sections"
        );
        let n = base.len();
        let capacity = (n + self.added.len()).saturating_sub(self.removed.len());
        let mut domains: Vec<DomainName> = Vec::with_capacity(capacity);
        let mut ns: Vec<NsSet> = Vec::with_capacity(capacity);
        let mut add = self.added.iter().peekable();
        let mut rem = self.removed.iter().peekable();
        let mut chg = self.changed.iter().peekable();
        for (d, base_ns) in base.iter() {
            // Additions strictly before the next base entry slot in here.
            while let Some((ad, ans)) = add.peek() {
                if *ad < d {
                    domains.push(*ad);
                    ns.push((*ans).clone());
                    add.next();
                } else {
                    break;
                }
            }
            // A removal or change naming a domain the base skipped over is
            // a delta/base mismatch.
            if let Some((rd, _)) = rem.peek() {
                assert!(*rd >= d, "removing absent domain {rd}");
            }
            if let Some(c) = chg.peek() {
                assert!(c.domain >= d, "changing absent domain {}", c.domain);
            }
            let removed_here = matches!(rem.peek(), Some((rd, _)) if *rd == d);
            if removed_here {
                rem.next();
                if let Some(c) = chg.peek() {
                    assert!(c.domain != d, "changing removed domain {d}");
                }
                // A (non-canonical) delta may re-add a just-removed domain.
                if let Some((ad, ans)) = add.peek() {
                    if *ad == d {
                        domains.push(d);
                        ns.push((*ans).clone());
                        add.next();
                    }
                }
                continue;
            }
            if let Some((ad, _)) = add.peek() {
                assert!(*ad != d, "adding already-present domain {ad}");
            }
            if let Some(c) = chg.peek() {
                if c.domain == d {
                    assert_eq!(
                        base_ns.as_slice(),
                        c.old_ns.as_slice(),
                        "old NS mismatch for {d}"
                    );
                    domains.push(d);
                    ns.push(c.new_ns.clone());
                    chg.next();
                    continue;
                }
            }
            domains.push(d);
            ns.push(base_ns.clone());
        }
        for (ad, ans) in add {
            domains.push(*ad);
            ns.push(ans.clone());
        }
        if let Some((rd, _)) = rem.peek() {
            panic!("removing absent domain {rd}");
        }
        if let Some(c) = chg.peek() {
            panic!("changing absent domain {}", c.domain);
        }
        ZoneSnapshot::from_sorted_columns(*base.origin(), new_serial, taken_at, domains, ns)
    }

    fn canonicalise(&mut self) {
        self.added.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        self.removed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        self.changed.sort_unstable_by(|a, b| a.domain.cmp(&b.domain));
    }

    /// Merge partition-local deltas (disjoint domain sets) into one.
    fn merge(parts: Vec<ZoneDelta>) -> ZoneDelta {
        let mut out = ZoneDelta::default();
        for mut part in parts {
            out.added.append(&mut part.added);
            out.removed.append(&mut part.removed);
            out.changed.append(&mut part.changed);
        }
        out.canonicalise();
        out
    }
}

/// A zone diff algorithm.
pub trait ZoneDiffEngine {
    /// Compute the canonical delta transforming `old` into `new`.
    fn diff(&self, old: &ZoneSnapshot, new: &ZoneSnapshot) -> ZoneDelta;

    /// Human-readable engine name for bench reports.
    fn name(&self) -> &'static str;
}

/// Two-pointer merge over the sorted snapshot columns.
#[derive(Debug, Clone, Copy, Default)]
pub struct SortedMergeDiff;

impl ZoneDiffEngine for SortedMergeDiff {
    fn diff(&self, old: &ZoneSnapshot, new: &ZoneSnapshot) -> ZoneDelta {
        let mut delta = ZoneDelta::default();
        let (ad, an) = (old.domain_column(), old.ns_column());
        let (bd, bn) = (new.domain_column(), new.ns_column());
        let (mut i, mut j) = (0usize, 0usize);
        while i < ad.len() && j < bd.len() {
            match ad[i].cmp(&bd[j]) {
                std::cmp::Ordering::Less => {
                    delta.removed.push((ad[i], an[i].clone()));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    delta.added.push((bd[j], bn[j].clone()));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if an[i] != bn[j] {
                        delta.changed.push(NsChange {
                            domain: ad[i],
                            old_ns: an[i].clone(),
                            new_ns: bn[j].clone(),
                        });
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        for k in i..ad.len() {
            delta.removed.push((ad[k], an[k].clone()));
        }
        for k in j..bd.len() {
            delta.added.push((bd[k], bn[k].clone()));
        }
        // Already in sorted order by construction.
        delta
    }

    fn name(&self) -> &'static str {
        "sorted-merge"
    }
}

/// Hash-partitioned diff: entries are distributed into `partitions` buckets
/// by a stable hash of the owner name, and the buckets are diffed with
/// partition-local hash maps on scoped worker threads.
#[derive(Debug, Clone, Copy)]
pub struct HashPartitionedDiff {
    partitions: usize,
}

impl HashPartitionedDiff {
    /// # Panics
    /// Panics if `partitions == 0`.
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        HashPartitionedDiff { partitions }
    }

    fn partition_of(&self, d: &DomainName) -> usize {
        // Fx hash over the fixed-size name representation: O(1) per entry
        // with no string resolution. Deterministic within a process run
        // (interner ids are assigned in parse order); the canonicalised
        // output delta is independent of the partition assignment anyway.
        use std::hash::{Hash, Hasher};
        let mut h = FxHasher::default();
        d.hash(&mut h);
        (h.finish() % self.partitions as u64) as usize
    }

    /// Diff one partition's entry indices with a local map.
    fn diff_partition(
        old: &ZoneSnapshot,
        new: &ZoneSnapshot,
        old_idx: &[u32],
        new_idx: &[u32],
    ) -> ZoneDelta {
        let (ad, an) = (old.domain_column(), old.ns_column());
        let (bd, bn) = (new.domain_column(), new.ns_column());
        // DomainName keys hash in O(1) (fixed 23 bytes / interner id).
        let mut old_map: NameMap<DomainName, u32> =
            NameMap::with_capacity_and_hasher(old_idx.len(), Default::default());
        for &i in old_idx {
            old_map.insert(ad[i as usize], i);
        }
        let mut delta = ZoneDelta::default();
        for &j in new_idx {
            let (d, new_ns) = (bd[j as usize], &bn[j as usize]);
            match old_map.remove(&d) {
                None => delta.added.push((d, new_ns.clone())),
                Some(i) => {
                    let old_ns = &an[i as usize];
                    if old_ns != new_ns {
                        delta.changed.push(NsChange {
                            domain: d,
                            old_ns: old_ns.clone(),
                            new_ns: new_ns.clone(),
                        });
                    }
                }
            }
        }
        for (d, i) in old_map {
            delta.removed.push((d, an[i as usize].clone()));
        }
        delta
    }
}

impl Default for HashPartitionedDiff {
    fn default() -> Self {
        HashPartitionedDiff::new(16)
    }
}

impl ZoneDiffEngine for HashPartitionedDiff {
    fn diff(&self, old: &ZoneSnapshot, new: &ZoneSnapshot) -> ZoneDelta {
        let p = self.partitions;
        let mut old_parts: Vec<Vec<u32>> = vec![Vec::new(); p];
        for (i, d) in old.domain_column().iter().enumerate() {
            old_parts[self.partition_of(d)].push(i as u32);
        }
        let mut new_parts: Vec<Vec<u32>> = vec![Vec::new(); p];
        for (j, d) in new.domain_column().iter().enumerate() {
            new_parts[self.partition_of(d)].push(j as u32);
        }
        // Scoped worker threads (`par::scoped_map`): each partition is a
        // partition-local delta over a disjoint domain set, merged after.
        let pairs: Vec<(Vec<u32>, Vec<u32>)> = old_parts.into_iter().zip(new_parts).collect();
        let workers = crate::par::available_workers().min(p);
        let parts = crate::par::scoped_map(pairs, workers, |(o, n)| {
            Self::diff_partition(old, new, &o, &n)
        });
        ZoneDelta::merge(parts)
    }

    fn name(&self) -> &'static str {
        "hash-partitioned"
    }
}

/// A single journaled zone mutation. NS sets are shared, not copied: a
/// journal entry costs one 23-byte name plus `Arc` refcounts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalEvent {
    /// Domain entered the zone with the given NS set.
    Added { domain: DomainName, ns: NsSet },
    /// Domain left the zone; previous NS set retained for delta synthesis.
    Removed { domain: DomainName, prev_ns: NsSet },
    /// NS set replaced.
    NsChanged { domain: DomainName, prev_ns: NsSet, ns: NsSet },
}

impl JournalEvent {
    pub fn domain(&self) -> &DomainName {
        match self {
            JournalEvent::Added { domain, .. }
            | JournalEvent::Removed { domain, .. }
            | JournalEvent::NsChanged { domain, .. } => domain,
        }
    }
}

/// Incremental diff journal: records every zone mutation tagged with the
/// serial it produced, and synthesises the net [`ZoneDelta`] between any
/// two recorded serials in time linear in the number of interposed events.
///
/// This is the engine behind the Rapid Zone Update feed: a subscriber at
/// serial `s` asks for `delta_between(s, head)` and receives exactly the
/// compacted changes — a domain added and removed within the window
/// cancels out, which is precisely the transient-domain blind spot of
/// coarse snapshots.
#[derive(Debug, Clone, Default)]
pub struct ZoneJournal {
    /// (serial after the event, event), in append order.
    events: Vec<(Serial, JournalEvent)>,
}

impl ZoneJournal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a mutation that advanced the zone to `serial`.
    ///
    /// # Panics
    /// Panics if `serial` is not newer than the last recorded serial.
    pub fn record(&mut self, serial: Serial, event: JournalEvent) {
        if let Some((last, _)) = self.events.last() {
            assert!(serial.is_newer_than(*last), "journal serials must increase");
        }
        self.events.push((serial, event));
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serial of the newest recorded event.
    pub fn head(&self) -> Option<Serial> {
        self.events.last().map(|(s, _)| *s)
    }

    /// Raw events with serials in `(after, upto]`, in order. This is the
    /// uncompacted RZU stream — transient domains are visible here.
    pub fn events_between(&self, after: Serial, upto: Serial) -> &[(Serial, JournalEvent)] {
        let start = self.events.partition_point(|(s, _)| !s.is_newer_than(after));
        let end = self.events.partition_point(|(s, _)| !s.is_newer_than(upto));
        &self.events[start..end]
    }

    /// The net, compacted delta over serials in `(after, upto]`.
    ///
    /// NS sets flow from the recorded events into the delta as `Arc`
    /// clones; the only allocation proportional to the window is the
    /// per-touched-domain tracking map.
    pub fn delta_between(&self, after: Serial, upto: Serial) -> ZoneDelta {
        // For each touched domain track (state before window, state after
        // window): None = absent.
        struct Track {
            before: Option<NsSet>,
            after: Option<NsSet>,
        }
        let window = self.events_between(after, upto);
        let mut tracks: NameMap<DomainName, Track> =
            NameMap::with_capacity_and_hasher(window.len(), Default::default());
        for (_, ev) in window {
            let (before_state, after_state): (Option<&NsSet>, Option<&NsSet>) = match ev {
                JournalEvent::Added { ns, .. } => (None, Some(ns)),
                JournalEvent::Removed { prev_ns, .. } => (Some(prev_ns), None),
                JournalEvent::NsChanged { prev_ns, ns, .. } => (Some(prev_ns), Some(ns)),
            };
            tracks
                .entry(*ev.domain())
                .and_modify(|t| t.after = after_state.cloned())
                .or_insert(Track { before: before_state.cloned(), after: after_state.cloned() });
        }
        let mut delta = ZoneDelta::default();
        for (domain, t) in tracks {
            match (t.before, t.after) {
                (None, Some(ns)) => delta.added.push((domain, ns)),
                (Some(ns), None) => delta.removed.push((domain, ns)),
                (Some(old), Some(new)) if old != new => {
                    delta.changed.push(NsChange { domain, old_ns: old, new_ns: new })
                }
                // Added-then-removed (transient!) or unchanged round trip.
                _ => {}
            }
        }
        delta.canonicalise();
        delta
    }

    /// Drop events at or before `upto` (e.g. after all subscribers passed
    /// that serial), bounding journal memory.
    pub fn truncate_through(&mut self, upto: Serial) {
        let keep_from = self.events.partition_point(|(s, _)| !s.is_newer_than(upto));
        self.events.drain(..keep_from);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkdns_sim::SimTime;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn nsset(hosts: &[&str]) -> NsSet {
        NsSet::new(hosts.iter().map(|h| name(h)).collect())
    }

    fn snap(serial: u32, entries: &[(&str, &[&str])]) -> ZoneSnapshot {
        ZoneSnapshot::from_entries(
            name("com"),
            Serial::new(serial),
            SimTime::ZERO,
            entries
                .iter()
                .map(|(d, ns)| (name(d), ns.iter().map(|n| name(n)).collect()))
                .collect(),
        )
    }

    fn engines() -> Vec<Box<dyn ZoneDiffEngine>> {
        vec![
            Box::new(SortedMergeDiff),
            Box::new(HashPartitionedDiff::new(1)),
            Box::new(HashPartitionedDiff::new(7)),
        ]
    }

    #[test]
    fn all_engines_agree_on_mixed_delta() {
        let old = snap(1, &[("a.com", &["ns1.x.net"]), ("b.com", &["ns1.x.net"]), ("c.com", &["ns1.x.net"])]);
        let new = snap(2, &[("b.com", &["ns2.y.net"]), ("c.com", &["ns1.x.net"]), ("d.com", &["ns1.x.net"])]);
        let expected_added = vec![(name("d.com"), nsset(&["ns1.x.net"]))];
        let expected_removed = vec![(name("a.com"), nsset(&["ns1.x.net"]))];
        for engine in engines() {
            let delta = engine.diff(&old, &new);
            assert_eq!(delta.added, expected_added, "engine {}", engine.name());
            assert_eq!(delta.removed, expected_removed, "engine {}", engine.name());
            assert_eq!(delta.changed.len(), 1, "engine {}", engine.name());
            assert_eq!(delta.changed[0].domain, name("b.com"));
            assert_eq!(delta.len(), 3);
        }
    }

    #[test]
    fn identical_snapshots_give_empty_delta() {
        let s = snap(1, &[("a.com", &["ns1.x.net"])]);
        for engine in engines() {
            assert!(engine.diff(&s, &s).is_empty(), "engine {}", engine.name());
        }
    }

    #[test]
    fn empty_to_full_and_back() {
        let empty = snap(1, &[]);
        let full = snap(2, &[("a.com", &["ns1.x.net"]), ("b.com", &["ns2.x.net"])]);
        for engine in engines() {
            let grow = engine.diff(&empty, &full);
            assert_eq!(grow.added.len(), 2);
            assert!(grow.removed.is_empty());
            let shrink = engine.diff(&full, &empty);
            assert_eq!(shrink.removed.len(), 2);
            assert!(shrink.added.is_empty());
        }
    }

    #[test]
    fn diff_shares_ns_sets_with_snapshots() {
        // The acceptance bar for the zero-copy pipeline: a delta's NS sets
        // are the snapshots' NS sets, not copies of them.
        let old = snap(1, &[("a.com", &["ns1.x.net"])]);
        let new = snap(2, &[("a.com", &["ns2.y.net"]), ("b.com", &["ns1.x.net"])]);
        let delta = SortedMergeDiff.diff(&old, &new);
        assert!(delta.added[0].1.ptr_eq(new.ns_set_of(&name("b.com")).unwrap()));
        assert!(delta.changed[0].old_ns.ptr_eq(old.ns_set_of(&name("a.com")).unwrap()));
        assert!(delta.changed[0].new_ns.ptr_eq(new.ns_set_of(&name("a.com")).unwrap()));
    }

    #[test]
    fn apply_round_trips() {
        let old = snap(1, &[("a.com", &["ns1.x.net"]), ("b.com", &["ns1.x.net"])]);
        let new = snap(2, &[("b.com", &["ns9.z.net"]), ("c.com", &["ns1.x.net"])]);
        let delta = SortedMergeDiff.diff(&old, &new);
        let rebuilt = delta.apply(&old, Serial::new(2), SimTime::ZERO);
        assert_eq!(rebuilt, new);
    }

    #[test]
    fn apply_shares_untouched_entries() {
        let old = snap(1, &[("a.com", &["ns1.x.net"]), ("b.com", &["ns1.x.net"])]);
        let new = snap(2, &[("a.com", &["ns1.x.net"]), ("b.com", &["ns9.z.net"])]);
        let delta = SortedMergeDiff.diff(&old, &new);
        let rebuilt = delta.apply(&old, Serial::new(2), SimTime::ZERO);
        // The untouched a.com NS set is the base's set, refcount-shared.
        assert!(rebuilt.ns_set_of(&name("a.com")).unwrap().ptr_eq(old.ns_set_of(&name("a.com")).unwrap()));
    }

    #[test]
    #[should_panic(expected = "removing absent domain")]
    fn apply_to_wrong_base_panics() {
        let old = snap(1, &[("a.com", &["ns1.x.net"])]);
        let new = snap(2, &[]);
        let delta = SortedMergeDiff.diff(&old, &new);
        let unrelated = snap(5, &[("z.com", &["ns1.x.net"])]);
        delta.apply(&unrelated, Serial::new(6), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "adding already-present domain")]
    fn apply_rejects_adding_present_domain() {
        let mut delta = ZoneDelta::default();
        delta.added.push((name("a.com"), nsset(&["ns2.y.net"])));
        let base = snap(1, &[("a.com", &["ns1.x.net"])]);
        delta.apply(&base, Serial::new(2), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "changing absent domain")]
    fn apply_rejects_changing_absent_domain() {
        let mut delta = ZoneDelta::default();
        delta.changed.push(NsChange {
            domain: name("ghost.com"),
            old_ns: nsset(&["ns1.x.net"]),
            new_ns: nsset(&["ns2.y.net"]),
        });
        let base = snap(1, &[("a.com", &["ns1.x.net"])]);
        delta.apply(&base, Serial::new(2), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "canonical")]
    fn apply_rejects_unsorted_delta() {
        // A hand-built (or deserialized) delta that violates the sorted
        // invariant must fail loudly, not corrupt the output snapshot.
        let mut delta = ZoneDelta::default();
        delta.added.push((name("z.com"), nsset(&["ns1.x.net"])));
        delta.added.push((name("a.com"), nsset(&["ns1.x.net"])));
        let base = snap(1, &[("m.com", &["ns1.x.net"])]);
        delta.apply(&base, Serial::new(2), SimTime::ZERO);
    }

    #[test]
    fn apply_supports_remove_then_add_of_same_domain() {
        // Non-canonical but historically supported: a delta that removes
        // and re-adds one domain applies as a replacement.
        let mut delta = ZoneDelta::default();
        delta.removed.push((name("a.com"), nsset(&["ns1.x.net"])));
        delta.added.push((name("a.com"), nsset(&["ns2.y.net"])));
        let base = snap(1, &[("a.com", &["ns1.x.net"]), ("b.com", &["ns1.x.net"])]);
        let rebuilt = delta.apply(&base, Serial::new(2), SimTime::ZERO);
        assert_eq!(rebuilt.ns_of(&name("a.com")).unwrap(), &[name("ns2.y.net")]);
        assert_eq!(rebuilt.len(), 2);
    }

    #[test]
    fn ns_set_order_does_not_create_phantom_changes() {
        // from_entries does not reorder NS sets, so build them sorted vs
        // unsorted deliberately through the snapshot text path.
        let a = snap(1, &[("a.com", &["ns1.x.net", "ns2.x.net"])]);
        let b = snap(2, &[("a.com", &["ns1.x.net", "ns2.x.net"])]);
        assert!(SortedMergeDiff.diff(&a, &b).is_empty());
    }

    #[test]
    fn journal_net_delta_compacts() {
        let mut j = ZoneJournal::new();
        j.record(Serial::new(1), JournalEvent::Added { domain: name("a.com"), ns: nsset(&["ns1.x.net"]) });
        j.record(Serial::new(2), JournalEvent::Added { domain: name("t.com"), ns: nsset(&["ns1.x.net"]) });
        j.record(
            Serial::new(3),
            JournalEvent::NsChanged {
                domain: name("a.com"),
                prev_ns: nsset(&["ns1.x.net"]),
                ns: nsset(&["ns2.y.net"]),
            },
        );
        j.record(
            Serial::new(4),
            JournalEvent::Removed { domain: name("t.com"), prev_ns: nsset(&["ns1.x.net"]) },
        );
        let delta = j.delta_between(Serial::new(0), Serial::new(4));
        // t.com was added and removed inside the window: invisible.
        assert_eq!(delta.added.len(), 1);
        assert_eq!(delta.added[0].0, name("a.com"));
        assert_eq!(delta.added[0].1, vec![name("ns2.y.net")]); // net NS state
        assert!(delta.removed.is_empty());
        assert!(delta.changed.is_empty());
    }

    #[test]
    fn journal_raw_events_expose_transients() {
        let mut j = ZoneJournal::new();
        j.record(Serial::new(1), JournalEvent::Added { domain: name("t.com"), ns: nsset(&["ns1.x.net"]) });
        j.record(
            Serial::new(2),
            JournalEvent::Removed { domain: name("t.com"), prev_ns: nsset(&["ns1.x.net"]) },
        );
        // Net delta hides the transient...
        assert!(j.delta_between(Serial::new(0), Serial::new(2)).is_empty());
        // ...but the raw stream (what an RZU subscriber sees) does not.
        assert_eq!(j.events_between(Serial::new(0), Serial::new(2)).len(), 2);
    }

    #[test]
    fn journal_window_boundaries_are_half_open() {
        let mut j = ZoneJournal::new();
        j.record(Serial::new(5), JournalEvent::Added { domain: name("a.com"), ns: nsset(&["n.x.net"]) });
        j.record(Serial::new(6), JournalEvent::Added { domain: name("b.com"), ns: nsset(&["n.x.net"]) });
        // (5, 6]: only the second event.
        let d = j.delta_between(Serial::new(5), Serial::new(6));
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].0, name("b.com"));
    }

    #[test]
    fn journal_change_then_revert_is_invisible() {
        let mut j = ZoneJournal::new();
        j.record(
            Serial::new(1),
            JournalEvent::NsChanged {
                domain: name("a.com"),
                prev_ns: nsset(&["ns1.x.net"]),
                ns: nsset(&["evil.x.net"]),
            },
        );
        j.record(
            Serial::new(2),
            JournalEvent::NsChanged {
                domain: name("a.com"),
                prev_ns: nsset(&["evil.x.net"]),
                ns: nsset(&["ns1.x.net"]),
            },
        );
        // The paper's §5/Appendix B scenario: a phisher flips NS and flips
        // it back between snapshots. Net delta: nothing happened.
        assert!(j.delta_between(Serial::new(0), Serial::new(2)).is_empty());
        assert_eq!(j.events_between(Serial::new(0), Serial::new(2)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "journal serials must increase")]
    fn journal_rejects_non_monotonic_serials() {
        let mut j = ZoneJournal::new();
        j.record(Serial::new(2), JournalEvent::Added { domain: name("a.com"), ns: nsset(&["n.x.net"]) });
        j.record(Serial::new(2), JournalEvent::Added { domain: name("b.com"), ns: nsset(&["n.x.net"]) });
    }

    #[test]
    fn journal_truncation() {
        let mut j = ZoneJournal::new();
        for i in 1..=10u32 {
            j.record(
                Serial::new(i),
                JournalEvent::Added { domain: name(&format!("d{i}.com")), ns: nsset(&["n.x.net"]) },
            );
        }
        j.truncate_through(Serial::new(7));
        assert_eq!(j.len(), 3);
        assert_eq!(j.head(), Some(Serial::new(10)));
        assert_eq!(j.delta_between(Serial::new(7), Serial::new(10)).added.len(), 3);
    }

    #[test]
    fn journal_agrees_with_snapshot_diff() {
        // Build a zone, mutate it while journaling, and check the journal
        // delta equals the snapshot diff.
        use crate::zone::{Delegation, Zone};
        let mut zone = Zone::new(name("com"), Serial::new(0));
        let mut journal = ZoneJournal::new();
        let before = ZoneSnapshot::capture(&zone, SimTime::ZERO);
        let s_before = zone.serial();

        zone.upsert(name("a.com"), Delegation::new(vec![name("ns1.x.net")]));
        journal.record(zone.serial(), JournalEvent::Added { domain: name("a.com"), ns: nsset(&["ns1.x.net"]) });
        zone.upsert(name("b.com"), Delegation::new(vec![name("ns1.x.net")]));
        journal.record(zone.serial(), JournalEvent::Added { domain: name("b.com"), ns: nsset(&["ns1.x.net"]) });
        zone.remove(&name("a.com"));
        journal.record(zone.serial(), JournalEvent::Removed { domain: name("a.com"), prev_ns: nsset(&["ns1.x.net"]) });

        let after = ZoneSnapshot::capture(&zone, SimTime::from_secs(60));
        let from_journal = journal.delta_between(s_before, zone.serial());
        let from_snapshots = SortedMergeDiff.diff(&before, &after);
        assert_eq!(from_journal, from_snapshots);
    }
}
