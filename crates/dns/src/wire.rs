//! RFC 1035 wire-format codec.
//!
//! Implements DNS message encoding and decoding with name compression
//! (§4.1.4), covering the message sections and record types the
//! active-measurement substrate exchanges with simulated resolvers and
//! authoritative servers. The codec is strict on decode: trailing garbage,
//! compression-pointer loops, forward pointers and truncated fields are all
//! errors rather than silent acceptance.
//!
//! # Decode-bounds invariant (machine-checked)
//!
//! Every `decode_*` entry point treats counts and lengths read from the
//! buffer as hostile: an untrusted count must be bounded against the
//! bytes actually remaining (each entry has a known minimum wire cost)
//! **before** any allocation is sized from it, so a 20-byte frame
//! claiming four billion entries is rejected as [`WireError::Truncated`]
//! instead of reserving gigabytes. The rule is catalogued in
//! `docs/INVARIANTS.md` (L2) and enforced by `darkdns-lint`; the decode
//! path is also panic-free (L3) — hostile input produces `WireError`,
//! never an abort.

use crate::diff::{NsChange, ZoneDelta};
use crate::name::DomainName;
use crate::record::{RData, RecordClass, RecordType, ResourceRecord, SoaData};
use crate::serial::Serial;
use crate::zone::NsSet;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use darkdns_sim::time::SimTime;
use std::collections::HashMap;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Errors produced by the wire codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before a complete field was read.
    Truncated,
    /// A compression pointer points at or after its own location.
    ForwardPointer { at: usize, target: usize },
    /// Compression pointers form a loop (or exceed the hop limit).
    PointerLoop,
    /// A label byte has the reserved `10`/`01` top-bit pattern.
    BadLabelType(u8),
    /// The decoded name is not valid presentation-form DNS.
    BadName(String),
    /// TYPE value we do not implement.
    UnsupportedType(u16),
    /// RDLENGTH disagrees with the actual RDATA encoding.
    RdataLength { declared: usize, actual: usize },
    /// Bytes remained after the message was fully parsed.
    TrailingBytes(usize),
    /// A delta-push frame did not start with the `RZU1` magic.
    BadMagic,
    /// A lookup answer row carried flag bits outside the defined set.
    BadFlags(u8),
    /// A snapshot continuation chunk's `(offset, count, total)` bounds
    /// are inconsistent (out of range, or the last-chunk flag disagrees
    /// with the arithmetic).
    BadChunk { offset: u32, count: u32, total: u32 },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::ForwardPointer { at, target } => {
                write!(f, "forward compression pointer at {at} -> {target}")
            }
            WireError::PointerLoop => write!(f, "compression pointer loop"),
            WireError::BadLabelType(b) => write!(f, "reserved label type byte {b:#04x}"),
            WireError::BadName(e) => write!(f, "invalid name: {e}"),
            WireError::UnsupportedType(t) => write!(f, "unsupported TYPE {t}"),
            WireError::RdataLength { declared, actual } => {
                write!(f, "RDLENGTH {declared} but RDATA is {actual} bytes")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::BadMagic => write!(f, "not an RZU1 delta-push frame"),
            WireError::BadFlags(b) => write!(f, "unknown lookup answer flags {b:#04x}"),
            WireError::BadChunk { offset, count, total } => {
                write!(f, "snapshot chunk bounds {offset}+{count} inconsistent with total {total}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Response codes (RFC 1035 §4.1.1 plus NOTIMP alias).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    NoError,
    FormErr,
    ServFail,
    /// NXDOMAIN — the signal the paper's NS probes use to conclude a domain
    /// left the zone.
    NxDomain,
    NotImp,
    Refused,
    Other(u8),
}

impl Rcode {
    pub const fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(c) => c,
        }
    }

    pub fn from_code(c: u8) -> Rcode {
        match c {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other & 0x0f),
        }
    }
}

/// Message header flags and counts (counts are derived from the section
/// vectors on encode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    pub id: u16,
    pub is_response: bool,
    pub opcode: u8,
    pub authoritative: bool,
    pub truncated: bool,
    pub recursion_desired: bool,
    pub recursion_available: bool,
    pub rcode: Rcode,
}

impl Header {
    pub fn query(id: u16) -> Self {
        Header {
            id,
            is_response: false,
            opcode: 0,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            rcode: Rcode::NoError,
        }
    }

    pub fn response_to(query: &Header, rcode: Rcode) -> Self {
        Header {
            id: query.id,
            is_response: true,
            opcode: query.opcode,
            authoritative: false,
            truncated: false,
            recursion_desired: query.recursion_desired,
            recursion_available: true,
            rcode,
        }
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    pub name: DomainName,
    pub qtype: RecordType,
    pub qclass: RecordClass,
}

impl Question {
    pub fn new(name: DomainName, qtype: RecordType) -> Self {
        Question { name, qtype, qclass: RecordClass::In }
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    pub header: Header,
    pub questions: Vec<Question>,
    pub answers: Vec<ResourceRecord>,
    pub authorities: Vec<ResourceRecord>,
    pub additionals: Vec<ResourceRecord>,
}

impl Message {
    pub fn query(id: u16, name: DomainName, qtype: RecordType) -> Self {
        Message {
            header: Header::query(id),
            questions: vec![Question::new(name, qtype)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Encode to wire format with name compression.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.header(self);
        for q in &self.questions {
            enc.name(&q.name);
            enc.buf.put_u16(q.qtype.code());
            enc.buf.put_u16(q.qclass.code());
        }
        for rr in self.answers.iter().chain(&self.authorities).chain(&self.additionals) {
            enc.record(rr);
        }
        enc.buf.to_vec()
    }

    /// Decode from wire format. The entire buffer must be consumed.
    pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
        let mut dec = Decoder { bytes, pos: 0 };
        let (header, counts) = dec.header()?;
        // The qdcount is untrusted: every question costs at least one
        // wire byte, so a count the rest of the buffer cannot hold is a
        // truncation — caught before the allocation is sized from the
        // hostile header. (One byte, not the true 5-byte minimum, so
        // malformed-but-short frames still report their specific decode
        // error rather than a blanket truncation.)
        if counts.0 as usize > dec.remaining() {
            return Err(WireError::Truncated);
        }
        let mut questions = Vec::with_capacity(counts.0 as usize);
        for _ in 0..counts.0 {
            questions.push(dec.question()?);
        }
        let mut sections: [Vec<ResourceRecord>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (i, count) in [counts.1, counts.2, counts.3].into_iter().enumerate() {
            for _ in 0..count {
                sections[i].push(dec.record()?);
            }
        }
        if dec.pos != bytes.len() {
            return Err(WireError::TrailingBytes(bytes.len() - dec.pos));
        }
        let [answers, authorities, additionals] = sections;
        Ok(Message { header, questions, answers, authorities, additionals })
    }
}

struct Encoder {
    buf: BytesMut,
    /// Suffix (presentation form) -> offset of its first encoding.
    compression: HashMap<String, u16>,
}

impl Encoder {
    fn new() -> Self {
        Encoder { buf: BytesMut::with_capacity(512), compression: HashMap::new() }
    }

    fn header(&mut self, msg: &Message) {
        let h = &msg.header;
        self.buf.put_u16(h.id);
        let mut flags: u16 = 0;
        if h.is_response {
            flags |= 1 << 15;
        }
        flags |= u16::from(h.opcode & 0x0f) << 11;
        if h.authoritative {
            flags |= 1 << 10;
        }
        if h.truncated {
            flags |= 1 << 9;
        }
        if h.recursion_desired {
            flags |= 1 << 8;
        }
        if h.recursion_available {
            flags |= 1 << 7;
        }
        flags |= u16::from(h.rcode.code() & 0x0f);
        self.buf.put_u16(flags);
        self.buf.put_u16(msg.questions.len() as u16);
        self.buf.put_u16(msg.answers.len() as u16);
        self.buf.put_u16(msg.authorities.len() as u16);
        self.buf.put_u16(msg.additionals.len() as u16);
    }

    /// Encode a name, emitting a compression pointer to the longest
    /// previously-encoded suffix.
    fn name(&mut self, name: &DomainName) {
        let labels = name.labels();
        for i in 0..labels.len() {
            let suffix = labels[i..].join(".");
            if let Some(&offset) = self.compression.get(&suffix) {
                self.buf.put_u16(0xC000 | offset);
                return;
            }
            // Offsets beyond 0x3FFF cannot be pointer targets.
            let here = self.buf.len();
            if here <= 0x3FFF {
                self.compression.insert(suffix, here as u16);
            }
            let label = labels[i].as_bytes();
            debug_assert!(label.len() <= 63);
            self.buf.put_u8(label.len() as u8);
            self.buf.put_slice(label);
        }
        self.buf.put_u8(0);
    }

    /// Encode an NS set as a u16 count followed by the host names.
    fn ns_set(&mut self, ns: &NsSet) {
        debug_assert!(ns.len() <= u16::MAX as usize);
        self.buf.put_u16(ns.len() as u16);
        for host in ns {
            self.name(host);
        }
    }

    fn record(&mut self, rr: &ResourceRecord) {
        self.name(&rr.name);
        self.buf.put_u16(rr.record_type().code());
        self.buf.put_u16(rr.class.code());
        self.buf.put_u32(rr.ttl);
        // Reserve RDLENGTH, encode RDATA, then backpatch.
        let len_pos = self.buf.len();
        self.buf.put_u16(0);
        let start = self.buf.len();
        self.rdata(&rr.rdata);
        let rdlen = (self.buf.len() - start) as u16;
        self.buf[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
    }

    fn rdata(&mut self, rdata: &RData) {
        match rdata {
            RData::A(ip) => self.buf.put_slice(&ip.octets()),
            RData::Aaaa(ip) => self.buf.put_slice(&ip.octets()),
            RData::Ns(n) | RData::Cname(n) => self.name(n),
            RData::Mx { preference, exchange } => {
                self.buf.put_u16(*preference);
                self.name(exchange);
            }
            RData::Txt(bytes) => {
                // Split into <=255-byte character strings; an empty TXT is
                // one zero-length character string.
                if bytes.is_empty() {
                    self.buf.put_u8(0);
                } else {
                    for chunk in bytes.chunks(255) {
                        self.buf.put_u8(chunk.len() as u8);
                        self.buf.put_slice(chunk);
                    }
                }
            }
            RData::Soa(s) => {
                self.name(&s.mname);
                self.name(&s.rname);
                self.buf.put_u32(s.serial);
                self.buf.put_u32(s.refresh);
                self.buf.put_u32(s.retry);
                self.buf.put_u32(s.expire);
                self.buf.put_u32(s.minimum);
            }
        }
    }
}

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let mut b = self.take(2)?;
        Ok(b.get_u16())
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let mut b = self.take(4)?;
        Ok(b.get_u32())
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        // take(8) returned exactly 8 bytes; a length mismatch is
        // unreachable, but the decode path stays panic-free by policy.
        Ok(u64::from_be_bytes(b.try_into().map_err(|_| WireError::Truncated)?))
    }

    /// Advance past an encoded name without materialising it: labels are
    /// skipped in place and a compression pointer (2 bytes) ends the
    /// walk — the allocation-free half of [`Decoder::name`], for callers
    /// that only need what lies *behind* the name.
    fn skip_name(&mut self) -> Result<(), WireError> {
        loop {
            let len = self.u8()?;
            match len & 0xC0 {
                0x00 => {
                    if len == 0 {
                        return Ok(());
                    }
                    self.take(len as usize)?;
                }
                0xC0 => {
                    self.u8()?; // pointer low byte; the target is elsewhere
                    return Ok(());
                }
                _ => return Err(WireError::BadName("reserved label length bits".into())),
            }
        }
    }

    /// Decode an NS set encoded by [`Encoder::ns_set`]. Host order is
    /// preserved as encoded.
    fn ns_set(&mut self) -> Result<NsSet, WireError> {
        let count = self.u16()? as usize;
        // Untrusted count: every host name costs at least 1 byte, so a
        // count the rest of the buffer cannot hold is a truncation —
        // caught before the allocation is sized from it.
        if count > self.remaining() {
            return Err(WireError::Truncated);
        }
        let mut hosts = Vec::with_capacity(count);
        for _ in 0..count {
            hosts.push(self.name()?);
        }
        Ok(NsSet::from_raw(hosts))
    }

    #[allow(clippy::type_complexity)]
    fn header(&mut self) -> Result<(Header, (u16, u16, u16, u16)), WireError> {
        let id = self.u16()?;
        let flags = self.u16()?;
        let counts = (self.u16()?, self.u16()?, self.u16()?, self.u16()?);
        Ok((
            Header {
                id,
                is_response: flags & (1 << 15) != 0,
                opcode: ((flags >> 11) & 0x0f) as u8,
                authoritative: flags & (1 << 10) != 0,
                truncated: flags & (1 << 9) != 0,
                recursion_desired: flags & (1 << 8) != 0,
                recursion_available: flags & (1 << 7) != 0,
                rcode: Rcode::from_code((flags & 0x0f) as u8),
            },
            counts,
        ))
    }

    /// Decode a (possibly compressed) name starting at the current cursor.
    fn name(&mut self) -> Result<DomainName, WireError> {
        let mut labels: Vec<String> = Vec::new();
        let mut cursor = self.pos;
        let mut followed_pointer = false;
        let mut hops = 0usize;
        loop {
            if cursor >= self.bytes.len() {
                return Err(WireError::Truncated);
            }
            let len = self.bytes[cursor];
            match len & 0xC0 {
                0x00 => {
                    if len == 0 {
                        cursor += 1;
                        if !followed_pointer {
                            self.pos = cursor;
                        }
                        break;
                    }
                    let start = cursor + 1;
                    let end = start + len as usize;
                    if end > self.bytes.len() {
                        return Err(WireError::Truncated);
                    }
                    labels.push(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| WireError::BadName("non-ASCII label".into()))?
                            .to_owned(),
                    );
                    cursor = end;
                    if !followed_pointer {
                        self.pos = cursor;
                    }
                }
                0xC0 => {
                    if cursor + 1 >= self.bytes.len() {
                        return Err(WireError::Truncated);
                    }
                    let target =
                        ((u16::from(len & 0x3F) << 8) | u16::from(self.bytes[cursor + 1])) as usize;
                    if target >= cursor {
                        return Err(WireError::ForwardPointer { at: cursor, target });
                    }
                    hops += 1;
                    if hops > 32 {
                        return Err(WireError::PointerLoop);
                    }
                    if !followed_pointer {
                        self.pos = cursor + 2;
                        followed_pointer = true;
                    }
                    cursor = target;
                }
                other => return Err(WireError::BadLabelType(other)),
            }
        }
        DomainName::from_labels(labels).map_err(|e| WireError::BadName(e.to_string()))
    }

    fn question(&mut self) -> Result<Question, WireError> {
        let name = self.name()?;
        let qtype_code = self.u16()?;
        let qtype = RecordType::from_code(qtype_code).ok_or(WireError::UnsupportedType(qtype_code))?;
        let qclass = RecordClass::from_code(self.u16()?);
        Ok(Question { name, qtype, qclass })
    }

    fn record(&mut self) -> Result<ResourceRecord, WireError> {
        let name = self.name()?;
        let type_code = self.u16()?;
        let rtype = RecordType::from_code(type_code).ok_or(WireError::UnsupportedType(type_code))?;
        let class = RecordClass::from_code(self.u16()?);
        let ttl = self.u32()?;
        let rdlen = self.u16()? as usize;
        let rdata_start = self.pos;
        if self.remaining() < rdlen {
            return Err(WireError::Truncated);
        }
        let rdata = self.rdata(rtype, rdlen)?;
        let consumed = self.pos - rdata_start;
        if consumed != rdlen {
            return Err(WireError::RdataLength { declared: rdlen, actual: consumed });
        }
        Ok(ResourceRecord { name, ttl, class, rdata })
    }

    fn rdata(&mut self, rtype: RecordType, rdlen: usize) -> Result<RData, WireError> {
        Ok(match rtype {
            RecordType::A => {
                let b = self.take(4)?;
                RData::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            RecordType::Aaaa => {
                let b = self.take(16)?;
                let mut o = [0u8; 16];
                o.copy_from_slice(b);
                RData::Aaaa(Ipv6Addr::from(o))
            }
            RecordType::Ns => RData::Ns(self.name()?),
            RecordType::Cname => RData::Cname(self.name()?),
            RecordType::Mx => {
                let preference = self.u16()?;
                RData::Mx { preference, exchange: self.name()? }
            }
            RecordType::Txt => {
                let end = self.pos + rdlen;
                let mut out = Vec::new();
                while self.pos < end {
                    let len = self.u8()? as usize;
                    if self.pos + len > end {
                        return Err(WireError::Truncated);
                    }
                    out.extend_from_slice(self.take(len)?);
                }
                RData::Txt(out)
            }
            RecordType::Soa => RData::Soa(SoaData {
                mname: self.name()?,
                rname: self.name()?,
                serial: self.u32()?,
                refresh: self.u32()?,
                retry: self.u32()?,
                expire: self.u32()?,
                minimum: self.u32()?,
            }),
        })
    }
}

/// Magic prefix of an RZU delta-push frame ("RZU1").
pub const DELTA_PUSH_MAGIC: &[u8; 4] = b"RZU1";

/// A decoded RZU delta-push frame: the net zone change that advanced one
/// shard from `from_serial` to `to_serial`.
///
/// This is the unit the distribution broker fans out: the publisher calls
/// [`encode_delta_push`] **once** per push and hands the resulting
/// [`Bytes`] to every subscriber — the bytes are refcount-shared, never
/// re-encoded or copied per subscriber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaPush {
    /// Zone origin (the shard's TLD).
    pub origin: DomainName,
    /// Serial the subscriber must be at for the delta to apply.
    pub from_serial: Serial,
    /// Serial the subscriber reaches after applying the delta.
    pub to_serial: Serial,
    /// Publisher-side timestamp of the push.
    pub pushed_at: SimTime,
    /// The net changes, in canonical (sorted-by-domain) order.
    pub delta: ZoneDelta,
}

/// Encode a delta push into a compact shareable frame.
///
/// Layout (all integers big-endian):
///
/// ```text
/// "RZU1"                     magic, 4 bytes
/// origin                     wire-format name (compression target)
/// from_serial u32, to_serial u32, pushed_at u64
/// added u32, removed u32, changed u32        section counts
/// added:   (name, u16 ns_count, ns names...) per entry
/// removed: (name, u16 ns_count, ns names...) per entry
/// changed: (name, u16 old_count, old..., u16 new_count, new...) per entry
/// ```
///
/// Names use RFC 1035 label encoding with compression pointers scoped to
/// the frame, so the heavily repeated NS host names (a handful of DNS
/// providers serve most delegations) collapse to 2-byte pointers.
pub fn encode_delta_push(
    origin: &DomainName,
    from_serial: Serial,
    to_serial: Serial,
    pushed_at: SimTime,
    delta: &ZoneDelta,
) -> Bytes {
    let mut enc = Encoder::new();
    enc.buf.put_slice(DELTA_PUSH_MAGIC);
    enc.name(origin);
    enc.buf.put_u32(from_serial.get());
    enc.buf.put_u32(to_serial.get());
    enc.buf.put_u64(pushed_at.as_secs());
    enc.buf.put_u32(delta.added.len() as u32);
    enc.buf.put_u32(delta.removed.len() as u32);
    enc.buf.put_u32(delta.changed.len() as u32);
    for (domain, ns) in delta.added.iter().chain(&delta.removed) {
        enc.name(domain);
        enc.ns_set(ns);
    }
    for chg in &delta.changed {
        enc.name(&chg.domain);
        enc.ns_set(&chg.old_ns);
        enc.ns_set(&chg.new_ns);
    }
    enc.buf.freeze()
}

/// Decode a frame produced by [`encode_delta_push`]. The entire buffer
/// must be consumed. Section order within the frame is preserved, so a
/// frame encoded from a canonical [`ZoneDelta`] decodes to a canonical
/// one (a property [`ZoneDelta::apply`] re-verifies before applying).
pub fn decode_delta_push(bytes: &[u8]) -> Result<DeltaPush, WireError> {
    let mut dec = Decoder { bytes, pos: 0 };
    if dec.take(4)? != DELTA_PUSH_MAGIC {
        return Err(WireError::BadMagic);
    }
    let origin = dec.name()?;
    let from_serial = Serial::new(dec.u32()?);
    let to_serial = Serial::new(dec.u32()?);
    let pushed_at = SimTime::from_secs(dec.u64()?);
    let added_count = dec.u32()? as usize;
    let removed_count = dec.u32()? as usize;
    let changed_count = dec.u32()? as usize;
    // Counts are untrusted: every entry costs at least 3 bytes (a 1-byte
    // root/pointer-free name plus a 2-byte NS count), so counts the
    // remaining buffer cannot possibly hold are a truncation, caught
    // here before any allocation is sized from them.
    let min_bytes = (added_count + removed_count)
        .checked_mul(3)
        .and_then(|n| n.checked_add(changed_count.checked_mul(5)?))
        .ok_or(WireError::Truncated)?;
    if min_bytes > dec.remaining() {
        return Err(WireError::Truncated);
    }
    let mut delta = ZoneDelta::default();
    delta.added.reserve_exact(added_count);
    for _ in 0..added_count {
        delta.added.push((dec.name()?, dec.ns_set()?));
    }
    delta.removed.reserve_exact(removed_count);
    for _ in 0..removed_count {
        delta.removed.push((dec.name()?, dec.ns_set()?));
    }
    delta.changed.reserve_exact(changed_count);
    for _ in 0..changed_count {
        delta.changed.push(NsChange {
            domain: dec.name()?,
            old_ns: dec.ns_set()?,
            new_ns: dec.ns_set()?,
        });
    }
    if dec.pos != bytes.len() {
        return Err(WireError::TrailingBytes(bytes.len() - dec.pos));
    }
    Ok(DeltaPush { origin, from_serial, to_serial, pushed_at, delta })
}

// ---------------------------------------------------------------------------
// RZU transport frames
//
// The distribution broker's socket transport exchanges length-prefixed
// frames whose payloads are one of four message kinds, each tagged by a
// 4-byte magic:
//
// * `RZUH` — subscriber HELLO (client -> server): the per-TLD serial
//   claims the catch-up plan is computed from.
// * `RZUS` — snapshot push (server -> client): a full shard bootstrap,
//   sent when the catch-up decision rule answers with a checkpoint.
// * `RZUD` — delta envelope (server -> client): a TLD tag followed by an
//   embedded `RZU1` frame, verbatim — the server writes the broker's
//   refcount-shared frame bytes with no per-subscriber re-encode.
// * `RZUE` — eviction notice (server -> client): the subscriber fell
//   behind and was evicted; it must reconnect with its claims.
// * `RZUQ` — stats round trip. As a client -> server frame the magic
//   alone is the query; the server answers with an `RZUQ` report frame
//   carrying its transport counters plus one row per TLD shard
//   ([`WireServerStats`] / [`WireShardStats`]), then closes. Operators
//   scrape a broker by dialing a fresh connection and sending `RZUQ`
//   instead of `RZUH` — the monitor path shares the subscriber path's
//   framing, bounds and client API without interleaving into a live
//   delta stream.
//
// Every decoder here treats counts and lengths as untrusted: a count the
// remaining buffer cannot possibly hold is rejected before any
// allocation is sized from it (the same discipline as
// [`decode_delta_push`]).
// ---------------------------------------------------------------------------

/// Magic prefix of a subscriber HELLO frame.
pub const HELLO_MAGIC: &[u8; 4] = b"RZUH";
/// Magic prefix of a snapshot-push frame.
pub const SNAPSHOT_PUSH_MAGIC: &[u8; 4] = b"RZUS";
/// Magic prefix of a delta-envelope frame (TLD tag + embedded `RZU1`).
pub const DELTA_ENVELOPE_MAGIC: &[u8; 4] = b"RZUD";
/// Magic prefix (and entire body) of an eviction notice.
pub const EVICT_NOTICE_MAGIC: &[u8; 4] = b"RZUE";

/// One shard claim in a HELLO: the TLD index (transport-level `u16`, the
/// registry's `TldId` payload) and the serial the subscriber claims to
/// hold for it (`None` = no prior state; bootstrap me).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TldClaim {
    pub tld: u16,
    pub from_serial: Option<Serial>,
}

/// Encode a subscriber HELLO from per-TLD serial claims.
///
/// Layout: `"RZUH"`, `u16` claim count, then per claim `u16` TLD,
/// `u8` has-serial flag, `u32` serial (zero when absent).
pub fn encode_hello(claims: &[TldClaim]) -> Bytes {
    debug_assert!(claims.len() <= u16::MAX as usize);
    let mut buf = BytesMut::with_capacity(6 + claims.len() * 7);
    buf.put_slice(HELLO_MAGIC);
    buf.put_u16(claims.len() as u16);
    for claim in claims {
        buf.put_u16(claim.tld);
        match claim.from_serial {
            Some(s) => {
                buf.put_u8(1);
                buf.put_u32(s.get());
            }
            None => {
                buf.put_u8(0);
                buf.put_u32(0);
            }
        }
    }
    buf.freeze()
}

/// Decode a HELLO produced by [`encode_hello`]. The entire buffer must be
/// consumed. The claim count is untrusted but bounded by construction:
/// each claim is exactly 7 bytes, so a count the remaining buffer cannot
/// hold is a truncation, caught before any allocation is sized from it.
pub fn decode_hello(bytes: &[u8]) -> Result<Vec<TldClaim>, WireError> {
    let mut dec = Decoder { bytes, pos: 0 };
    if dec.take(4)? != HELLO_MAGIC {
        return Err(WireError::BadMagic);
    }
    let count = dec.u16()? as usize;
    if count.checked_mul(7).is_none_or(|need| need > dec.remaining()) {
        return Err(WireError::Truncated);
    }
    let mut claims = Vec::with_capacity(count);
    for _ in 0..count {
        let tld = dec.u16()?;
        let has_serial = dec.u8()?;
        let serial = dec.u32()?;
        claims.push(TldClaim {
            tld,
            from_serial: (has_serial != 0).then(|| Serial::new(serial)),
        });
    }
    if dec.pos != bytes.len() {
        return Err(WireError::TrailingBytes(bytes.len() - dec.pos));
    }
    Ok(claims)
}

/// A subscriber's mid-snapshot progress claim: it holds the first
/// `entries` entries of the chunked snapshot at `serial` and asks the
/// server to resume from there if that checkpoint is still being served
/// (otherwise the server restarts the chunk sequence from offset 0 and
/// the subscriber discards its partial state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotResume {
    /// Serial of the partially-received checkpoint snapshot.
    pub serial: Serial,
    /// Entries already received (a chunk boundary by construction).
    pub entries: u32,
}

/// A subscriber's catch-up scope, carried in the HELLO's optional scope
/// section. The scope answers one question per connection: what may the
/// server send to bring the subscriber's claimed shards to the head?
///
/// * [`HelloScope::Full`] — the legacy (and default) contract: the
///   server applies the complete snapshot-vs-delta decision rule, so a
///   claim beyond delta repair triggers a checkpoint bootstrap.
/// * [`HelloScope::DeltaOnly`] — a *partial subscription* in the
///   MoQ-relay sense: the subscriber wants the live delta stream and
///   ring-covered replay only, never a snapshot. A claim the ring cannot
///   cover starts at the live head instead of bootstrapping — the right
///   contract for tap consumers (an NRD detector watching for new
///   delegations) that carry no full-zone state and must not pay a
///   500k-entry bootstrap to start listening.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HelloScope {
    #[default]
    Full,
    DeltaOnly,
}

impl HelloScope {
    fn to_wire(self) -> u8 {
        match self {
            HelloScope::Full => 0,
            HelloScope::DeltaOnly => 1,
        }
    }

    fn from_wire(byte: u8) -> Result<Self, WireError> {
        match byte {
            0 => Ok(HelloScope::Full),
            1 => Ok(HelloScope::DeltaOnly),
            _ => Err(WireError::BadMagic),
        }
    }
}

/// A decoded HELLO: the per-TLD serial claims plus any mid-snapshot
/// resume claims appended by a subscriber that was cut during a chunked
/// bootstrap, plus the subscription scope (absent on legacy frames,
/// defaulting to [`HelloScope::Full`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HelloFrame {
    pub claims: Vec<TldClaim>,
    pub resume: Vec<(u16, SnapshotResume)>,
    pub scope: HelloScope,
}

/// Encode a HELLO with optional mid-snapshot resume claims.
///
/// With `resume` empty this emits byte-for-byte the legacy
/// [`encode_hello`] layout. Otherwise the claim section is followed by a
/// `u16` resume count and per row `u16` TLD, `u32` snapshot serial,
/// `u32` entries-received (10 bytes each).
pub fn encode_hello_frame(claims: &[TldClaim], resume: &[(u16, SnapshotResume)]) -> Bytes {
    encode_hello_scoped(claims, resume, HelloScope::Full)
}

/// Encode a HELLO with resume claims and an explicit subscription scope.
///
/// With the default [`HelloScope::Full`] scope the scope section is
/// omitted entirely, so the output is byte-identical to
/// [`encode_hello_frame`] (and, with `resume` also empty, to the legacy
/// [`encode_hello`] layout). A non-default scope appends the resume
/// section unconditionally (count 0 if empty) followed by one scope
/// byte — old decoders reject the frame rather than silently serving a
/// full bootstrap to a delta-only subscriber.
pub fn encode_hello_scoped(
    claims: &[TldClaim],
    resume: &[(u16, SnapshotResume)],
    scope: HelloScope,
) -> Bytes {
    debug_assert!(claims.len() <= u16::MAX as usize);
    debug_assert!(resume.len() <= u16::MAX as usize);
    let mut buf = BytesMut::with_capacity(6 + claims.len() * 7 + 2 + resume.len() * 10 + 1);
    buf.put_slice(HELLO_MAGIC);
    buf.put_u16(claims.len() as u16);
    for claim in claims {
        buf.put_u16(claim.tld);
        match claim.from_serial {
            Some(s) => {
                buf.put_u8(1);
                buf.put_u32(s.get());
            }
            None => {
                buf.put_u8(0);
                buf.put_u32(0);
            }
        }
    }
    if !resume.is_empty() || scope != HelloScope::Full {
        buf.put_u16(resume.len() as u16);
        for &(tld, r) in resume {
            buf.put_u16(tld);
            buf.put_u32(r.serial.get());
            buf.put_u32(r.entries);
        }
    }
    if scope != HelloScope::Full {
        buf.put_u8(scope.to_wire());
    }
    buf.freeze()
}

/// Decode a HELLO, accepting the legacy layout (claims only — the
/// resume and scope sections are simply absent), the resume-extended
/// layout of [`encode_hello_frame`], and the scoped layout of
/// [`encode_hello_scoped`]. All counts are untrusted and bounded before
/// any allocation is sized from them; an unknown scope byte is
/// rejected, and the entire buffer must be consumed.
pub fn decode_hello_frame(bytes: &[u8]) -> Result<HelloFrame, WireError> {
    let mut dec = Decoder { bytes, pos: 0 };
    if dec.take(4)? != HELLO_MAGIC {
        return Err(WireError::BadMagic);
    }
    let count = dec.u16()? as usize;
    if count.checked_mul(7).is_none_or(|need| need > dec.remaining()) {
        return Err(WireError::Truncated);
    }
    let mut claims = Vec::with_capacity(count);
    for _ in 0..count {
        let tld = dec.u16()?;
        let has_serial = dec.u8()?;
        let serial = dec.u32()?;
        claims.push(TldClaim {
            tld,
            from_serial: (has_serial != 0).then(|| Serial::new(serial)),
        });
    }
    let mut resume = Vec::new();
    let mut scope = HelloScope::Full;
    if dec.remaining() > 0 {
        let rcount = dec.u16()? as usize;
        if rcount.checked_mul(10).is_none_or(|need| need > dec.remaining()) {
            return Err(WireError::Truncated);
        }
        resume.reserve_exact(rcount);
        for _ in 0..rcount {
            let tld = dec.u16()?;
            let serial = Serial::new(dec.u32()?);
            let entries = dec.u32()?;
            resume.push((tld, SnapshotResume { serial, entries }));
        }
        if dec.remaining() > 0 {
            scope = HelloScope::from_wire(dec.u8()?)?;
        }
    }
    if dec.pos != bytes.len() {
        return Err(WireError::TrailingBytes(bytes.len() - dec.pos));
    }
    Ok(HelloFrame { claims, resume, scope })
}

/// Encode a shard bootstrap snapshot for the transport.
///
/// Layout: `"RZUS"`, `u16` TLD, origin name, `u32` serial, `u64`
/// taken-at, `u32` entry count, then per entry a name and an NS set.
/// Names use the same frame-scoped compression as [`encode_delta_push`],
/// so the handful of NS providers serving most delegations collapse to
/// 2-byte pointers.
pub fn encode_snapshot_push(tld: u16, snapshot: &crate::snapshot::ZoneSnapshot) -> Bytes {
    let mut enc = Encoder::new();
    enc.buf.put_slice(SNAPSHOT_PUSH_MAGIC);
    enc.buf.put_u16(tld);
    enc.name(snapshot.origin());
    enc.buf.put_u32(snapshot.serial().get());
    enc.buf.put_u64(snapshot.taken_at().as_secs());
    enc.buf.put_u32(snapshot.len() as u32);
    for (domain, ns) in snapshot.iter() {
        enc.name(&domain);
        enc.ns_set(ns);
    }
    enc.buf.freeze()
}

/// Decode a frame produced by [`encode_snapshot_push`] into the TLD tag
/// and the reconstructed snapshot. The entire buffer must be consumed;
/// the entry count is untrusted (each entry costs at least 3 bytes).
pub fn decode_snapshot_push(
    bytes: &[u8],
) -> Result<(u16, crate::snapshot::ZoneSnapshot), WireError> {
    let mut dec = Decoder { bytes, pos: 0 };
    if dec.take(4)? != SNAPSHOT_PUSH_MAGIC {
        return Err(WireError::BadMagic);
    }
    let tld = dec.u16()?;
    let origin = dec.name()?;
    let serial = Serial::new(dec.u32()?);
    let taken_at = SimTime::from_secs(dec.u64()?);
    let count = dec.u32()? as usize;
    if count.checked_mul(3).is_none_or(|need| need > dec.remaining()) {
        return Err(WireError::Truncated);
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let domain = dec.name()?;
        let ns = dec.ns_set()?;
        entries.push((domain, ns.as_slice().to_vec()));
    }
    if dec.pos != bytes.len() {
        return Err(WireError::TrailingBytes(bytes.len() - dec.pos));
    }
    Ok((tld, crate::snapshot::ZoneSnapshot::from_entries(origin, serial, taken_at, entries)))
}

/// Magic prefix of a snapshot continuation chunk — the chunked form of
/// `RZUS`, used when a checkpoint snapshot must traverse the transport's
/// frame bound in pieces.
pub const SNAPSHOT_CHUNK_MAGIC: &[u8; 4] = b"RZUC";

/// One decoded snapshot continuation chunk: a contiguous `[offset,
/// offset+entries.len())` slice of a checkpoint's entry sequence, tagged
/// with enough context (serial, totals, last flag) that a receiver can
/// assemble the full snapshot incrementally and — after a mid-sequence
/// cut — resume from its last received chunk boundary via a
/// [`SnapshotResume`] HELLO claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotChunk {
    /// Transport-level TLD tag, as in the `RZUS` header.
    pub tld: u16,
    /// Zone origin of the snapshot being chunked.
    pub origin: DomainName,
    /// Serial of the snapshot every chunk in the sequence belongs to.
    pub serial: Serial,
    /// Capture timestamp of the snapshot.
    pub taken_at: SimTime,
    /// Total entry count of the full snapshot.
    pub total: u32,
    /// Index of this chunk's first entry within the snapshot.
    pub offset: u32,
    /// True on the final chunk (`offset + entries.len() == total`).
    pub last: bool,
    /// The chunk's entries, in snapshot iteration order.
    pub entries: Vec<(DomainName, Vec<DomainName>)>,
}

/// Encode a snapshot as a sequence of `RZUC` continuation chunks,
/// starting at entry `start_entry` (a resume offset; pass 0 for the full
/// snapshot).
///
/// Each chunk carries the `RZUS`-style header plus `u32` total, `u32`
/// offset, `u8` flags (bit 0 = last chunk), `u32` entry count, then the
/// entries. Name compression is scoped per chunk, so every chunk is an
/// independently decodable frame. Entries are packed greedily: a chunk
/// is closed once its encoding reaches `chunk_bytes`, so a chunk can
/// overshoot the target by at most one entry's encoding — callers
/// deriving `chunk_bytes` from a hard frame bound must leave headroom
/// for that (one entry is bounded by one 255-byte name plus a `u16`
/// count of 255-byte NS host names, far below any sane frame bound).
/// Every snapshot produces at least one chunk; an empty snapshot (or
/// `start_entry == len`) yields a single zero-entry final chunk.
pub fn encode_snapshot_chunks(
    tld: u16,
    snapshot: &crate::snapshot::ZoneSnapshot,
    start_entry: usize,
    chunk_bytes: usize,
) -> Vec<Bytes> {
    let total = snapshot.len();
    let start = start_entry.min(total);
    let mut iter = snapshot.iter().skip(start).peekable();
    let mut offset = start;
    let mut frames = Vec::new();
    loop {
        let mut enc = Encoder::new();
        enc.buf.put_slice(SNAPSHOT_CHUNK_MAGIC);
        enc.buf.put_u16(tld);
        enc.name(snapshot.origin());
        enc.buf.put_u32(snapshot.serial().get());
        enc.buf.put_u64(snapshot.taken_at().as_secs());
        enc.buf.put_u32(total as u32);
        enc.buf.put_u32(offset as u32);
        let flags_at = enc.buf.len();
        enc.buf.put_u8(0);
        let count_at = enc.buf.len();
        enc.buf.put_u32(0);
        let mut count: u32 = 0;
        // At least one entry per chunk guarantees progress even when the
        // header alone exceeds the byte target.
        while count == 0 || enc.buf.len() < chunk_bytes {
            let Some((domain, ns)) = iter.next() else { break };
            enc.name(&domain);
            enc.ns_set(ns);
            count += 1;
        }
        let last = iter.peek().is_none();
        if last {
            enc.buf[flags_at] = 1;
        }
        enc.buf[count_at..count_at + 4].copy_from_slice(&count.to_be_bytes());
        offset += count as usize;
        frames.push(enc.buf.freeze());
        if last {
            return frames;
        }
    }
}

/// Decode one frame produced by [`encode_snapshot_chunks`]. The entire
/// buffer must be consumed; the entry count is untrusted (bounded before
/// allocation, as in [`decode_snapshot_push`]), and the chunk's
/// `(offset, count, total, last)` bookkeeping must be arithmetically
/// consistent — a frame claiming entries past `total`, or a last flag
/// that disagrees with `offset + count == total`, is a
/// [`WireError::BadChunk`].
pub fn decode_snapshot_chunk(bytes: &[u8]) -> Result<SnapshotChunk, WireError> {
    let mut dec = Decoder { bytes, pos: 0 };
    if dec.take(4)? != SNAPSHOT_CHUNK_MAGIC {
        return Err(WireError::BadMagic);
    }
    let tld = dec.u16()?;
    let origin = dec.name()?;
    let serial = Serial::new(dec.u32()?);
    let taken_at = SimTime::from_secs(dec.u64()?);
    let total = dec.u32()?;
    let offset = dec.u32()?;
    let flags = dec.u8()?;
    if flags & !1 != 0 {
        return Err(WireError::BadFlags(flags));
    }
    let last = flags & 1 != 0;
    let count = dec.u32()?;
    if (count as usize).checked_mul(3).is_none_or(|need| need > dec.remaining()) {
        return Err(WireError::Truncated);
    }
    let end = offset as u64 + count as u64;
    if end > total as u64 || last != (end == total as u64) {
        return Err(WireError::BadChunk { offset, count, total });
    }
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let domain = dec.name()?;
        let ns = dec.ns_set()?;
        entries.push((domain, ns.as_slice().to_vec()));
    }
    if dec.pos != bytes.len() {
        return Err(WireError::TrailingBytes(bytes.len() - dec.pos));
    }
    Ok(SnapshotChunk { tld, origin, serial, taken_at, total, offset, last, entries })
}

/// The fixed 6-byte header of a delta envelope: magic plus the TLD tag.
/// The transport writer sends this header followed by the broker's
/// refcount-shared `RZU1` frame bytes verbatim — composing the envelope
/// never re-encodes or copies the delta per subscriber.
pub fn delta_envelope_header(tld: u16) -> [u8; 6] {
    let mut header = [0u8; 6];
    header[..4].copy_from_slice(DELTA_ENVELOPE_MAGIC);
    header[4..].copy_from_slice(&tld.to_be_bytes());
    header
}

/// Decode a delta envelope: the TLD tag and the embedded [`DeltaPush`]
/// (validated by [`decode_delta_push`], including its bounded-count
/// discipline).
pub fn decode_delta_envelope(bytes: &[u8]) -> Result<(u16, DeltaPush), WireError> {
    let mut dec = Decoder { bytes, pos: 0 };
    if dec.take(4)? != DELTA_ENVELOPE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let tld = dec.u16()?;
    let push = decode_delta_push(&bytes[dec.pos..])?;
    Ok((tld, push))
}

/// Peek the `(from_serial, to_serial)` pair of a bare `RZU1` delta-push
/// frame without decoding its body — the origin name is skipped in
/// place, nothing is allocated. This is what lets a relay (or the
/// server's per-subscriber accounting) track how far a verbatim-
/// forwarded delta stream has advanced at a cost independent of the
/// delta's size.
pub fn peek_delta_push_serials(bytes: &[u8]) -> Result<(Serial, Serial), WireError> {
    let mut dec = Decoder { bytes, pos: 0 };
    if dec.take(4)? != DELTA_PUSH_MAGIC {
        return Err(WireError::BadMagic);
    }
    dec.skip_name()?;
    let from = Serial::new(dec.u32()?);
    let to = Serial::new(dec.u32()?);
    Ok((from, to))
}

/// Encode an eviction notice (the magic is the whole message).
pub fn encode_evict_notice() -> Bytes {
    Bytes::copy_from_slice(EVICT_NOTICE_MAGIC)
}

/// True when `bytes` is exactly an eviction notice.
pub fn is_evict_notice(bytes: &[u8]) -> bool {
    bytes == EVICT_NOTICE_MAGIC
}

/// Magic prefix of the stats round trip: alone it is the query; with a
/// payload it is the report.
pub const STATS_MAGIC: &[u8; 4] = b"RZUQ";

/// Transport-level server counters as they cross the wire. Field
/// meanings mirror the broker transport's `ServerStats`; this struct is
/// codec-neutral (plain integers) so the wire layer does not depend on
/// the broker crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireServerStats {
    pub accepted: u64,
    pub handshakes: u64,
    pub rejected_hellos: u64,
    pub deltas_sent: u64,
    pub snapshots_sent: u64,
    pub evict_notices: u64,
    pub disconnects: u64,
    /// Syscall batches that carried more than one frame (writer
    /// coalescing).
    pub coalesced_writes: u64,
    /// Frames that rode in a batch behind another frame — each is one
    /// write syscall saved.
    pub coalesced_frames: u64,
    /// `RZUQ` queries answered.
    pub stats_queries: u64,
}

/// One TLD shard's counters as they cross the wire (mirrors the
/// broker's per-shard `ShardStats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireShardStats {
    pub tld: u16,
    pub head_serial: Serial,
    pub subscribers: u64,
    pub pushes: u64,
    pub frame_bytes: u64,
    pub checkpoints: u64,
    pub retained_deltas: u64,
    pub retired_deltas: u64,
    pub deliveries: u64,
    pub lagged_messages: u64,
    pub evictions: u64,
    pub snapshot_catchups: u64,
    pub delta_catchups: u64,
    pub lock_contentions: u64,
    /// Frames of this shard delivered inside a coalesced writer batch.
    pub coalesced_frames: u64,
}

/// One live subscriber connection's row in the `RZUQ` report — the
/// fleet-ops view of *who* is keeping up: queue depth and outbound
/// buffer occupancy say how far behind the connection is right now,
/// `lag_drops` how much it has already lost, `coalesced_frames` how
/// hard the writer is batching for it, and `claims` the per-TLD serial
/// the server has verifiably streamed it up to (the HELLO claims,
/// advanced as delta frames reach the wire).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireSubscriberStats {
    /// The broker-assigned subscription id.
    pub id: u64,
    /// Messages waiting in the subscriber's broker queue.
    pub queue_depth: u64,
    /// Live pushes dropped for this subscriber under the Lag policy.
    pub lag_drops: u64,
    /// Frames delivered to this connection inside a coalesced batch.
    pub coalesced_frames: u64,
    /// Bytes composed into the connection's outbound ring but not yet
    /// accepted by the socket.
    pub buffered_bytes: u64,
    /// Per-TLD serial reached, in HELLO claim encoding.
    pub claims: Vec<TldClaim>,
}

/// The full `RZUQ` report: server-wide transport counters, one row per
/// registered shard, and one row per live subscriber connection.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsReport {
    pub server: WireServerStats,
    pub shards: Vec<WireShardStats>,
    pub subs: Vec<WireSubscriberStats>,
}

/// Bytes per encoded [`WireShardStats`] row: `u16` TLD + `u32` serial +
/// 13 `u64` counters.
const STATS_SHARD_ROW_LEN: usize = 2 + 4 + 13 * 8;

/// Minimum bytes per encoded [`WireSubscriberStats`] row: 5 `u64`
/// counters + a `u16` claim count (claims add 7 bytes each).
const STATS_SUB_ROW_MIN_LEN: usize = 5 * 8 + 2;

/// Bytes per encoded claim (shared with the HELLO layout).
const CLAIM_LEN: usize = 7;

/// Encode a stats query (the magic is the whole message).
pub fn encode_stats_query() -> Bytes {
    Bytes::copy_from_slice(STATS_MAGIC)
}

/// True when `bytes` is exactly a stats query (a report carries a
/// payload behind the same magic).
pub fn is_stats_query(bytes: &[u8]) -> bool {
    bytes == STATS_MAGIC
}

/// Encode a stats report.
///
/// Layout: `"RZUQ"`, the ten `u64` server counters in
/// [`WireServerStats`] field order, `u16` shard count, then per shard a
/// `u16` TLD, `u32` head serial and the thirteen `u64` counters in
/// [`WireShardStats`] field order; then a `u16` subscriber count and
/// per subscriber the five `u64` counters in [`WireSubscriberStats`]
/// field order followed by a `u16` claim count and its claims in HELLO
/// encoding.
pub fn encode_stats_report(report: &StatsReport) -> Bytes {
    debug_assert!(report.shards.len() <= u16::MAX as usize);
    debug_assert!(report.subs.len() <= u16::MAX as usize);
    let mut buf =
        BytesMut::with_capacity(4 + 80 + 2 + report.shards.len() * STATS_SHARD_ROW_LEN);
    buf.put_slice(STATS_MAGIC);
    let s = &report.server;
    for v in [
        s.accepted,
        s.handshakes,
        s.rejected_hellos,
        s.deltas_sent,
        s.snapshots_sent,
        s.evict_notices,
        s.disconnects,
        s.coalesced_writes,
        s.coalesced_frames,
        s.stats_queries,
    ] {
        buf.put_u64(v);
    }
    buf.put_u16(report.shards.len() as u16);
    for shard in &report.shards {
        buf.put_u16(shard.tld);
        buf.put_u32(shard.head_serial.get());
        for v in [
            shard.subscribers,
            shard.pushes,
            shard.frame_bytes,
            shard.checkpoints,
            shard.retained_deltas,
            shard.retired_deltas,
            shard.deliveries,
            shard.lagged_messages,
            shard.evictions,
            shard.snapshot_catchups,
            shard.delta_catchups,
            shard.lock_contentions,
            shard.coalesced_frames,
        ] {
            buf.put_u64(v);
        }
    }
    buf.put_u16(report.subs.len() as u16);
    for sub in &report.subs {
        debug_assert!(sub.claims.len() <= u16::MAX as usize);
        for v in
            [sub.id, sub.queue_depth, sub.lag_drops, sub.coalesced_frames, sub.buffered_bytes]
        {
            buf.put_u64(v);
        }
        buf.put_u16(sub.claims.len() as u16);
        for claim in &sub.claims {
            buf.put_u16(claim.tld);
            match claim.from_serial {
                Some(s) => {
                    buf.put_u8(1);
                    buf.put_u32(s.get());
                }
                None => {
                    buf.put_u8(0);
                    buf.put_u32(0);
                }
            }
        }
    }
    buf.freeze()
}

/// Decode a frame produced by [`encode_stats_report`]. The entire buffer
/// must be consumed; the shard count is untrusted (each row is exactly
/// [`STATS_SHARD_ROW_LEN`] bytes, so a count the remaining buffer cannot
/// hold is a truncation, caught before any allocation is sized from it).
pub fn decode_stats_report(bytes: &[u8]) -> Result<StatsReport, WireError> {
    let mut dec = Decoder { bytes, pos: 0 };
    if dec.take(4)? != STATS_MAGIC {
        return Err(WireError::BadMagic);
    }
    let server = WireServerStats {
        accepted: dec.u64()?,
        handshakes: dec.u64()?,
        rejected_hellos: dec.u64()?,
        deltas_sent: dec.u64()?,
        snapshots_sent: dec.u64()?,
        evict_notices: dec.u64()?,
        disconnects: dec.u64()?,
        coalesced_writes: dec.u64()?,
        coalesced_frames: dec.u64()?,
        stats_queries: dec.u64()?,
    };
    let count = dec.u16()? as usize;
    if count
        .checked_mul(STATS_SHARD_ROW_LEN)
        .is_none_or(|need| need > dec.remaining())
    {
        return Err(WireError::Truncated);
    }
    let mut shards = Vec::with_capacity(count);
    for _ in 0..count {
        shards.push(WireShardStats {
            tld: dec.u16()?,
            head_serial: Serial::new(dec.u32()?),
            subscribers: dec.u64()?,
            pushes: dec.u64()?,
            frame_bytes: dec.u64()?,
            checkpoints: dec.u64()?,
            retained_deltas: dec.u64()?,
            retired_deltas: dec.u64()?,
            deliveries: dec.u64()?,
            lagged_messages: dec.u64()?,
            evictions: dec.u64()?,
            snapshot_catchups: dec.u64()?,
            delta_catchups: dec.u64()?,
            lock_contentions: dec.u64()?,
            coalesced_frames: dec.u64()?,
        });
    }
    let sub_count = dec.u16()? as usize;
    // Same discipline as the shard rows: a subscriber row costs at least
    // STATS_SUB_ROW_MIN_LEN bytes, so a count the remaining buffer
    // cannot hold is rejected before the Vec is sized from it — and the
    // nested claim count is re-checked per row against what remains.
    if sub_count
        .checked_mul(STATS_SUB_ROW_MIN_LEN)
        .is_none_or(|need| need > dec.remaining())
    {
        return Err(WireError::Truncated);
    }
    let mut subs = Vec::with_capacity(sub_count);
    for _ in 0..sub_count {
        let id = dec.u64()?;
        let queue_depth = dec.u64()?;
        let lag_drops = dec.u64()?;
        let coalesced_frames = dec.u64()?;
        let buffered_bytes = dec.u64()?;
        let claim_count = dec.u16()? as usize;
        if claim_count.checked_mul(CLAIM_LEN).is_none_or(|need| need > dec.remaining()) {
            return Err(WireError::Truncated);
        }
        let mut claims = Vec::with_capacity(claim_count);
        for _ in 0..claim_count {
            let tld = dec.u16()?;
            let has_serial = dec.u8()?;
            let serial = dec.u32()?;
            claims.push(TldClaim {
                tld,
                from_serial: (has_serial != 0).then(|| Serial::new(serial)),
            });
        }
        subs.push(WireSubscriberStats {
            id,
            queue_depth,
            lag_drops,
            coalesced_frames,
            buffered_bytes,
            claims,
        });
    }
    if dec.pos != bytes.len() {
        return Err(WireError::TrailingBytes(bytes.len() - dec.pos));
    }
    Ok(StatsReport { server, shards, subs })
}

// ---------------------------------------------------------------------------
// Membership lookup round trip (`RZUL` / `RZUR`)
//
// The thin-client path: instead of holding a full `RemoteZoneView`
// replica, a client sends a batched `RZUL` request to a query-serving
// edge and gets one `RZUR` answer row per query — delegated or not, at
// which shard serial, and (when the name appeared in a recent delta's
// `added` section) the NRD first-seen timestamp from the edge's hot
// recency window. Both codecs follow the bounded-untrusted-count
// discipline of the frames above.
// ---------------------------------------------------------------------------

/// Magic prefix of a batched membership lookup request.
pub const LOOKUP_REQUEST_MAGIC: &[u8; 4] = b"RZUL";
/// Magic prefix of a batched membership lookup response.
pub const LOOKUP_RESPONSE_MAGIC: &[u8; 4] = b"RZUR";
/// The `u16` TLD sentinel in a [`LookupQuery`] that asks "is this name
/// delegated in *any* TLD the edge serves?" (`contains_anywhere`).
pub const LOOKUP_ANY_TLD: u16 = u16::MAX;

/// One query in an `RZUL` batch: a target TLD (transport-level `u16`,
/// the registry's `TldId` payload, or [`LOOKUP_ANY_TLD`]) and the name
/// whose delegation status is being asked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupQuery {
    pub tld: u16,
    pub name: DomainName,
}

/// One answer row in an `RZUR` batch, positionally matched to the query
/// at the same index in the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LookupAnswer {
    /// Is the name currently delegated (in the queried TLD, or anywhere
    /// for [`LOOKUP_ANY_TLD`] queries)?
    pub present: bool,
    /// The serial of the shard snapshot that answered — the staleness
    /// bound of this row. `None` for [`LOOKUP_ANY_TLD`] queries and for
    /// TLDs the edge does not serve.
    pub serial: Option<Serial>,
    /// When the name appeared in a delta's `added` section, if that
    /// event is still inside the edge's hot NRD-recency window (the
    /// delta's publisher-side `pushed_at`). `None` means "not a recent
    /// NRD as far as this edge remembers", never "not delegated".
    pub first_seen: Option<SimTime>,
}

/// A decoded `RZUR` frame: the echoed request id, the edge epoch that
/// answered (monotonic per edge — a client comparing epochs across
/// responses can tell whether the index advanced between them), and one
/// answer per query in request order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LookupResponse {
    pub request_id: u64,
    pub epoch: u64,
    pub answers: Vec<LookupAnswer>,
}

/// [`LookupAnswer`] flag bits: delegated.
const LOOKUP_F_PRESENT: u8 = 1 << 0;
/// [`LookupAnswer`] flag bits: a `u32` shard serial follows.
const LOOKUP_F_SERIAL: u8 = 1 << 1;
/// [`LookupAnswer`] flag bits: a `u64` NRD first-seen timestamp follows.
const LOOKUP_F_FIRST_SEEN: u8 = 1 << 2;

/// Encode a batched lookup request.
///
/// Layout: `"RZUL"`, `u64` request id, `u16` query count, then per
/// query a `u16` TLD and the name in RFC 1035 label encoding with
/// frame-scoped compression (repeated suffixes across a batch collapse
/// to 2-byte pointers).
pub fn encode_lookup_request(request_id: u64, queries: &[LookupQuery]) -> Bytes {
    debug_assert!(queries.len() <= u16::MAX as usize);
    let mut enc = Encoder::new();
    enc.buf.put_slice(LOOKUP_REQUEST_MAGIC);
    enc.buf.put_u64(request_id);
    enc.buf.put_u16(queries.len() as u16);
    for query in queries {
        enc.buf.put_u16(query.tld);
        enc.name(&query.name);
    }
    enc.buf.freeze()
}

/// Decode a frame produced by [`encode_lookup_request`]. The entire
/// buffer must be consumed. The query count is untrusted: each query
/// costs at least 3 bytes (`u16` TLD + a 1-byte root or pointer-free
/// name), so a count the remaining buffer cannot hold is a truncation,
/// caught before any allocation is sized from it.
pub fn decode_lookup_request(bytes: &[u8]) -> Result<(u64, Vec<LookupQuery>), WireError> {
    let mut dec = Decoder { bytes, pos: 0 };
    if dec.take(4)? != LOOKUP_REQUEST_MAGIC {
        return Err(WireError::BadMagic);
    }
    let request_id = dec.u64()?;
    let count = dec.u16()? as usize;
    if count.checked_mul(3).is_none_or(|need| need > dec.remaining()) {
        return Err(WireError::Truncated);
    }
    let mut queries = Vec::with_capacity(count);
    for _ in 0..count {
        let tld = dec.u16()?;
        let name = dec.name()?;
        queries.push(LookupQuery { tld, name });
    }
    if dec.pos != bytes.len() {
        return Err(WireError::TrailingBytes(bytes.len() - dec.pos));
    }
    Ok((request_id, queries))
}

/// Encode a batched lookup response.
///
/// Layout: `"RZUR"`, `u64` request id, `u64` edge epoch, `u16` answer
/// count, then per answer a `u8` flag byte ([`LOOKUP_F_PRESENT`] |
/// [`LOOKUP_F_SERIAL`] | [`LOOKUP_F_FIRST_SEEN`]) followed by a `u32`
/// serial iff the serial flag is set and a `u64` first-seen timestamp
/// iff the first-seen flag is set — absent fields cost zero bytes, so
/// the common miss row is a single byte.
pub fn encode_lookup_response(
    request_id: u64,
    epoch: u64,
    answers: &[LookupAnswer],
) -> Bytes {
    debug_assert!(answers.len() <= u16::MAX as usize);
    let mut buf = BytesMut::with_capacity(4 + 8 + 8 + 2 + answers.len() * 6);
    buf.put_slice(LOOKUP_RESPONSE_MAGIC);
    buf.put_u64(request_id);
    buf.put_u64(epoch);
    buf.put_u16(answers.len() as u16);
    for answer in answers {
        let mut flags = 0u8;
        if answer.present {
            flags |= LOOKUP_F_PRESENT;
        }
        if answer.serial.is_some() {
            flags |= LOOKUP_F_SERIAL;
        }
        if answer.first_seen.is_some() {
            flags |= LOOKUP_F_FIRST_SEEN;
        }
        buf.put_u8(flags);
        if let Some(serial) = answer.serial {
            buf.put_u32(serial.get());
        }
        if let Some(first_seen) = answer.first_seen {
            buf.put_u64(first_seen.as_secs());
        }
    }
    buf.freeze()
}

/// Decode a frame produced by [`encode_lookup_response`]. The entire
/// buffer must be consumed. The answer count is untrusted: each row
/// costs at least 1 byte (the flag byte), so a count the remaining
/// buffer cannot hold is a truncation, caught before any allocation is
/// sized from it; flag bits outside the three defined ones are a
/// [`WireError::BadFlags`] (a canonical encoder never sets them).
pub fn decode_lookup_response(bytes: &[u8]) -> Result<LookupResponse, WireError> {
    let mut dec = Decoder { bytes, pos: 0 };
    if dec.take(4)? != LOOKUP_RESPONSE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let request_id = dec.u64()?;
    let epoch = dec.u64()?;
    let count = dec.u16()? as usize;
    if count > dec.remaining() {
        return Err(WireError::Truncated);
    }
    let mut answers = Vec::with_capacity(count);
    for _ in 0..count {
        let flags = dec.u8()?;
        if flags & !(LOOKUP_F_PRESENT | LOOKUP_F_SERIAL | LOOKUP_F_FIRST_SEEN) != 0 {
            return Err(WireError::BadFlags(flags));
        }
        let serial = if flags & LOOKUP_F_SERIAL != 0 {
            Some(Serial::new(dec.u32()?))
        } else {
            None
        };
        let first_seen = if flags & LOOKUP_F_FIRST_SEEN != 0 {
            Some(SimTime::from_secs(dec.u64()?))
        } else {
            None
        };
        answers.push(LookupAnswer {
            present: flags & LOOKUP_F_PRESENT != 0,
            serial,
            first_seen,
        });
    }
    if dec.pos != bytes.len() {
        return Err(WireError::TrailingBytes(bytes.len() - dec.pos));
    }
    Ok(LookupResponse { request_id, epoch, answers })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn round_trip(msg: &Message) -> Message {
        Message::decode(&msg.encode()).expect("round trip")
    }

    #[test]
    fn query_round_trip() {
        let q = Message::query(0x1234, name("example.com"), RecordType::Ns);
        let rt = round_trip(&q);
        assert_eq!(rt, q);
        assert!(!rt.header.is_response);
        assert!(rt.header.recursion_desired);
    }

    #[test]
    fn response_with_all_rdata_types_round_trips() {
        let mut msg = Message::query(7, name("example.com"), RecordType::A);
        msg.header = Header::response_to(&msg.header, Rcode::NoError);
        msg.answers = vec![
            ResourceRecord::new(name("example.com"), 60, RData::A("192.0.2.1".parse().unwrap())),
            ResourceRecord::new(name("example.com"), 60, RData::Aaaa("2001:db8::1".parse().unwrap())),
            ResourceRecord::new(name("example.com"), 300, RData::Cname(name("cdn.example.net"))),
            ResourceRecord::new(
                name("example.com"),
                3600,
                RData::Mx { preference: 10, exchange: name("mail.example.com") },
            ),
            ResourceRecord::new(name("example.com"), 3600, RData::Txt(b"v=spf1 -all".to_vec())),
        ];
        msg.authorities = vec![ResourceRecord::new(
            name("com"),
            86400,
            RData::Soa(SoaData {
                mname: name("a.gtld-servers.net"),
                rname: name("nstld.verisign-grs.com"),
                serial: 42,
                refresh: 1800,
                retry: 900,
                expire: 604800,
                minimum: 86400,
            }),
        )];
        msg.additionals = vec![ResourceRecord::new(
            name("mail.example.com"),
            60,
            RData::A("192.0.2.2".parse().unwrap()),
        )];
        assert_eq!(round_trip(&msg), msg);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let mut msg = Message::query(1, name("example.com"), RecordType::Ns);
        msg.header.is_response = true;
        for i in 0..4 {
            msg.answers.push(ResourceRecord::new(
                name("example.com"),
                60,
                RData::Ns(name(&format!("ns{i}.example.com"))),
            ));
        }
        let encoded = msg.encode();
        // Uncompressed, each of the 4 answer owner names alone would be 13
        // bytes; with compression each is a 2-byte pointer.
        let uncompressed_estimate = 12 + 13 + 4 + 4 * (13 + 10 + 18);
        assert!(
            encoded.len() < uncompressed_estimate - 60,
            "no compression benefit: {} vs {}",
            encoded.len(),
            uncompressed_estimate
        );
        assert_eq!(Message::decode(&encoded).unwrap(), msg);
    }

    #[test]
    fn nxdomain_rcode_round_trips() {
        let mut msg = Message::query(9, name("gone.example.com"), RecordType::Ns);
        msg.header = Header::response_to(&msg.header, Rcode::NxDomain);
        let rt = round_trip(&msg);
        assert_eq!(rt.header.rcode, Rcode::NxDomain);
        assert!(rt.header.is_response);
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(Message::decode(&[0u8; 5]), Err(WireError::Truncated));
    }

    #[test]
    fn hostile_qdcount_rejected_before_allocation() {
        // A bare 12-byte header claiming 65535 questions with zero
        // bytes of question data: the decode-bounds rule (L2) must
        // reject it up front, not size a Vec from the hostile count.
        let bytes = vec![0, 7, 0, 0, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0];
        assert_eq!(Message::decode(&bytes), Err(WireError::Truncated));
        // Same header shape with a count the buffer *could* hold still
        // fails cleanly on the missing question body.
        let bytes = vec![0, 7, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 0];
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Message::query(3, name("a.com"), RecordType::A).encode();
        bytes.push(0);
        assert_eq!(Message::decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn pointer_loop_rejected() {
        // Header with QDCOUNT=1, then a name that is a pointer... pointers
        // must point strictly backwards; a self-pointer at offset 12 is a
        // forward pointer by our rule.
        let mut bytes = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        bytes.extend_from_slice(&[0xC0, 12]); // pointer to itself
        bytes.extend_from_slice(&[0, 1, 0, 1]);
        match Message::decode(&bytes) {
            Err(WireError::ForwardPointer { .. }) | Err(WireError::PointerLoop) => {}
            other => panic!("expected pointer error, got {other:?}"),
        }
    }

    #[test]
    fn reserved_label_bits_rejected() {
        let mut bytes = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        bytes.push(0x80); // reserved label type
        match Message::decode(&bytes) {
            Err(WireError::BadLabelType(_)) => {}
            other => panic!("expected BadLabelType, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_qtype_rejected() {
        let msg = Message::query(3, name("a.com"), RecordType::A);
        let mut bytes = msg.encode();
        // QTYPE is the 2 bytes after the name (12 header + 7 name).
        let qtype_pos = 12 + name("a.com").wire_len();
        bytes[qtype_pos] = 0;
        bytes[qtype_pos + 1] = 99;
        assert_eq!(Message::decode(&bytes), Err(WireError::UnsupportedType(99)));
    }

    #[test]
    fn txt_multi_chunk_round_trip() {
        let big = vec![b'x'; 300]; // forces two character-strings
        let mut msg = Message::query(4, name("t.com"), RecordType::Txt);
        msg.header.is_response = true;
        msg.answers = vec![ResourceRecord::new(name("t.com"), 60, RData::Txt(big.clone()))];
        let rt = round_trip(&msg);
        match &rt.answers[0].rdata {
            RData::Txt(bytes) => assert_eq!(bytes, &big),
            other => panic!("expected TXT, got {other:?}"),
        }
    }

    #[test]
    fn empty_txt_round_trip() {
        let mut msg = Message::query(5, name("t.com"), RecordType::Txt);
        msg.header.is_response = true;
        msg.answers = vec![ResourceRecord::new(name("t.com"), 60, RData::Txt(Vec::new()))];
        assert_eq!(round_trip(&msg), msg);
    }

    #[test]
    fn header_flags_round_trip() {
        let mut h = Header::query(0xBEEF);
        h.authoritative = true;
        h.truncated = true;
        h.recursion_available = true;
        h.opcode = 2;
        h.rcode = Rcode::Refused;
        let msg = Message {
            header: h.clone(),
            questions: vec![],
            answers: vec![],
            authorities: vec![],
            additionals: vec![],
        };
        assert_eq!(round_trip(&msg).header, h);
    }

    fn sample_delta() -> ZoneDelta {
        let ns_a = NsSet::new(vec![name("ns1.cloudflare.com"), name("ns2.cloudflare.com")]);
        let ns_b = NsSet::new(vec![name("ns1.domaincontrol.com")]);
        let mut delta = ZoneDelta::default();
        delta.added.push((name("alpha.com"), ns_a.clone()));
        delta.added.push((name("bravo.com"), ns_a.clone()));
        delta.removed.push((name("gone.com"), ns_b.clone()));
        delta.changed.push(NsChange { domain: name("moved.com"), old_ns: ns_b, new_ns: ns_a });
        delta
    }

    #[test]
    fn delta_push_round_trips() {
        let delta = sample_delta();
        let frame = encode_delta_push(
            &name("com"),
            Serial::new(41),
            Serial::new(45),
            SimTime::from_secs(1_234),
            &delta,
        );
        let push = decode_delta_push(&frame).unwrap();
        assert_eq!(push.origin, name("com"));
        assert_eq!(push.from_serial, Serial::new(41));
        assert_eq!(push.to_serial, Serial::new(45));
        assert_eq!(push.pushed_at, SimTime::from_secs(1_234));
        assert_eq!(push.delta, delta);
    }

    #[test]
    fn empty_delta_push_round_trips() {
        let frame = encode_delta_push(
            &name("net"),
            Serial::new(0),
            Serial::new(0),
            SimTime::ZERO,
            &ZoneDelta::default(),
        );
        let push = decode_delta_push(&frame).unwrap();
        assert!(push.delta.is_empty());
        assert_eq!(push.origin, name("net"));
    }

    #[test]
    fn delta_push_frames_share_bytes_on_clone() {
        let frame = encode_delta_push(
            &name("com"),
            Serial::new(1),
            Serial::new(2),
            SimTime::ZERO,
            &sample_delta(),
        );
        let fanned_out = frame.clone();
        assert!(frame.ptr_eq(&fanned_out));
    }

    #[test]
    fn delta_push_compression_collapses_repeated_ns_hosts() {
        // 100 delegations all on the same two NS hosts: with frame-scoped
        // compression each repeated host costs a 2-byte pointer, not a
        // full re-encoding.
        let ns = NsSet::new(vec![name("ns1.cloudflare.com"), name("ns2.cloudflare.com")]);
        let mut delta = ZoneDelta::default();
        for i in 0..100 {
            delta.added.push((name(&format!("domain-{i:03}.com")), ns.clone()));
        }
        let frame = encode_delta_push(
            &name("com"),
            Serial::new(1),
            Serial::new(2),
            SimTime::ZERO,
            &delta,
        );
        // Uncompressed, each entry would carry two ~20-byte host names;
        // compressed, entries after the first carry two 2-byte pointers.
        assert!(frame.len() < 100 * 24, "frame unexpectedly large: {}", frame.len());
        assert_eq!(decode_delta_push(&frame).unwrap().delta, delta);
    }

    #[test]
    fn delta_push_rejects_oversized_counts_without_allocating() {
        // A tiny frame claiming u32::MAX entries must fail cleanly
        // (Truncated), not size allocations from the claimed counts.
        let mut frame = Vec::new();
        frame.extend_from_slice(b"RZU1");
        frame.push(0); // root origin name
        frame.extend_from_slice(&41u32.to_be_bytes()); // from_serial
        frame.extend_from_slice(&42u32.to_be_bytes()); // to_serial
        frame.extend_from_slice(&0u64.to_be_bytes()); // pushed_at
        frame.extend_from_slice(&u32::MAX.to_be_bytes()); // added count
        frame.extend_from_slice(&0u32.to_be_bytes());
        frame.extend_from_slice(&0u32.to_be_bytes());
        assert_eq!(decode_delta_push(&frame), Err(WireError::Truncated));
    }

    #[test]
    fn delta_push_rejects_bad_magic_and_truncation() {
        assert_eq!(decode_delta_push(b"NOPE"), Err(WireError::BadMagic));
        assert_eq!(decode_delta_push(b"RZ"), Err(WireError::Truncated));
        let frame = encode_delta_push(
            &name("com"),
            Serial::new(1),
            Serial::new(2),
            SimTime::ZERO,
            &sample_delta(),
        );
        assert_eq!(decode_delta_push(&frame[..frame.len() - 3]), Err(WireError::Truncated));
        let mut padded = frame.to_vec();
        padded.push(0);
        assert_eq!(decode_delta_push(&padded), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn hello_round_trips_with_mixed_claims() {
        let claims = vec![
            TldClaim { tld: 0, from_serial: Some(Serial::new(41)) },
            TldClaim { tld: 7, from_serial: None },
            TldClaim { tld: u16::MAX, from_serial: Some(Serial::new(u32::MAX)) },
        ];
        let frame = encode_hello(&claims);
        assert_eq!(decode_hello(&frame).unwrap(), claims);
        // Empty claim lists are legal (a fresh join names TLDs elsewhere).
        assert_eq!(decode_hello(&encode_hello(&[])).unwrap(), vec![]);
    }

    #[test]
    fn hello_rejects_oversized_count_bad_magic_and_trailing() {
        let mut tiny = Vec::new();
        tiny.extend_from_slice(HELLO_MAGIC);
        tiny.extend_from_slice(&u16::MAX.to_be_bytes());
        assert_eq!(decode_hello(&tiny), Err(WireError::Truncated));
        assert_eq!(decode_hello(b"NOPE"), Err(WireError::BadMagic));
        let mut padded = encode_hello(&[TldClaim { tld: 1, from_serial: None }]).to_vec();
        padded.push(9);
        assert_eq!(decode_hello(&padded), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn hello_frame_round_trips_resume_claims_and_stays_legacy_compatible() {
        let claims = vec![
            TldClaim { tld: 2, from_serial: Some(Serial::new(9)) },
            TldClaim { tld: 5, from_serial: None },
        ];
        // No resume section: byte-identical to the legacy encoder, and
        // both decoders accept it.
        assert_eq!(encode_hello_frame(&claims, &[]), encode_hello(&claims));
        let legacy = decode_hello_frame(&encode_hello(&claims)).unwrap();
        assert_eq!(legacy.claims, claims);
        assert!(legacy.resume.is_empty());

        let resume = vec![
            (5u16, SnapshotResume { serial: Serial::new(40), entries: 128 }),
            (2u16, SnapshotResume { serial: Serial::new(u32::MAX), entries: 0 }),
        ];
        let frame = encode_hello_frame(&claims, &resume);
        let decoded = decode_hello_frame(&frame).unwrap();
        assert_eq!(decoded.claims, claims);
        assert_eq!(decoded.resume, resume);
        // The strict legacy decoder refuses the extended section rather
        // than silently dropping it.
        assert!(matches!(decode_hello(&frame), Err(WireError::TrailingBytes(_))));
    }

    #[test]
    fn hello_frame_rejects_oversized_resume_count_and_trailing() {
        let mut frame =
            encode_hello_frame(&[], &[(1, SnapshotResume { serial: Serial::new(1), entries: 1 })])
                .to_vec();
        // One trailing byte after the resume rows is a scope byte — an
        // unknown scope value is rejected outright.
        frame.push(9);
        assert_eq!(decode_hello_frame(&frame), Err(WireError::BadMagic));
        // Bytes *after* a valid scope byte are trailing garbage.
        frame.pop();
        frame.push(0);
        frame.push(0);
        assert_eq!(decode_hello_frame(&frame), Err(WireError::TrailingBytes(1)));
        let mut oversized = encode_hello(&[]).to_vec();
        oversized.extend_from_slice(&u16::MAX.to_be_bytes()); // resume count
        assert_eq!(decode_hello_frame(&oversized), Err(WireError::Truncated));
    }

    #[test]
    fn hello_scope_round_trips_and_full_scope_stays_legacy_identical() {
        let claims = vec![TldClaim { tld: 3, from_serial: Some(Serial::new(7)) }];
        // Full scope emits no scope section: byte-identical to the
        // unscoped encoder at every resume arity.
        assert_eq!(
            encode_hello_scoped(&claims, &[], HelloScope::Full),
            encode_hello_frame(&claims, &[])
        );
        let resume = vec![(3u16, SnapshotResume { serial: Serial::new(7), entries: 64 })];
        assert_eq!(
            encode_hello_scoped(&claims, &resume, HelloScope::Full),
            encode_hello_frame(&claims, &resume)
        );

        // Delta-only round-trips with and without resume rows; the
        // resume section is forced (count 0) so the scope byte is
        // unambiguous.
        for resume in [&[][..], &resume[..]] {
            let frame = encode_hello_scoped(&claims, resume, HelloScope::DeltaOnly);
            let decoded = decode_hello_frame(&frame).unwrap();
            assert_eq!(decoded.claims, claims);
            assert_eq!(decoded.resume, resume);
            assert_eq!(decoded.scope, HelloScope::DeltaOnly);
        }
        // Legacy frames decode with the default Full scope.
        assert_eq!(decode_hello_frame(&encode_hello(&claims)).unwrap().scope, HelloScope::Full);
    }

    #[test]
    fn snapshot_chunks_round_trip_and_reassemble() {
        let entries: Vec<_> = (0..64)
            .map(|i| {
                (
                    name(&format!("domain-{i:03}.com")),
                    vec![name("ns1.cloudflare.com"), name("ns2.cloudflare.com")],
                )
            })
            .collect();
        let snap = crate::snapshot::ZoneSnapshot::from_entries(
            name("com"),
            Serial::new(33),
            SimTime::from_secs(120),
            entries,
        );
        // A tiny byte target forces many chunks; the sequence must tile
        // the snapshot exactly and reassemble to an equal snapshot.
        let frames = encode_snapshot_chunks(7, &snap, 0, 256);
        assert!(frames.len() > 1, "byte target must force splitting");
        let mut rebuilt = Vec::new();
        let mut expected_offset = 0u32;
        for (i, frame) in frames.iter().enumerate() {
            assert!(frame.len() <= 256 + 1024, "chunk overshoot is bounded by one entry");
            let chunk = decode_snapshot_chunk(frame).unwrap();
            assert_eq!(chunk.tld, 7);
            assert_eq!(chunk.serial, Serial::new(33));
            assert_eq!(chunk.total as usize, snap.len());
            assert_eq!(chunk.offset, expected_offset);
            assert_eq!(chunk.last, i == frames.len() - 1);
            expected_offset += chunk.entries.len() as u32;
            rebuilt.extend(chunk.entries);
        }
        assert_eq!(expected_offset as usize, snap.len());
        let reassembled = crate::snapshot::ZoneSnapshot::from_entries(
            name("com"),
            Serial::new(33),
            SimTime::from_secs(120),
            rebuilt,
        );
        assert_eq!(reassembled, snap);

        // A resume offset mid-snapshot starts the sequence there.
        let resumed = encode_snapshot_chunks(7, &snap, 40, 256);
        let first = decode_snapshot_chunk(&resumed[0]).unwrap();
        assert_eq!(first.offset, 40);
        let total: usize = resumed
            .iter()
            .map(|f| decode_snapshot_chunk(f).unwrap().entries.len())
            .sum();
        assert_eq!(total, snap.len() - 40);

        // Empty snapshots (and exhausted resume offsets) still produce
        // one final zero-entry chunk so the receiver sees completion.
        let empty = crate::snapshot::ZoneSnapshot::from_entries(
            name("com"),
            Serial::new(1),
            SimTime::ZERO,
            vec![],
        );
        let frames = encode_snapshot_chunks(7, &empty, 0, 256);
        assert_eq!(frames.len(), 1);
        let chunk = decode_snapshot_chunk(&frames[0]).unwrap();
        assert!(chunk.last && chunk.entries.is_empty() && chunk.total == 0);
    }

    #[test]
    fn snapshot_chunk_rejects_inconsistent_bookkeeping() {
        let snap = crate::snapshot::ZoneSnapshot::from_entries(
            name("com"),
            Serial::new(2),
            SimTime::ZERO,
            vec![(name("a.com"), vec![name("ns1.x.net")])],
        );
        let good = encode_snapshot_chunks(1, &snap, 0, 4096).remove(0);
        assert!(decode_snapshot_chunk(&good).unwrap().last);

        // Oversized untrusted count: rejected before allocation.
        let mut oversized = Vec::new();
        oversized.extend_from_slice(SNAPSHOT_CHUNK_MAGIC);
        oversized.extend_from_slice(&0u16.to_be_bytes()); // tld
        oversized.push(0); // root origin
        oversized.extend_from_slice(&1u32.to_be_bytes()); // serial
        oversized.extend_from_slice(&0u64.to_be_bytes()); // taken_at
        oversized.extend_from_slice(&u32::MAX.to_be_bytes()); // total
        oversized.extend_from_slice(&0u32.to_be_bytes()); // offset
        oversized.push(0); // flags
        oversized.extend_from_slice(&u32::MAX.to_be_bytes()); // count
        assert_eq!(decode_snapshot_chunk(&oversized), Err(WireError::Truncated));

        // Unknown flag bits are refused.
        let mut bad_flags = good.to_vec();
        let flags_at = good.len() - 4 - 1 - snapshot_chunk_entry_bytes(&good);
        bad_flags[flags_at] |= 0x80;
        assert_eq!(decode_snapshot_chunk(&bad_flags), Err(WireError::BadFlags(0x81)));

        // A last flag that disagrees with offset+count == total.
        let mut not_last = good.to_vec();
        not_last[flags_at] = 0;
        assert!(matches!(
            decode_snapshot_chunk(&not_last),
            Err(WireError::BadChunk { offset: 0, count: 1, total: 1 })
        ));
    }

    /// Byte length of the entry section of the single-entry chunk frame
    /// built above (everything after flags + count), used to locate the
    /// flags byte from the tail.
    fn snapshot_chunk_entry_bytes(frame: &[u8]) -> usize {
        // "a.com" compresses against the origin ("a" label + pointer,
        // 4 bytes) + u16 ns count + uncompressed "ns1.x.net" (11 bytes).
        let _ = frame;
        4 + 2 + 11
    }

    #[test]
    fn snapshot_push_round_trips() {
        let snap = crate::snapshot::ZoneSnapshot::from_entries(
            name("com"),
            Serial::new(17),
            SimTime::from_secs(900),
            vec![
                (name("alpha.com"), vec![name("ns1.cloudflare.com"), name("ns2.cloudflare.com")]),
                (name("bravo.com"), vec![name("ns1.cloudflare.com")]),
            ],
        );
        let frame = encode_snapshot_push(3, &snap);
        let (tld, decoded) = decode_snapshot_push(&frame).unwrap();
        assert_eq!(tld, 3);
        assert_eq!(decoded, snap);
    }

    #[test]
    fn snapshot_push_rejects_oversized_counts_without_allocating() {
        let mut frame = Vec::new();
        frame.extend_from_slice(SNAPSHOT_PUSH_MAGIC);
        frame.extend_from_slice(&0u16.to_be_bytes()); // tld
        frame.push(0); // root origin
        frame.extend_from_slice(&1u32.to_be_bytes()); // serial
        frame.extend_from_slice(&0u64.to_be_bytes()); // taken_at
        frame.extend_from_slice(&u32::MAX.to_be_bytes()); // entry count
        assert_eq!(decode_snapshot_push(&frame), Err(WireError::Truncated));
    }

    #[test]
    fn delta_envelope_wraps_rzu1_verbatim() {
        let delta = sample_delta();
        let rzu1 = encode_delta_push(
            &name("com"),
            Serial::new(4),
            Serial::new(5),
            SimTime::from_secs(60),
            &delta,
        );
        let mut frame = delta_envelope_header(9).to_vec();
        frame.extend_from_slice(&rzu1);
        let (tld, push) = decode_delta_envelope(&frame).unwrap();
        assert_eq!(tld, 9);
        assert_eq!(push.delta, delta);
        assert_eq!(push.from_serial, Serial::new(4));
        // A corrupt embedded frame surfaces as the inner codec's error.
        assert_eq!(decode_delta_envelope(&frame[..frame.len() - 2]), Err(WireError::Truncated));
        assert_eq!(decode_delta_envelope(b"RZUD"), Err(WireError::Truncated));
    }

    #[test]
    fn evict_notice_is_recognised() {
        assert!(is_evict_notice(&encode_evict_notice()));
        assert!(!is_evict_notice(b"RZUD"));
        assert!(!is_evict_notice(b""));
    }

    fn sample_stats_report() -> StatsReport {
        StatsReport {
            server: WireServerStats {
                accepted: 9,
                handshakes: 8,
                rejected_hellos: 1,
                deltas_sent: 1_234,
                snapshots_sent: 8,
                evict_notices: 2,
                disconnects: 3,
                coalesced_writes: 40,
                coalesced_frames: 120,
                stats_queries: 5,
            },
            shards: vec![
                WireShardStats {
                    tld: 0,
                    head_serial: Serial::new(700),
                    subscribers: 8,
                    pushes: 700,
                    frame_bytes: 1 << 20,
                    checkpoints: 40,
                    retained_deltas: 16,
                    retired_deltas: 684,
                    deliveries: 5_600,
                    lagged_messages: 12,
                    evictions: 1,
                    snapshot_catchups: 8,
                    delta_catchups: 3,
                    lock_contentions: 0,
                    coalesced_frames: 90,
                },
                WireShardStats {
                    tld: u16::MAX,
                    head_serial: Serial::new(u32::MAX),
                    subscribers: 0,
                    pushes: 0,
                    frame_bytes: 0,
                    checkpoints: 0,
                    retained_deltas: 0,
                    retired_deltas: 0,
                    deliveries: 0,
                    lagged_messages: 0,
                    evictions: 0,
                    snapshot_catchups: 0,
                    delta_catchups: 0,
                    lock_contentions: u64::MAX,
                    coalesced_frames: 0,
                },
            ],
            subs: vec![
                WireSubscriberStats {
                    id: 42,
                    queue_depth: 3,
                    lag_drops: 1,
                    coalesced_frames: 17,
                    buffered_bytes: 4096,
                    claims: vec![
                        TldClaim { tld: 0, from_serial: Some(Serial::new(699)) },
                        TldClaim { tld: u16::MAX, from_serial: None },
                    ],
                },
                WireSubscriberStats {
                    id: u64::MAX,
                    queue_depth: 0,
                    lag_drops: 0,
                    coalesced_frames: 0,
                    buffered_bytes: 0,
                    claims: vec![],
                },
            ],
        }
    }

    #[test]
    fn stats_report_round_trips() {
        let report = sample_stats_report();
        let frame = encode_stats_report(&report);
        assert_eq!(decode_stats_report(&frame).unwrap(), report);
        // Empty shard lists are legal (a server with no shards yet).
        let empty = StatsReport::default();
        assert_eq!(decode_stats_report(&encode_stats_report(&empty)).unwrap(), empty);
    }

    #[test]
    fn stats_query_and_report_share_the_magic_but_not_the_shape() {
        assert!(is_stats_query(&encode_stats_query()));
        assert!(!is_stats_query(&encode_stats_report(&sample_stats_report())));
        assert!(!is_stats_query(b"RZUH"));
        // A bare query is not a decodable report.
        assert_eq!(decode_stats_report(&encode_stats_query()), Err(WireError::Truncated));
    }

    #[test]
    fn stats_report_rejects_oversized_count_bad_magic_and_trailing() {
        let mut tiny = Vec::new();
        tiny.extend_from_slice(STATS_MAGIC);
        tiny.extend_from_slice(&[0u8; 80]); // server counters
        tiny.extend_from_slice(&u16::MAX.to_be_bytes()); // absurd shard count
        assert_eq!(decode_stats_report(&tiny), Err(WireError::Truncated));
        assert_eq!(decode_stats_report(b"NOPE"), Err(WireError::BadMagic));
        let mut padded = encode_stats_report(&sample_stats_report()).to_vec();
        padded.push(0);
        assert_eq!(decode_stats_report(&padded), Err(WireError::TrailingBytes(1)));
        let frame = encode_stats_report(&sample_stats_report());
        assert_eq!(decode_stats_report(&frame[..frame.len() - 1]), Err(WireError::Truncated));
    }

    #[test]
    fn stats_report_rejects_absurd_subscriber_and_claim_counts() {
        // A report with no shards, an absurd subscriber count: rejected
        // before the row Vec is sized from it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(STATS_MAGIC);
        bytes.extend_from_slice(&[0u8; 80]); // server counters
        bytes.extend_from_slice(&0u16.to_be_bytes()); // shard count
        let mut absurd_subs = bytes.clone();
        absurd_subs.extend_from_slice(&u16::MAX.to_be_bytes());
        assert_eq!(decode_stats_report(&absurd_subs), Err(WireError::Truncated));

        // One subscriber row whose nested claim count overruns what
        // remains: the per-row bound catches it.
        let mut absurd_claims = bytes.clone();
        absurd_claims.extend_from_slice(&1u16.to_be_bytes()); // sub count
        absurd_claims.extend_from_slice(&[0u8; 40]); // five u64 counters
        absurd_claims.extend_from_slice(&u16::MAX.to_be_bytes()); // claim count
        assert_eq!(decode_stats_report(&absurd_claims), Err(WireError::Truncated));

        // A report truncated inside a claim is a truncation, not a
        // partial decode.
        let frame = encode_stats_report(&sample_stats_report());
        assert_eq!(decode_stats_report(&frame[..frame.len() - 3]), Err(WireError::Truncated));

        // The sub section is mandatory: a report that stops after the
        // shard rows (the pre-subscriber-row layout) no longer decodes.
        assert_eq!(decode_stats_report(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn delta_push_serial_peek_matches_full_decode() {
        let mut delta = crate::ZoneDelta::default();
        delta
            .added
            .push((name("example.com"), crate::NsSet::new(vec![name("ns1.provider0.net")])));
        let frame = encode_delta_push(
            &name("com"),
            Serial::new(41),
            Serial::new(42),
            SimTime::from_secs(7),
            &delta,
        );
        assert_eq!(
            peek_delta_push_serials(&frame).unwrap(),
            (Serial::new(41), Serial::new(42))
        );
        let full = decode_delta_push(&frame).unwrap();
        assert_eq!((full.from_serial, full.to_serial), (Serial::new(41), Serial::new(42)));
        assert_eq!(peek_delta_push_serials(b"RZUS"), Err(WireError::BadMagic));
        assert_eq!(peek_delta_push_serials(&frame[..6]), Err(WireError::Truncated));
    }

    #[test]
    fn lookup_request_round_trips() {
        let queries = vec![
            LookupQuery { tld: 0, name: name("example.com") },
            LookupQuery { tld: 3, name: name("a-rather-long-registration-label.net") },
            LookupQuery { tld: LOOKUP_ANY_TLD, name: name("example.com") },
        ];
        let frame = encode_lookup_request(0xDEAD_BEEF_0BAD_CAFE, &queries);
        let (id, decoded) = decode_lookup_request(&frame).unwrap();
        assert_eq!(id, 0xDEAD_BEEF_0BAD_CAFE);
        assert_eq!(decoded, queries);
        // Frame-scoped compression: the repeated example.com collapses
        // to a 2-byte pointer, so the frame is smaller than two full
        // encodings of it plus the long name.
        assert!(frame.len() < 4 + 8 + 2 + 3 * 2 + 2 * 13 + 38);
        // Empty batches are legal (a keepalive-shaped probe).
        let empty = encode_lookup_request(7, &[]);
        assert_eq!(decode_lookup_request(&empty).unwrap(), (7, vec![]));
    }

    #[test]
    fn lookup_request_rejects_bad_magic_truncation_and_trailing() {
        assert_eq!(decode_lookup_request(b"NOPE"), Err(WireError::BadMagic));
        assert_eq!(decode_lookup_request(b"RZUL"), Err(WireError::Truncated));
        // An absurd query count is rejected before any allocation.
        let mut absurd = Vec::new();
        absurd.extend_from_slice(LOOKUP_REQUEST_MAGIC);
        absurd.extend_from_slice(&7u64.to_be_bytes());
        absurd.extend_from_slice(&u16::MAX.to_be_bytes());
        assert_eq!(decode_lookup_request(&absurd), Err(WireError::Truncated));
        let queries = [LookupQuery { tld: 1, name: name("example.com") }];
        let frame = encode_lookup_request(1, &queries);
        assert_eq!(decode_lookup_request(&frame[..frame.len() - 1]), Err(WireError::Truncated));
        let mut padded = frame.to_vec();
        padded.push(0);
        assert_eq!(decode_lookup_request(&padded), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn lookup_response_round_trips() {
        let answers = vec![
            LookupAnswer { present: true, serial: Some(Serial::new(42)), first_seen: None },
            LookupAnswer {
                present: true,
                serial: Some(Serial::new(u32::MAX)),
                first_seen: Some(SimTime::from_secs(u64::MAX)),
            },
            LookupAnswer { present: false, serial: None, first_seen: None },
            LookupAnswer { present: false, serial: Some(Serial::new(0)), first_seen: None },
        ];
        let frame = encode_lookup_response(99, 12, &answers);
        let decoded = decode_lookup_response(&frame).unwrap();
        assert_eq!(decoded.request_id, 99);
        assert_eq!(decoded.epoch, 12);
        assert_eq!(decoded.answers, answers);
        // The common miss row costs exactly one byte.
        let misses = vec![LookupAnswer::default(); 3];
        let frame = encode_lookup_response(0, 0, &misses);
        assert_eq!(frame.len(), 4 + 8 + 8 + 2 + 3);
        assert_eq!(decode_lookup_response(&frame).unwrap().answers, misses);
    }

    #[test]
    fn lookup_response_rejects_bad_magic_flags_truncation_and_trailing() {
        assert_eq!(decode_lookup_response(b"NOPE"), Err(WireError::BadMagic));
        assert_eq!(decode_lookup_response(b"RZUR"), Err(WireError::Truncated));
        let mut absurd = Vec::new();
        absurd.extend_from_slice(LOOKUP_RESPONSE_MAGIC);
        absurd.extend_from_slice(&0u64.to_be_bytes());
        absurd.extend_from_slice(&0u64.to_be_bytes());
        absurd.extend_from_slice(&u16::MAX.to_be_bytes());
        assert_eq!(decode_lookup_response(&absurd), Err(WireError::Truncated));
        // Undefined flag bits are rejected, not silently masked.
        let mut bad_flags = absurd[..4 + 8 + 8].to_vec();
        bad_flags.extend_from_slice(&1u16.to_be_bytes());
        bad_flags.push(0x80);
        assert_eq!(decode_lookup_response(&bad_flags), Err(WireError::BadFlags(0x80)));
        let answers =
            [LookupAnswer { present: true, serial: Some(Serial::new(5)), first_seen: None }];
        let frame = encode_lookup_response(3, 1, &answers);
        assert_eq!(
            decode_lookup_response(&frame[..frame.len() - 1]),
            Err(WireError::Truncated)
        );
        let mut padded = frame.to_vec();
        padded.push(0);
        assert_eq!(decode_lookup_response(&padded), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn root_name_encodes_as_single_zero() {
        let mut msg = Message::query(1, DomainName::root(), RecordType::Ns);
        msg.header.is_response = false;
        let encoded = msg.encode();
        assert_eq!(encoded.len(), 12 + 1 + 4);
        assert_eq!(round_trip(&msg), msg);
    }
}
