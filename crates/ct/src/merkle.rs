//! An append-only Merkle tree with RFC 6962 structure.
//!
//! CT logs commit to their contents with a Merkle tree: leaves are hashed
//! with a `0x00` prefix, interior nodes with a `0x01` prefix, and the tree
//! over `n` leaves splits at the largest power of two smaller than `n`
//! (RFC 6962 §2.1). Inclusion proofs follow the same recursion.
//!
//! **Hash function**: the real structure uses SHA-256; the allowed
//! dependency set has no cryptographic hash, so this tree uses a 128-bit
//! construction built from two independent 64-bit FNV-1a passes. It is
//! collision-resistant against accident, not adversaries — sufficient for
//! a simulation whose purpose is to exercise the data structure and its
//! proofs, and the distinction is documented here and in DESIGN.md.

/// A 128-bit node hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeHash(pub [u8; 16]);

fn fnv64(seed: u64, bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Final avalanche so near-equal inputs spread.
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash_with_prefix(prefix: u8, data: &[u8]) -> NodeHash {
    let a = fnv64(0x5151_5151, std::iter::once(prefix).chain(data.iter().copied()));
    let b = fnv64(0xA3A3_A3A3, std::iter::once(prefix).chain(data.iter().copied()));
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&a.to_be_bytes());
    out[8..].copy_from_slice(&b.to_be_bytes());
    NodeHash(out)
}

/// Leaf hash: `H(0x00 || leaf_bytes)`.
pub fn leaf_hash(data: &[u8]) -> NodeHash {
    hash_with_prefix(0x00, data)
}

/// Interior hash: `H(0x01 || left || right)`.
pub fn node_hash(left: NodeHash, right: NodeHash) -> NodeHash {
    let mut buf = [0u8; 32];
    buf[..16].copy_from_slice(&left.0);
    buf[16..].copy_from_slice(&right.0);
    hash_with_prefix(0x01, &buf)
}

/// One step of an inclusion proof: the sibling hash and which side it is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofStep {
    /// Sibling is on the left: parent = H(sibling, current).
    Left(NodeHash),
    /// Sibling is on the right: parent = H(current, sibling).
    Right(NodeHash),
}

/// An append-only Merkle tree over opaque leaf byte strings.
#[derive(Debug, Default)]
pub struct MerkleTree {
    leaves: Vec<NodeHash>,
}

impl MerkleTree {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a leaf, returning its index.
    pub fn append(&mut self, leaf_bytes: &[u8]) -> usize {
        self.leaves.push(leaf_hash(leaf_bytes));
        self.leaves.len() - 1
    }

    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Root over the current leaves.
    ///
    /// # Panics
    /// Panics on an empty tree (RFC 6962 defines the empty root as the
    /// hash of the empty string, but no caller here needs it and the
    /// explicit panic catches bugs earlier).
    pub fn root(&self) -> NodeHash {
        assert!(!self.leaves.is_empty(), "root of empty tree");
        Self::subtree_root(&self.leaves)
    }

    fn subtree_root(leaves: &[NodeHash]) -> NodeHash {
        match leaves.len() {
            1 => leaves[0],
            n => {
                let split = largest_power_of_two_below(n);
                node_hash(
                    Self::subtree_root(&leaves[..split]),
                    Self::subtree_root(&leaves[split..]),
                )
            }
        }
    }

    /// Inclusion proof for leaf `index` against the current root.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn inclusion_proof(&self, index: usize) -> Vec<ProofStep> {
        assert!(index < self.leaves.len(), "leaf index out of range");
        let mut proof = Vec::new();
        Self::build_proof(&self.leaves, index, &mut proof);
        proof
    }

    fn build_proof(leaves: &[NodeHash], index: usize, proof: &mut Vec<ProofStep>) {
        if leaves.len() == 1 {
            return;
        }
        let split = largest_power_of_two_below(leaves.len());
        if index < split {
            Self::build_proof(&leaves[..split], index, proof);
            proof.push(ProofStep::Right(Self::subtree_root(&leaves[split..])));
        } else {
            Self::build_proof(&leaves[split..], index - split, proof);
            proof.push(ProofStep::Left(Self::subtree_root(&leaves[..split])));
        }
    }

    /// Verify an inclusion proof.
    pub fn verify_inclusion(leaf_bytes: &[u8], proof: &[ProofStep], root: NodeHash) -> bool {
        let mut current = leaf_hash(leaf_bytes);
        for step in proof {
            current = match step {
                ProofStep::Left(sibling) => node_hash(*sibling, current),
                ProofStep::Right(sibling) => node_hash(current, *sibling),
            };
        }
        current == root
    }
}

/// Largest power of two strictly less than `n` (n >= 2), per RFC 6962.
fn largest_power_of_two_below(n: usize) -> usize {
    debug_assert!(n >= 2);
    let mut p = 1usize;
    while p * 2 < n {
        p *= 2;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_points_match_rfc6962() {
        assert_eq!(largest_power_of_two_below(2), 1);
        assert_eq!(largest_power_of_two_below(3), 2);
        assert_eq!(largest_power_of_two_below(4), 2);
        assert_eq!(largest_power_of_two_below(5), 4);
        assert_eq!(largest_power_of_two_below(8), 4);
        assert_eq!(largest_power_of_two_below(9), 8);
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let mut t = MerkleTree::new();
        t.append(b"hello");
        assert_eq!(t.root(), leaf_hash(b"hello"));
    }

    #[test]
    fn root_changes_with_each_append() {
        let mut t = MerkleTree::new();
        let mut roots = Vec::new();
        for i in 0..20u32 {
            t.append(&i.to_be_bytes());
            roots.push(t.root());
        }
        for w in roots.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn inclusion_proofs_verify_for_all_leaves() {
        let leaves: Vec<Vec<u8>> = (0..13u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let mut t = MerkleTree::new();
        for l in &leaves {
            t.append(l);
        }
        let root = t.root();
        for (i, l) in leaves.iter().enumerate() {
            let proof = t.inclusion_proof(i);
            assert!(
                MerkleTree::verify_inclusion(l, &proof, root),
                "proof failed for leaf {i}"
            );
        }
    }

    #[test]
    fn wrong_leaf_fails_verification() {
        let mut t = MerkleTree::new();
        for i in 0..8u32 {
            t.append(&i.to_be_bytes());
        }
        let proof = t.inclusion_proof(3);
        assert!(!MerkleTree::verify_inclusion(b"not-a-leaf", &proof, t.root()));
    }

    #[test]
    fn tampered_proof_fails_verification() {
        let mut t = MerkleTree::new();
        for i in 0..8u32 {
            t.append(&i.to_be_bytes());
        }
        let mut proof = t.inclusion_proof(3);
        // Flip a byte in the first sibling hash.
        match &mut proof[0] {
            ProofStep::Left(h) | ProofStep::Right(h) => h.0[0] ^= 0xFF,
        }
        assert!(!MerkleTree::verify_inclusion(&3u32.to_be_bytes(), &proof, t.root()));
    }

    #[test]
    fn proof_length_is_logarithmic() {
        let mut t = MerkleTree::new();
        for i in 0..1024u32 {
            t.append(&i.to_be_bytes());
        }
        assert_eq!(t.inclusion_proof(0).len(), 10);
        assert_eq!(t.inclusion_proof(1023).len(), 10);
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // The 0x00/0x01 prefixes must prevent a leaf from colliding with
        // an interior node over the same bytes.
        let data = [0u8; 32];
        let as_leaf = leaf_hash(&data);
        let halves = (NodeHash([0u8; 16]), NodeHash([0u8; 16]));
        let as_node = node_hash(halves.0, halves.1);
        assert_ne!(as_leaf, as_node);
    }

    #[test]
    #[should_panic(expected = "root of empty tree")]
    fn empty_root_panics() {
        MerkleTree::new().root();
    }
}
