//! The certificate-authority fleet.
//!
//! Two CA behaviours shape the paper's data:
//!
//! 1. **Issuance latency** — a domain can only pass Domain Validation once
//!    it is resolvable, i.e. after its TLD zone push; the CA then takes
//!    minutes to issue and log the precertificate. Per-CA log-normal
//!    latency plus the TLD cadence produces Figure 1's per-TLD curves.
//! 2. **DV-token reuse** — CA/Browser-Forum rules (§4.2.1) allow a CA to
//!    reuse cached validation material for up to 398 days. A CA holding a
//!    token may therefore issue for a domain that has since been deleted —
//!    the mechanism behind ghost certificates.

use crate::cert::CaId;
use darkdns_sim::dist::LogNormal;
use darkdns_sim::time::{SimDuration, SimTime, SECS_PER_DAY};
use rand::Rng;
use serde::Serialize;

/// Maximum DV-token cache age (CA/Browser Forum baseline requirements).
pub const DV_TOKEN_MAX_AGE_DAYS: u64 = 398;

/// One CA's issuance profile.
#[derive(Debug, Clone, Serialize)]
pub struct CaProfile {
    pub id: CaId,
    pub name: String,
    /// Median seconds from "domain resolvable" to "precert logged".
    pub latency_median_secs: f64,
    pub latency_sigma: f64,
    /// Whether this CA reuses cached DV tokens (all three CAs the paper
    /// contacted — GlobalSign, Sectigo, Cloudflare — confirmed they do).
    pub reuses_dv_tokens: bool,
}

impl CaProfile {
    fn latency(&self) -> LogNormal {
        LogNormal::from_median(self.latency_median_secs, self.latency_sigma)
    }

    /// Sample the delay from resolvability to precert logging.
    pub fn sample_latency<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        SimDuration::from_secs(self.latency().sample(rng).clamp(5.0, 6.0 * 3_600.0) as u64)
    }
}

/// The CA population with issuance-share weights.
#[derive(Debug, Clone)]
pub struct CaFleet {
    profiles: Vec<CaProfile>,
    shares: darkdns_sim::dist::WeightedIndex,
}

impl CaFleet {
    /// A plausible fleet: one dominant automated CA (Let's-Encrypt-like,
    /// fast), a CDN-integrated CA, and two slower enterprise CAs.
    pub fn paper_fleet() -> Self {
        let profiles = vec![
            CaProfile {
                id: CaId(0),
                name: "AutoCert".to_owned(),
                latency_median_secs: 18.0 * 60.0,
                latency_sigma: 1.1,
                reuses_dv_tokens: true,
            },
            CaProfile {
                id: CaId(1),
                name: "EdgeTrust".to_owned(),
                latency_median_secs: 35.0 * 60.0,
                latency_sigma: 1.2,
                reuses_dv_tokens: true,
            },
            CaProfile {
                id: CaId(2),
                name: "GlobalSecure".to_owned(),
                latency_median_secs: 80.0 * 60.0,
                latency_sigma: 1.3,
                reuses_dv_tokens: true,
            },
            CaProfile {
                id: CaId(3),
                name: "LegacyTrust".to_owned(),
                latency_median_secs: 170.0 * 60.0,
                latency_sigma: 1.4,
                reuses_dv_tokens: false,
            },
        ];
        let shares = darkdns_sim::dist::WeightedIndex::new(&[55.0, 20.0, 15.0, 10.0]);
        CaFleet { profiles, shares }
    }

    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    pub fn get(&self, id: CaId) -> &CaProfile {
        &self.profiles[id.0 as usize]
    }

    pub fn profiles(&self) -> &[CaProfile] {
        &self.profiles
    }

    /// Sample the issuing CA for a new certificate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &CaProfile {
        &self.profiles[self.shares.sample(rng)]
    }

    /// Sample a CA that reuses DV tokens (for ghost issuance).
    pub fn sample_token_reuser<R: Rng + ?Sized>(&self, rng: &mut R) -> &CaProfile {
        loop {
            let ca = self.sample(rng);
            if ca.reuses_dv_tokens {
                return ca;
            }
        }
    }
}

/// Is a DV token obtained at `validated_at` still usable at `now`?
pub fn dv_token_valid(validated_at: SimTime, now: SimTime) -> bool {
    now >= validated_at
        && now.saturating_since(validated_at)
            <= SimDuration::from_secs(DV_TOKEN_MAX_AGE_DAYS * SECS_PER_DAY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fleet_shape() {
        let fleet = CaFleet::paper_fleet();
        assert_eq!(fleet.len(), 4);
        assert!(fleet.get(CaId(0)).reuses_dv_tokens);
        assert!(!fleet.get(CaId(3)).reuses_dv_tokens);
    }

    #[test]
    fn latency_is_bounded_and_plausible() {
        let fleet = CaFleet::paper_fleet();
        let mut rng = SmallRng::seed_from_u64(1);
        for ca in fleet.profiles() {
            let mut total = 0u64;
            for _ in 0..2_000 {
                let l = ca.sample_latency(&mut rng).as_secs();
                assert!((5..=21_600).contains(&l));
                total += l;
            }
            let mean = total as f64 / 2_000.0;
            assert!(mean > 60.0, "{}: mean latency {mean} too low", ca.name);
        }
    }

    #[test]
    fn fast_ca_is_sampled_most() {
        let fleet = CaFleet::paper_fleet();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0u32; 4];
        for _ in 0..10_000 {
            counts[fleet.sample(&mut rng).id.0 as usize] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[3]);
    }

    #[test]
    fn token_reuser_sampling_never_returns_non_reuser() {
        let fleet = CaFleet::paper_fleet();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!(fleet.sample_token_reuser(&mut rng).reuses_dv_tokens);
        }
    }

    #[test]
    fn dv_token_validity_window() {
        let validated = SimTime::from_days(100);
        assert!(dv_token_valid(validated, SimTime::from_days(100)));
        assert!(dv_token_valid(validated, SimTime::from_days(100 + 398)));
        assert!(!dv_token_valid(validated, SimTime::from_days(100 + 399)));
        // A token from the future is not valid.
        assert!(!dv_token_valid(validated, SimTime::from_days(99)));
    }

    #[test]
    fn median_latency_ordering_matches_profiles() {
        let fleet = CaFleet::paper_fleet();
        let mut rng = SmallRng::seed_from_u64(4);
        let median = |ca: &CaProfile, rng: &mut SmallRng| {
            let mut v: Vec<u64> = (0..4_001).map(|_| ca.sample_latency(rng).as_secs()).collect();
            v.sort_unstable();
            v[2_000]
        };
        let m0 = median(fleet.get(CaId(0)), &mut rng);
        let m3 = median(fleet.get(CaId(3)), &mut rng);
        assert!(m0 < m3, "fast CA median {m0} should beat slow CA {m3}");
    }
}
