//! Certificates.
//!
//! Only the fields the pipeline reads are modelled: the Common Name, the
//! Subject Alternative Names, issuance time, issuing CA, and whether the
//! entry is a precertificate (the pipeline considers only precertificates,
//! because they must be logged before final issuance — paper footnote 1).

use darkdns_dns::DomainName;
use darkdns_sim::time::SimTime;
use serde::Serialize;

/// Identifies a CA within the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct CaId(pub u16);

/// A (pre)certificate as it appears in a CT log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Certificate {
    /// Serial within the issuing CA.
    pub serial: u64,
    pub ca: CaId,
    /// Common Name — by convention the apex name.
    pub cn: DomainName,
    /// Subject Alternative Names (includes the CN by convention).
    pub san: Vec<DomainName>,
    pub issued_at: SimTime,
    /// True for precertificate entries (the only kind the pipeline uses).
    pub precert: bool,
}

impl Certificate {
    /// All names covered by this certificate: CN plus SANs, deduplicated,
    /// in first-occurrence order. This is exactly the name set Step 1 of
    /// the pipeline extracts.
    pub fn names(&self) -> Vec<DomainName> {
        let mut out = Vec::with_capacity(1 + self.san.len());
        out.push(self.cn.clone());
        for n in &self.san {
            if !out.contains(n) {
                out.push(n.clone());
            }
        }
        out
    }

    /// Canonical bytes fed to the CT log's Merkle tree.
    pub fn leaf_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&self.serial.to_be_bytes());
        bytes.extend_from_slice(&self.ca.0.to_be_bytes());
        bytes.extend_from_slice(&self.issued_at.as_secs().to_be_bytes());
        bytes.push(u8::from(self.precert));
        for n in self.names() {
            bytes.extend_from_slice(n.as_str().as_bytes());
            bytes.push(0);
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn cert() -> Certificate {
        Certificate {
            serial: 7,
            ca: CaId(1),
            cn: name("example.com"),
            san: vec![name("example.com"), name("www.example.com")],
            issued_at: SimTime::from_secs(1_000),
            precert: true,
        }
    }

    #[test]
    fn names_dedup_preserving_order() {
        let c = cert();
        let names = c.names();
        assert_eq!(names, vec![name("example.com"), name("www.example.com")]);
    }

    #[test]
    fn leaf_bytes_distinguish_certs() {
        let a = cert();
        let mut b = cert();
        b.serial = 8;
        assert_ne!(a.leaf_bytes(), b.leaf_bytes());
        let mut c = cert();
        c.san.push(name("mail.example.com"));
        assert_ne!(a.leaf_bytes(), c.leaf_bytes());
    }

    #[test]
    fn leaf_bytes_stable_for_equal_certs() {
        assert_eq!(cert().leaf_bytes(), cert().leaf_bytes());
    }
}
