//! Certificate authority and Certificate Transparency substrate.
//!
//! The paper's entire detection methodology hangs off one public artifact:
//! the stream of *precertificate* entries appearing in CT logs (via
//! Certstream). This crate builds that artifact from the simulated
//! registry universe:
//!
//! * [`cert`] — certificates with CN/SAN name sets;
//! * [`ca`] — the CA fleet: Domain-Validation latency models and the
//!   398-day DV-token cache that lets CAs issue certificates for domains
//!   that no longer exist (the paper's cause-iii RDAP failures, confirmed
//!   by GlobalSign/Sectigo/Cloudflare);
//! * [`merkle`] — an append-only Merkle tree with inclusion proofs (the
//!   RFC 6962 structure, with a non-cryptographic hash — see module docs);
//! * [`log`] — a CT log: appends precertificate entries into the tree;
//! * [`stream`] — the Certstream equivalent: the time-ordered feed of
//!   precert entries the pipeline consumes.

pub mod ca;
pub mod cert;
pub mod log;
pub mod merkle;
pub mod stream;

pub use ca::CaFleet;
pub use cert::Certificate;
pub use log::CtLog;
pub use stream::{CertStream, CertStreamEntry};
