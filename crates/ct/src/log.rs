//! A CT log: an append-only sequence of precertificate entries committed
//! to by a Merkle tree.
//!
//! The simulation uses the log for two things: (i) producing the
//! Certstream-like feed (via [`crate::stream`]), and (ii) demonstrating
//! end-to-end that every streamed entry carries a verifiable inclusion
//! proof — the transparency property the paper's methodology (and its
//! proposed RZU analogue) leans on.

use crate::cert::Certificate;
use crate::merkle::{MerkleTree, NodeHash, ProofStep};
use darkdns_sim::time::SimTime;

/// One logged entry.
#[derive(Debug, Clone)]
pub struct LogEntry {
    pub index: usize,
    /// When the log accepted the entry (>= certificate issuance).
    pub logged_at: SimTime,
    pub certificate: Certificate,
}

/// An append-only certificate-transparency log.
#[derive(Debug, Default)]
pub struct CtLog {
    entries: Vec<LogEntry>,
    tree: MerkleTree,
}

impl CtLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a certificate; returns the entry index.
    ///
    /// # Panics
    /// Panics if entries are appended out of time order — a CT log's
    /// sequence must be consistent with its acceptance times for the
    /// stream to be replayable.
    pub fn append(&mut self, logged_at: SimTime, certificate: Certificate) -> usize {
        if let Some(last) = self.entries.last() {
            assert!(logged_at >= last.logged_at, "log entries must be time-ordered");
        }
        let index = self.tree.append(&certificate.leaf_bytes());
        self.entries.push(LogEntry { index, logged_at, certificate });
        index
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, index: usize) -> &LogEntry {
        &self.entries[index]
    }

    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Current tree head.
    pub fn root(&self) -> NodeHash {
        self.tree.root()
    }

    /// Inclusion proof for entry `index` against the current root.
    pub fn prove(&self, index: usize) -> Vec<ProofStep> {
        self.tree.inclusion_proof(index)
    }

    /// Verify that `certificate` is included under `root` via `proof`.
    pub fn verify(certificate: &Certificate, proof: &[ProofStep], root: NodeHash) -> bool {
        MerkleTree::verify_inclusion(&certificate.leaf_bytes(), proof, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CaId;
    use darkdns_dns::DomainName;

    fn cert(serial: u64, name: &str) -> Certificate {
        let n = DomainName::parse(name).unwrap();
        Certificate {
            serial,
            ca: CaId(0),
            cn: n.clone(),
            san: vec![n],
            issued_at: SimTime::from_secs(serial * 10),
            precert: true,
        }
    }

    #[test]
    fn append_and_prove_all() {
        let mut log = CtLog::new();
        for i in 0..50 {
            log.append(SimTime::from_secs(i * 10), cert(i, &format!("d{i}.com")));
        }
        let root = log.root();
        for i in 0..50usize {
            let proof = log.prove(i);
            assert!(CtLog::verify(&log.get(i).certificate, &proof, root));
        }
        assert_eq!(log.len(), 50);
    }

    #[test]
    fn foreign_cert_fails_proof() {
        let mut log = CtLog::new();
        for i in 0..8 {
            log.append(SimTime::from_secs(i), cert(i, &format!("d{i}.com")));
        }
        let proof = log.prove(2);
        let impostor = cert(99, "evil.com");
        assert!(!CtLog::verify(&impostor, &proof, log.root()));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_append_panics() {
        let mut log = CtLog::new();
        log.append(SimTime::from_secs(100), cert(1, "a.com"));
        log.append(SimTime::from_secs(50), cert(2, "b.com"));
    }

    #[test]
    fn proofs_from_old_root_stay_valid_for_prefix() {
        // Append 4, take the root, then verify against it before growth.
        let mut log = CtLog::new();
        for i in 0..4 {
            log.append(SimTime::from_secs(i), cert(i, &format!("d{i}.com")));
        }
        let root4 = log.root();
        let proof = log.prove(1);
        assert!(CtLog::verify(&log.get(1).certificate, &proof, root4));
    }
}
