//! The certificate stream — the simulation's Certstream.
//!
//! Builds the time-ordered feed of precertificate entries implied by the
//! registry universe and the CA fleet's behaviour:
//!
//! * ordinary registrations with prompt certificates are validated once
//!   resolvable (after the TLD zone push) and logged after the CA's
//!   issuance latency;
//! * certificates racing a transient domain's removal are only issued if
//!   validation completes before the delegation disappears;
//! * ghost and re-registered names are issued on cached DV tokens at their
//!   scheduled (hinted) instants, with no liveness requirement;
//! * base-population renewals are issued at hinted instants (and are the
//!   bulk of a real Certstream — noise the pipeline must discard).

use crate::ca::CaFleet;
use crate::cert::Certificate;
use crate::log::CtLog;
use darkdns_dns::DomainName;
use darkdns_registry::universe::{CertTiming, DomainId, Universe};
use darkdns_registry::czds::SnapshotSchedule;
use darkdns_sim::rng::RngPool;
use darkdns_sim::time::{SimDuration, SimTime, SECS_PER_DAY};
use rand::Rng;

/// One streamed precertificate entry, as the pipeline sees it, plus the
/// ground-truth backlink used only by the evaluation harness.
#[derive(Debug, Clone)]
pub struct CertStreamEntry {
    /// Certstream-reported timestamp (= when the precert was logged; CT
    /// logs expose no insertion timestamp, paper footnote 4).
    pub at: SimTime,
    /// Names from CN + SAN.
    pub names: Vec<DomainName>,
    /// Ground-truth record (not available to the pipeline's inference —
    /// only to the evaluation).
    pub domain: DomainId,
}

/// The full, time-ordered certificate stream for an experiment.
#[derive(Debug, Default)]
pub struct CertStream {
    entries: Vec<CertStreamEntry>,
}

impl CertStream {
    /// Build the stream (and the backing CT log) from a universe.
    pub fn build(
        universe: &Universe,
        schedule: &SnapshotSchedule,
        fleet: &CaFleet,
        pool: &RngPool,
    ) -> (CertStream, CtLog) {
        let mut rng = pool.stream("ct.stream");
        let mut entries: Vec<CertStreamEntry> = Vec::new();
        for r in universe.iter() {
            let issue_at = match (r.cert_timing, r.cert_hint) {
                (CertTiming::Never, _) => continue,
                // Hinted issuance (renewals, ghosts, re-registered): the CA
                // holds a valid DV token, no liveness check.
                (_, Some(hint)) => hint,
                (CertTiming::Prompt, None) => {
                    let ca = fleet.sample(&mut rng);
                    let at = r.zone_insert + ca.sample_latency(&mut rng);
                    // Domain Validation needs the delegation to still exist.
                    match r.removed {
                        Some(removed) if at >= removed => continue,
                        _ => at,
                    }
                }
                (CertTiming::LateTail, None) => {
                    // The certificate lags 1-3 days behind registration; it
                    // still yields a detection only while the covering
                    // snapshot remains unpublished (the workload generator
                    // pairs LateTail with late snapshots).
                    let lag = rng.gen_range(SECS_PER_DAY..3 * SECS_PER_DAY);
                    let at = r.created + SimDuration::from_secs(lag);
                    let avail = schedule
                        .first_capture_at_or_after(r.tld, r.zone_insert)
                        .map(|d| schedule.available_at(r.tld, d));
                    let at = match avail {
                        // Clamp to just before publication so the entry is
                        // still a detection.
                        Some(a) if at >= a => a.saturating_sub(SimDuration::from_secs(
                            rng.gen_range(600..7_200),
                        )),
                        _ => at,
                    };
                    // Validation still requires a live delegation.
                    match r.removed {
                        Some(removed) if at >= removed => continue,
                        _ => at,
                    }
                }
            };
            let mut names = vec![r.name.clone()];
            if rng.gen::<f64>() < 0.8 {
                if let Ok(www) = r.name.child("www") {
                    names.push(www);
                }
            }
            if rng.gen::<f64>() < 0.15 {
                if let Ok(sub) = r.name.child("mail") {
                    names.push(sub);
                }
            }
            entries.push(CertStreamEntry { at: issue_at, names, domain: r.id });
        }
        entries.sort_by_key(|e| (e.at, e.domain));

        let mut log = CtLog::new();
        for (serial, e) in entries.iter().enumerate() {
            let ca = fleet.sample(&mut rng);
            log.append(
                e.at,
                Certificate {
                    serial: serial as u64,
                    ca: ca.id,
                    cn: e.names[0].clone(),
                    san: e.names.clone(),
                    issued_at: e.at,
                    precert: true,
                },
            );
        }
        (CertStream { entries }, log)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[CertStreamEntry] {
        &self.entries
    }

    pub fn iter(&self) -> impl Iterator<Item = &CertStreamEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkdns_registry::hosting::HostingLandscape;
    use darkdns_registry::registrar::RegistrarFleet;
    use darkdns_registry::tld::paper_gtlds;
    use darkdns_registry::universe::DomainKind;
    use darkdns_registry::workload::{UniverseBuilder, WorkloadConfig};

    fn build_all() -> (Universe, SnapshotSchedule, CertStream, CtLog) {
        let tlds = paper_gtlds();
        let fleet = RegistrarFleet::paper_fleet();
        let hosting = HostingLandscape::paper_landscape();
        let config = WorkloadConfig {
            scale: 0.02,
            window_days: 10,
            base_population_frac: 0.02,
            ..WorkloadConfig::default()
        };
        let pool = RngPool::new(99);
        let schedule = SnapshotSchedule::new(&pool, &tlds, config.window_start, config.window_days);
        let builder = UniverseBuilder {
            tlds: &tlds,
            fleet: &fleet,
            hosting: &hosting,
            schedule: &schedule,
            config,
        };
        let universe = builder.build(&pool);
        let cas = CaFleet::paper_fleet();
        let (stream, log) = CertStream::build(&universe, &schedule, &cas, &pool);
        (universe, schedule, stream, log)
    }

    #[test]
    fn stream_is_time_ordered_and_nonempty() {
        let (_, _, stream, log) = build_all();
        assert!(stream.len() > 500, "stream too small: {}", stream.len());
        assert_eq!(stream.len(), log.len());
        for w in stream.entries().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn certs_never_issued_after_removal_for_registered_kinds() {
        let (universe, _, stream, _) = build_all();
        for e in stream.iter() {
            let r = universe.get(e.domain);
            if r.cert_hint.is_none() {
                if let Some(removed) = r.removed {
                    assert!(e.at < removed, "{}: cert at {} after removal {removed}", r.name, e.at);
                }
            }
        }
    }

    #[test]
    fn ghosts_and_rereg_get_certs_despite_being_dead() {
        let (universe, _, stream, _) = build_all();
        let ghost_entries = stream
            .iter()
            .filter(|e| !universe.get(e.domain).kind.has_registration())
            .count();
        let rereg_entries = stream
            .iter()
            .filter(|e| universe.get(e.domain).kind == DomainKind::ReRegistered)
            .count();
        assert!(ghost_entries > 0, "no ghost certs in stream");
        assert!(rereg_entries > 0, "no re-registered certs in stream");
    }

    #[test]
    fn entries_carry_registrable_apex_first() {
        let (universe, _, stream, _) = build_all();
        for e in stream.iter().take(500) {
            let r = universe.get(e.domain);
            assert_eq!(e.names[0], r.name);
            for n in &e.names[1..] {
                assert!(n.is_subdomain_of(&r.name));
            }
        }
    }

    #[test]
    fn deterministic_given_pool() {
        let (_, _, s1, _) = build_all();
        let (_, _, s2, _) = build_all();
        assert_eq!(s1.len(), s2.len());
        for (a, b) in s1.iter().zip(s2.iter()) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.domain, b.domain);
        }
    }

    #[test]
    fn inclusion_proofs_hold_for_streamed_entries() {
        let (_, _, _, log) = build_all();
        let root = log.root();
        for i in (0..log.len()).step_by(97) {
            let proof = log.prove(i);
            assert!(CtLog::verify(&log.get(i).certificate, &proof, root));
        }
    }

    #[test]
    fn transient_cert_latency_beats_lifetime() {
        // Detected transients: cert must precede death, with margin.
        let (universe, _, stream, _) = build_all();
        let mut count = 0;
        for e in stream.iter() {
            let r = universe.get(e.domain);
            if r.kind == DomainKind::Transient {
                assert!(e.at < r.removed.unwrap());
                count += 1;
            }
        }
        assert!(count > 10, "too few transient certs: {count}");
    }
}
