//! The registry-side event log.
//!
//! A time-ordered log of zone-level events (delegation added, delegation
//! removed, NS set changed) derived from a universe. This is the stream a
//! registry would feed into a Rapid Zone Update service, and it is what
//! the RZU module batches into pushes.

use crate::tld::TldId;
use crate::universe::{DomainId, Universe};
use darkdns_sim::time::SimTime;
use serde::Serialize;

/// What happened to a delegation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RegistryEventKind {
    /// Delegation entered the TLD zone.
    Created,
    /// Delegation left the TLD zone.
    Removed,
    /// The delegation's NS set was replaced.
    NsChanged,
}

/// One zone-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RegistryEvent {
    pub at: SimTime,
    pub tld: TldId,
    pub domain: DomainId,
    pub kind: RegistryEventKind,
}

/// Derive the complete, time-ordered event log for `universe`, optionally
/// restricted to one TLD. Ghost records contribute nothing (they never
/// touch a zone during the window; their historical lifecycles predate the
/// log's scope).
pub fn event_log(universe: &Universe, only_tld: Option<TldId>) -> Vec<RegistryEvent> {
    let mut events = Vec::new();
    for r in universe.iter() {
        if let Some(tld) = only_tld {
            if r.tld != tld {
                continue;
            }
        }
        if !r.kind.emits_zone_events() {
            // Ghosts never touch a zone; re-registered names carry a
            // pre-window lifecycle only. Shared scope rule with
            // `UniverseZoneView` (see `DomainKind::emits_zone_events`).
            continue;
        }
        events.push(RegistryEvent {
            at: r.zone_insert,
            tld: r.tld,
            domain: r.id,
            kind: RegistryEventKind::Created,
        });
        if let Some(change) = r.ns_change_at {
            events.push(RegistryEvent {
                at: change,
                tld: r.tld,
                domain: r.id,
                kind: RegistryEventKind::NsChanged,
            });
        }
        if let Some(removed) = r.removed {
            events.push(RegistryEvent {
                at: removed,
                tld: r.tld,
                domain: r.id,
                kind: RegistryEventKind::Removed,
            });
        }
    }
    // Stable key (time, domain id, kind order) keeps the log deterministic.
    events.sort_by_key(|e| (e.at, e.domain, e.kind as u8));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosting::ProviderId;
    use crate::registrar::RegistrarId;
    use crate::universe::{CertTiming, DomainKind, DomainRecord};
    use darkdns_dns::DomainName;
    use darkdns_sim::time::SimDuration;

    fn push_record(
        u: &mut Universe,
        name: &str,
        tld: TldId,
        kind: DomainKind,
        insert_h: u64,
        removed_h: Option<u64>,
        ns_change_h: Option<u64>,
    ) {
        let created = SimTime::from_hours(insert_h);
        u.push(DomainRecord {
            id: DomainId(0),
            name: DomainName::parse(name).unwrap(),
            tld,
            kind,
            created,
            zone_insert: created + SimDuration::from_secs(30),
            removed: removed_h.map(SimTime::from_hours),
            registrar: RegistrarId(0),
            dns_provider: ProviderId(0),
            web_asn: 13_335,
            cert_timing: CertTiming::Prompt,
            cert_hint: None,
            ns_change_at: ns_change_h.map(SimTime::from_hours),
            malicious: false,
        });
    }

    #[test]
    fn log_is_time_ordered_and_complete() {
        let mut u = Universe::new();
        push_record(&mut u, "b.com", TldId(0), DomainKind::Transient, 10, Some(16), None);
        push_record(&mut u, "a.com", TldId(0), DomainKind::LongLived, 2, None, Some(5));
        let log = event_log(&u, None);
        // a: Created + NsChanged; b: Created + Removed.
        assert_eq!(log.len(), 4);
        for w in log.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert_eq!(log[0].kind, RegistryEventKind::Created); // a.com at 2h
        assert_eq!(log.iter().filter(|e| e.kind == RegistryEventKind::Removed).count(), 1);
        assert_eq!(log.iter().filter(|e| e.kind == RegistryEventKind::NsChanged).count(), 1);
    }

    #[test]
    fn ghosts_and_rereg_produce_no_events() {
        let mut u = Universe::new();
        push_record(
            &mut u,
            "g.com",
            TldId(0),
            DomainKind::Ghost { previously_registered: true },
            1,
            Some(2),
            None,
        );
        push_record(&mut u, "r.com", TldId(0), DomainKind::ReRegistered, 1, Some(2), None);
        assert!(event_log(&u, None).is_empty());
    }

    #[test]
    fn tld_filter() {
        let mut u = Universe::new();
        push_record(&mut u, "a.com", TldId(0), DomainKind::LongLived, 1, None, None);
        push_record(&mut u, "a.net", TldId(1), DomainKind::LongLived, 1, None, None);
        assert_eq!(event_log(&u, Some(TldId(1))).len(), 1);
        assert_eq!(event_log(&u, None).len(), 2);
    }
}
