//! The registrar fleet.
//!
//! Registrars matter to the paper in two ways: they are the actors that
//! delete abusive registrations early (creating transient domains, §4.3),
//! and their distribution over transient domains is Table 3. The fleet
//! therefore carries two market-share mixes: a generic one for ordinary
//! registrations and a transient-specific one calibrated to Table 3.

use darkdns_sim::dist::WeightedIndex;
use rand::Rng;
use serde::Serialize;

/// Index of a registrar within the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct RegistrarId(pub u16);

/// One registrar.
#[derive(Debug, Clone, Serialize)]
pub struct Registrar {
    pub id: RegistrarId,
    pub name: String,
    /// IANA-style numeric registrar id reported over RDAP.
    pub iana_id: u32,
}

/// The registrar population with class-conditional market shares.
#[derive(Debug, Clone)]
pub struct RegistrarFleet {
    registrars: Vec<Registrar>,
    benign_mix: WeightedIndex,
    transient_mix: WeightedIndex,
}

impl RegistrarFleet {
    /// The paper-calibrated fleet: ten named registrars with Table 3
    /// transient shares, plus a pool of small registrars forming the
    /// 21.3% "Others" long tail.
    pub fn paper_fleet() -> Self {
        // (name, benign market share, transient share from Table 3)
        let named: &[(&str, f64, f64)] = &[
            ("GoDaddy", 18.0, 19.39),
            ("Hostinger", 5.0, 15.2),
            ("NameCheap", 11.0, 9.9),
            ("Squarespace", 6.0, 6.7),
            ("Public Domain Registry", 4.5, 6.2),
            ("IONOS", 4.0, 5.6),
            ("Metaregistrar", 0.8, 4.4),
            ("NameSilo", 2.5, 4.4),
            ("Network Solutions, LLC", 3.5, 3.9),
            ("Tucows", 6.0, 3.1),
            ("GMO Internet", 3.5, 1.2),
            ("Alibaba Cloud", 4.2, 2.0),
            ("OVHcloud", 1.8, 0.8),
            ("Gandi", 1.5, 0.6),
            ("SIDN Participants", 1.0, 0.4),
        ];
        let mut registrars = Vec::new();
        let mut benign = Vec::new();
        let mut transient = Vec::new();
        for (i, (name, b, t)) in named.iter().enumerate() {
            registrars.push(Registrar {
                id: RegistrarId(i as u16),
                name: (*name).to_owned(),
                iana_id: 100 + i as u32,
            });
            benign.push(*b);
            transient.push(*t);
        }
        // Long-tail pool: 20 small registrars sharing the residual mass.
        let named_benign: f64 = benign.iter().sum();
        let named_transient: f64 = transient.iter().sum();
        let pool = 20usize;
        for p in 0..pool {
            let idx = registrars.len();
            registrars.push(Registrar {
                id: RegistrarId(idx as u16),
                name: format!("Registrar Pool {:02}", p + 1),
                iana_id: 1000 + p as u32,
            });
            benign.push((100.0 - named_benign).max(1.0) / pool as f64);
            transient.push((100.0 - named_transient).max(1.0) / pool as f64);
        }
        RegistrarFleet {
            registrars,
            benign_mix: WeightedIndex::new(&benign),
            transient_mix: WeightedIndex::new(&transient),
        }
    }

    pub fn len(&self) -> usize {
        self.registrars.len()
    }

    pub fn is_empty(&self) -> bool {
        self.registrars.is_empty()
    }

    pub fn get(&self, id: RegistrarId) -> &Registrar {
        &self.registrars[id.0 as usize]
    }

    pub fn by_name(&self, name: &str) -> Option<&Registrar> {
        self.registrars.iter().find(|r| r.name == name)
    }

    pub fn iter(&self) -> impl Iterator<Item = &Registrar> {
        self.registrars.iter()
    }

    /// Sample the sponsoring registrar for an ordinary registration.
    pub fn sample_benign<R: Rng + ?Sized>(&self, rng: &mut R) -> RegistrarId {
        RegistrarId(self.benign_mix.sample(rng) as u16)
    }

    /// Sample the sponsoring registrar for a transient (abusive)
    /// registration, per Table 3's distribution.
    pub fn sample_transient<R: Rng + ?Sized>(&self, rng: &mut R) -> RegistrarId {
        RegistrarId(self.transient_mix.sample(rng) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fleet_has_named_plus_pool() {
        let fleet = RegistrarFleet::paper_fleet();
        assert_eq!(fleet.len(), 35);
        assert!(fleet.by_name("GoDaddy").is_some());
        assert!(fleet.by_name("Metaregistrar").is_some());
        assert!(fleet.by_name("Registrar Pool 01").is_some());
        assert!(fleet.by_name("Nonexistent Registrar").is_none());
    }

    #[test]
    fn transient_mix_matches_table3_shape() {
        let fleet = RegistrarFleet::paper_fleet();
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut counts = vec![0u64; fleet.len()];
        for _ in 0..n {
            counts[fleet.sample_transient(&mut rng).0 as usize] += 1;
        }
        let share = |name: &str| {
            let id = fleet.by_name(name).unwrap().id;
            counts[id.0 as usize] as f64 / n as f64
        };
        // Table 3: GoDaddy 19.39%, Hostinger 15.2%, NameCheap 9.9%.
        assert!((share("GoDaddy") - 0.1939).abs() < 0.01);
        assert!((share("Hostinger") - 0.152).abs() < 0.01);
        assert!((share("NameCheap") - 0.099).abs() < 0.01);
        // GoDaddy must rank first (paper: "market leader GoDaddy topped").
        let max = counts.iter().max().unwrap();
        assert_eq!(counts[fleet.by_name("GoDaddy").unwrap().id.0 as usize], *max);
    }

    #[test]
    fn benign_mix_differs_from_transient_mix() {
        let fleet = RegistrarFleet::paper_fleet();
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let mut benign = vec![0u64; fleet.len()];
        let mut transient = vec![0u64; fleet.len()];
        for _ in 0..n {
            benign[fleet.sample_benign(&mut rng).0 as usize] += 1;
            transient[fleet.sample_transient(&mut rng).0 as usize] += 1;
        }
        // Hostinger is over-represented among transients relative to its
        // ordinary market share (15.2% vs ~5%).
        let h = fleet.by_name("Hostinger").unwrap().id.0 as usize;
        assert!(transient[h] as f64 > 2.0 * benign[h] as f64);
    }

    #[test]
    fn registrar_ids_are_dense_and_stable() {
        let fleet = RegistrarFleet::paper_fleet();
        for (i, r) in fleet.iter().enumerate() {
            assert_eq!(r.id.0 as usize, i);
            assert_eq!(fleet.get(r.id).name, r.name);
        }
    }
}
